"""The unified SolveOptions surface: round-trip law, equivalence, conflicts."""

import numpy as np
import pytest

from repro import GradientConfig, SolveOptions, solve
from repro.exceptions import ModelError
from repro.online import OnlineOrchestrator
from repro.scenarios import paper_figure4_network


@pytest.fixture(scope="module")
def fig4_network():
    return paper_figure4_network(seed=7)


class TestRoundTrip:
    def test_from_kwargs_of_to_kwargs_is_identity(self):
        opts = SolveOptions(
            method="gradient",
            config=GradientConfig(max_iterations=50),
            workers=2,
            backend="thread",
            staleness=None,
            validate="strict",
            full_result=True,
        )
        assert SolveOptions.from_kwargs(**opts.to_kwargs()) == opts

    def test_defaults_round_trip(self):
        opts = SolveOptions()
        assert SolveOptions.from_kwargs(**opts.to_kwargs()) == opts

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(TypeError, match="eta"):
            SolveOptions.from_kwargs(eta=0.04)

    def test_replace_is_frozen_safe(self):
        opts = SolveOptions(workers=2)
        other = opts.replace(workers=4, backend="thread")
        assert opts.workers == 2
        assert other.workers == 4 and other.backend == "thread"
        with pytest.raises(Exception):
            opts.workers = 8  # frozen


class TestSolveEquivalence:
    def test_options_matches_kwargs_bitwise(self, fig4_network):
        cfg = GradientConfig(max_iterations=80)
        opts = SolveOptions(config=cfg, full_result=True)
        via_options = solve(fig4_network, options=opts)
        via_kwargs = solve(fig4_network, **opts.to_kwargs())
        assert np.array_equal(
            via_options.solution.routing.phi, via_kwargs.solution.routing.phi
        )
        assert np.array_equal(
            via_options.solution.admitted, via_kwargs.solution.admitted
        )

    def test_options_plus_kwargs_is_an_error(self, fig4_network):
        opts = SolveOptions(config=GradientConfig(max_iterations=10))
        with pytest.raises(TypeError, match="options="):
            solve(fig4_network, options=opts, workers=2)
        with pytest.raises(TypeError, match="options="):
            solve(fig4_network, options=opts, method="gradient")

    def test_options_must_be_solve_options(self, fig4_network):
        with pytest.raises(TypeError, match="SolveOptions"):
            solve(fig4_network, options={"method": "gradient"})


class TestOrchestratorOptions:
    def test_options_accepted(self, fig4_network):
        cfg = GradientConfig(max_iterations=40)
        orch = OnlineOrchestrator(
            fig4_network, [], options=SolveOptions(config=cfg)
        )
        baseline = OnlineOrchestrator(fig4_network, [], config=cfg)
        a = orch.run(30)
        b = baseline.run(30)
        assert np.array_equal(
            a.solution.routing.phi, b.solution.routing.phi
        )

    def test_options_conflicts_with_aliases(self, fig4_network):
        opts = SolveOptions(config=GradientConfig(max_iterations=10))
        with pytest.raises(ModelError, match="not both"):
            OnlineOrchestrator(fig4_network, [], options=opts, workers=2)

    def test_non_gradient_options_rejected(self, fig4_network):
        with pytest.raises(ModelError, match="gradient"):
            OnlineOrchestrator(
                fig4_network, [], options=SolveOptions(method="backpressure")
            )
