"""Tests for the operator-placement module."""

from __future__ import annotations

import pytest

from repro.core.commodity import StreamNetwork, Task
from repro.core.network import PhysicalNetwork
from repro.core.utility import LogUtility
from repro.exceptions import ModelError
from repro.placement import feasible_hosts, place_task_chain
from repro.scenarios import figure1_network


def grid_physical():
    """source -> {mid_a (big), mid_b (small)} -> {late_a, late_b} -> sink."""
    net = PhysicalNetwork()
    net.add_server("src", 50.0)
    net.add_server("mid_a", 40.0)
    net.add_server("mid_b", 5.0)
    net.add_server("late_a", 30.0)
    net.add_server("late_b", 30.0)
    net.add_sink("sink")
    for tail, heads in {
        "src": ["mid_a", "mid_b"],
        "mid_a": ["late_a", "late_b"],
        "mid_b": ["late_a"],
        "late_a": ["sink"],
        "late_b": ["sink"],
    }.items():
        for head in heads:
            net.add_link(tail, head, bandwidth=40.0)
    return net


class TestFeasibleHosts:
    def test_layers_follow_reachability(self):
        layers = feasible_hosts(grid_physical(), 3, "src", "sink")
        assert layers[0] == {"src"}
        assert layers[1] == {"mid_a", "mid_b"}
        assert layers[2] == {"late_a", "late_b"}

    def test_backward_pruning(self):
        net = grid_physical()
        net.add_server("dead_end", 100.0)
        net.add_link("src", "dead_end", 40.0)  # no route onward to sink
        layers = feasible_hosts(net, 3, "src", "sink")
        assert "dead_end" not in layers[1]

    def test_unembeddable_chain_rejected(self):
        with pytest.raises(ModelError, match="no feasible host"):
            feasible_hosts(grid_physical(), 5, "src", "sink")

    def test_validates_endpoints(self):
        net = grid_physical()
        with pytest.raises(ModelError):
            feasible_hosts(net, 2, "sink", "sink")
        with pytest.raises(ModelError):
            feasible_hosts(net, 2, "src", "mid_a")


class TestPlaceTaskChain:
    TASKS = [
        Task("ingest", cost=1.0, gain=1.0),
        Task("process", cost=2.0, gain=0.5),
        Task("emit", cost=1.0, gain=1.0),
    ]

    def empty_background(self):
        return StreamNetwork(physical=grid_physical())

    def test_places_and_scores(self):
        result = place_task_chain(
            self.empty_background(),
            self.TASKS,
            source="src",
            sink="sink",
            max_rate=30.0,
        )
        assert result.placement["ingest"] == ["src"]
        assert result.score > 0
        assert result.marginal_utility == pytest.approx(result.score)
        # commodity is realisable and rooted correctly
        assert result.commodity.source == "src"
        assert result.commodity.sink == "sink"

    def test_prefers_big_server(self):
        """With max_replicas=1, the middle task must pick mid_a (capacity 40)
        over mid_b (capacity 5): both the greedy seed and the LP agree."""
        result = place_task_chain(
            self.empty_background(),
            self.TASKS,
            source="src",
            sink="sink",
            max_rate=30.0,
            max_replicas=1,
        )
        assert result.placement["process"] == ["mid_a"]

    def test_replication_improves_or_ties(self):
        single = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0, max_replicas=1
        )
        double = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0, max_replicas=2
        )
        assert double.score >= single.score - 1e-9

    def test_respects_existing_load(self):
        """Placing onto a loaded system must account for the background
        commodities: total score includes them and never regresses."""
        background = figure1_network()
        # each commodity needs its own sink (paper, Section 2)
        background.physical.add_sink("sink3")
        background.physical.add_link("server8", "sink3", bandwidth=20.0)
        tasks = [Task(f"t{i}", cost=1.0, gain=1.0) for i in range(1, 5)]
        # a new stream alongside S2's chain: server7 -> 3 -> 5 -> 8 -> sink3
        result = place_task_chain(
            background,
            tasks,
            source="server7",
            sink="sink3",
            max_rate=5.0,
            name="extra",
        )
        assert result.baseline > 0
        assert result.score >= result.baseline - 1e-9
        names = [c.name for c in background.commodities]
        assert "extra" not in names  # background not mutated

    def test_score_trace_monotone(self):
        result = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0
        )
        trace = result.score_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_rejects_bad_arguments(self):
        background = self.empty_background()
        with pytest.raises(ModelError):
            place_task_chain(background, [], "src", "sink", 30.0)
        with pytest.raises(ModelError):
            place_task_chain(
                background, self.TASKS, "src", "sink", 30.0, max_replicas=0
            )
        with pytest.raises(ModelError):
            place_task_chain(
                background,
                self.TASKS,
                "src",
                "sink",
                30.0,
                utility=LogUtility(),
            )

    def test_rejects_duplicate_name(self):
        background = figure1_network()
        with pytest.raises(ModelError, match="taken"):
            place_task_chain(
                background,
                [Task(f"t{i}", 1.0, 1.0) for i in range(1, 5)],
                source="server7",
                sink="sink2",
                max_rate=5.0,
                name="S1",
            )

    def test_chain_length_must_be_positive(self):
        with pytest.raises(ModelError, match="chain_length"):
            feasible_hosts(grid_physical(), 0, "src", "sink")

    def test_no_reuse_exhausts_hosts_on_cyclic_chain(self):
        """A chain revisiting a layer runs out of fresh servers: the no-reuse
        rule ("a server is assigned at most one task for each commodity")
        must fail loudly, not silently double-book."""
        net = PhysicalNetwork()
        net.add_server("src", 50.0)
        net.add_server("a", 40.0)
        net.add_server("b", 30.0)
        net.add_sink("sink")
        net.add_link("src", "a", bandwidth=40.0)
        net.add_link("a", "b", bandwidth=40.0)
        net.add_link("b", "a", bandwidth=40.0)
        net.add_link("a", "sink", bandwidth=40.0)
        background = StreamNetwork(physical=net)
        tasks = [Task(f"t{i}", cost=1.0, gain=1.0) for i in range(4)]
        # hop layers are {src}, {a}, {b}, {a}: the last task's only host is
        # already taken by task 1
        with pytest.raises(ModelError, match="no feasible host left"):
            place_task_chain(
                background, tasks, "src", "sink", 10.0, max_replicas=1
            )

    def test_empty_background_baseline_is_zero(self):
        result = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0
        )
        assert result.baseline == 0.0
        assert result.marginal_utility == result.score

    def test_score_trace_starts_at_greedy_seed(self):
        result = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0
        )
        assert result.score_trace[0] <= result.score + 1e-9
        assert result.score_trace[-1] == pytest.approx(result.score)

    def test_max_moves_zero_keeps_greedy_seed(self):
        greedy = place_task_chain(
            self.empty_background(), self.TASKS, "src", "sink", 30.0, max_moves=0
        )
        assert len(greedy.score_trace) == 1
        assert greedy.score == pytest.approx(greedy.score_trace[0])
