"""Tests for the workload generators."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.commodity import validate_property1
from repro.exceptions import ModelError
from repro.scenarios import (
    constant_trace,
    diamond_network,
    financial_pipeline_network,
    layered_network,
    mmpp_trace,
    onoff_trace,
    paper_figure4_network,
    poisson_trace,
    random_stream_network,
    sensor_fusion_network,
    tandem_network,
    trace_stats,
)
from repro.scenarios import RandomNetworkSpec


class TestRandomNetwork:
    def test_deterministic_given_seed(self):
        a = paper_figure4_network(seed=11)
        b = paper_figure4_network(seed=11)
        assert a.physical.num_links == b.physical.num_links
        for ca, cb in zip(a.commodities, b.commodities):
            assert ca.edges == cb.edges
            assert ca.max_rate == cb.max_rate
            assert ca.potentials == cb.potentials
            assert ca.costs == cb.costs

    def test_different_seeds_differ(self):
        a = paper_figure4_network(seed=1)
        b = paper_figure4_network(seed=2)
        assert (
            a.physical.num_links != b.physical.num_links
            or a.commodities[0].edges != b.commodities[0].edges
        )

    def test_paper_parameters(self):
        net = paper_figure4_network(seed=5)
        assert net.physical.num_nodes == 40
        assert net.num_commodities == 3
        for node in net.physical.processing_nodes():
            assert 1.0 <= node.capacity <= 100.0
        for link in net.physical.links.values():
            assert 1.0 <= link.bandwidth <= 100.0
        for commodity in net.commodities:
            for cost in commodity.costs.values():
                assert 1.0 <= cost <= 5.0
            # g potentials were drawn in [1, 10] then normalised by g_source;
            # the *ratio spread* must stay within [1/10, 10]
            for edge in commodity.edges:
                assert 0.1 - 1e-9 <= commodity.gain(*edge) <= 10.0 + 1e-9

    def test_validated_and_connected(self):
        for seed in range(4):
            net = paper_figure4_network(seed=seed)
            net.validate()  # includes weak connectivity

    def test_property1_holds_on_generated_commodities(self):
        net = paper_figure4_network(seed=9)
        for commodity in net.commodities:
            gains = {e: commodity.gain(*e) for e in commodity.edges}
            validate_property1(commodity.edges, gains)

    def test_every_processing_node_used(self):
        net = paper_figure4_network(seed=3)
        used = set()
        for commodity in net.commodities:
            used.update(commodity.nodes)
        for node in net.physical.processing_nodes():
            assert node.name in used

    def test_commodities_share_nodes(self):
        net = paper_figure4_network(seed=3)
        node_sets = [set(c.nodes) for c in net.commodities]
        shared = set()
        for i in range(len(node_sets)):
            for k in range(i + 1, len(node_sets)):
                shared |= node_sets[i] & node_sets[k]
        assert shared  # resource coupling exists

    def test_custom_spec(self):
        spec = RandomNetworkSpec(
            num_nodes=20, num_commodities=2, rate_range=(5.0, 5.0)
        )
        net = random_stream_network(spec, seed=0)
        assert net.physical.num_nodes == 20
        assert all(c.max_rate == pytest.approx(5.0) for c in net.commodities)

    def test_rejects_too_small(self):
        with pytest.raises(ModelError):
            RandomNetworkSpec(num_nodes=5, num_commodities=3)


class TestLayeredTopologies:
    def test_tandem_structure(self):
        net = tandem_network(depth=4)
        commodity = net.commodities[0]
        assert len(commodity.edges) == 4  # 3 inter-server hops + 1 to sink
        graph = commodity.subgraph()
        assert nx.dag_longest_path_length(graph) == 4

    def test_tandem_gain_compounds(self):
        net = tandem_network(depth=3, gain=2.0)
        commodity = net.commodities[0]
        product = 1.0
        for edge in commodity.edges:
            product *= commodity.gain(*edge)
        assert product == pytest.approx(2.0**3)

    def test_tandem_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            tandem_network(depth=0)

    def test_layered_counts(self):
        net = layered_network(depth=3, width=2)
        # src + 3*2 servers + sink
        assert net.physical.num_nodes == 8
        commodity = net.commodities[0]
        # src->layer0 (2) + layer0->layer1 (4) + layer1->layer2 (4) + ->sink (2)
        assert len(commodity.edges) == 12

    def test_diamond_requires_matching_gains(self):
        with pytest.raises(ValueError):
            diamond_network(gain_top=2.0, gain_bottom=1.0)


class TestScenarios:
    def test_sensor_fusion_valid(self):
        net = sensor_fusion_network()
        net.validate()
        assert net.num_commodities == 3
        # all commodities traverse the shared fusion node
        for commodity in net.commodities:
            assert "fusion" in commodity.nodes

    def test_sensor_fusion_field_count_bounds(self):
        with pytest.raises(ValueError):
            sensor_fusion_network(num_fields=9)

    def test_financial_pipeline_valid(self):
        net = financial_pipeline_network()
        net.validate()
        ticker = net.commodity("ticker")
        # decrypt expands the stream
        assert ticker.gain("ingest_a", "decode0") == pytest.approx(1.6)


class TestTraces:
    def test_constant(self):
        trace = constant_trace(3.0, 10)
        np.testing.assert_allclose(trace, 3.0)

    def test_poisson_mean(self):
        trace = poisson_trace(5.0, 20000, seed=1)
        assert trace.mean() == pytest.approx(5.0, rel=0.05)

    def test_poisson_deterministic(self):
        np.testing.assert_array_equal(
            poisson_trace(5.0, 100, seed=7), poisson_trace(5.0, 100, seed=7)
        )

    def test_onoff_mean_rate(self):
        trace = onoff_trace(10.0, 50000, on_probability=0.3, seed=2)
        assert trace.mean() == pytest.approx(3.0, rel=0.1)
        assert set(np.unique(trace)) <= {0.0, 10.0}

    def test_mmpp_switches_states(self):
        trace = mmpp_trace(num_slots=5000, seed=3)
        assert trace.std() > 0

    def test_trace_stats(self):
        stats = trace_stats(np.array([0.0, 10.0, 0.0, 10.0]))
        assert stats.mean == pytest.approx(5.0)
        assert stats.peak == pytest.approx(10.0)
        assert stats.burstiness == pytest.approx(2.0)

    def test_bad_args(self):
        with pytest.raises(ModelError):
            constant_trace(-1.0, 10)
        with pytest.raises(ModelError):
            poisson_trace(1.0, 0)
        with pytest.raises(ModelError):
            onoff_trace(1.0, 10, on_probability=1.5)
        with pytest.raises(ModelError):
            mmpp_trace(rates=np.array([]))
        with pytest.raises(ModelError):
            trace_stats(np.array([]))

    def test_more_bad_args(self):
        with pytest.raises(ModelError):
            constant_trace(1.0, 0)
        with pytest.raises(ModelError):
            poisson_trace(-1.0, 10)
        with pytest.raises(ModelError):
            onoff_trace(-1.0, 10)
        with pytest.raises(ModelError):
            onoff_trace(1.0, 10, mean_burst_length=0.0)
        with pytest.raises(ModelError):
            mmpp_trace(mean_state_length=1.0)
        with pytest.raises(ModelError):
            mmpp_trace(rates=np.array([[1.0, 2.0]]))  # not 1-D
        with pytest.raises(ModelError):
            mmpp_trace(rates=np.array([1.0, -2.0]))  # negative intensity

    def test_onoff_deterministic_and_burst_structured(self):
        a = onoff_trace(10.0, 500, mean_burst_length=8.0, seed=9)
        b = onoff_trace(10.0, 500, mean_burst_length=8.0, seed=9)
        np.testing.assert_array_equal(a, b)
        # longer bursts -> fewer ON/OFF transitions than independent coin flips
        transitions = int(np.count_nonzero(np.diff(a)))
        assert transitions < 250

    def test_mmpp_deterministic_and_single_state_is_poisson(self):
        a = mmpp_trace(num_slots=400, seed=5)
        b = mmpp_trace(num_slots=400, seed=5)
        np.testing.assert_array_equal(a, b)
        # one modulating state degenerates to a plain Poisson stream
        single = mmpp_trace(rates=np.array([6.0]), num_slots=20000, seed=5)
        assert single.mean() == pytest.approx(6.0, rel=0.05)

    def test_trace_stats_zero_mean_is_infinitely_bursty(self):
        stats = trace_stats(np.zeros(10))
        assert stats.mean == 0.0
        assert stats.burstiness == float("inf")
        assert stats.coefficient_of_variation == float("inf")

    def test_trace_stats_constant_trace(self):
        stats = trace_stats(constant_trace(4.0, 50))
        assert stats.burstiness == pytest.approx(1.0)
        assert stats.coefficient_of_variation == pytest.approx(0.0)
