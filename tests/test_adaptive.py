"""Tests for the adaptive step scale and extended-network node potentials."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.optimal import solve_lp
from repro.core.penalty import InverseBarrier
from repro.online import NodeFailure, apply_event
from repro.scenarios import figure1_network, paper_figure4_network


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"eta_backoff": 0.0},
            {"eta_backoff": 1.0},
            {"eta_growth": 0.9},
            {"eta_min_factor": 0.0},
            {"eta_max_factor": 0.5},
        ],
    )
    def test_rejects_bad_adaptive_params(self, kwargs):
        with pytest.raises(ValueError):
            GradientConfig(**kwargs)


class TestAdaptiveEta:
    def test_matches_fixed_when_stable(self, diamond_ext):
        """On an easy instance the adaptive run reaches the same answer."""
        fixed = GradientAlgorithm(
            diamond_ext, GradientConfig(eta=0.05, max_iterations=3000)
        ).run()
        adaptive = GradientAlgorithm(
            diamond_ext,
            GradientConfig(eta=0.05, max_iterations=3000, adaptive_eta=True),
        ).run()
        assert adaptive.solution.utility == pytest.approx(
            fixed.solution.utility, rel=1e-3
        )

    def test_rescues_oscillating_step_scale(self):
        """The post-failure Figure-4 instance oscillates at a fixed eta=0.04
        but converges with adaptation (the motivating case)."""
        network = paper_figure4_network(seed=7)
        after = apply_event(network, NodeFailure(at_iteration=1, node="n7")).network
        ext = build_extended_network(after, require_connected=False)
        lp = solve_lp(ext)

        fixed = GradientAlgorithm(
            ext, GradientConfig(eta=0.04, max_iterations=6000, record_every=50)
        ).run()
        adaptive = GradientAlgorithm(
            ext,
            GradientConfig(
                eta=0.04, max_iterations=6000, record_every=50, adaptive_eta=True
            ),
        ).run()
        assert adaptive.solution.utility >= 0.95 * lp.utility
        assert adaptive.solution.utility > fixed.solution.utility

    def test_step_accepts_eta_override(self, diamond_ext):
        from repro.core.routing import initial_routing

        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.04))
        routing = initial_routing(diamond_ext)
        small = algo.step(routing, eta=1e-6)
        big = algo.step(routing, eta=0.1)
        view = diamond_ext.commodities[0]
        assert big.phi[0, view.input_edge] > small.phi[0, view.input_edge]


class TestNodePotentials:
    def test_source_units_from_dummy(self, figure1_ext):
        g = figure1_ext.node_potentials
        for view in figure1_ext.commodities:
            assert g[view.index, view.dummy] == pytest.approx(1.0)
            # dummy input link has gain 1 => source potential is 1 too
            assert g[view.index, view.source] == pytest.approx(1.0)

    def test_matches_commodity_gain_products(self, figure1_ext):
        """g_head = g_tail * beta on every non-difference edge."""
        g = figure1_ext.node_potentials
        for view in figure1_ext.commodities:
            j = view.index
            for e in view.edge_indices:
                if e == view.difference_edge:
                    continue
                tail = figure1_ext.edge_tail[e]
                head = figure1_ext.edge_head[e]
                assert g[j, head] == pytest.approx(
                    g[j, tail] * figure1_ext.gain[j, e]
                )

    def test_sink_potential_is_chain_gain_product(self):
        ext = build_extended_network(figure1_network())
        view = ext.commodity_view("S1")
        # S1 task gains: 0.8 * 0.6 * 1.2 * 1.0
        assert ext.node_potentials[view.index, view.sink] == pytest.approx(
            0.8 * 0.6 * 1.2 * 1.0
        )


class TestBarrierTailStiffness:
    def test_stiffer_tail_grows_faster(self):
        soft = InverseBarrier(tail_stiffness=1.0)
        stiff = InverseBarrier(tail_stiffness=16.0)
        capacity = 10.0
        overload = 11.0
        assert stiff.value(overload, capacity) > soft.value(overload, capacity)
        assert stiff.derivative(overload, capacity) > soft.derivative(
            overload, capacity
        )

    def test_identical_inside_capacity(self):
        soft = InverseBarrier(tail_stiffness=1.0)
        stiff = InverseBarrier(tail_stiffness=16.0)
        grid = np.linspace(0.0, 9.8, 50)  # below the 0.99 switch
        np.testing.assert_allclose(
            soft.value(grid, 10.0), stiff.value(grid, 10.0)
        )

    def test_rejects_sub_unit_stiffness(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            InverseBarrier(tail_stiffness=0.5)
