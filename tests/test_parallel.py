"""Tests for the process-parallel execution backend (:mod:`repro.parallel`).

The contract under test is strict: a :class:`ParallelBackend` must produce
**bit-identical** iterates to the serial engine -- not "close", equal -- for
any worker count, must not change the flow-solve count (the instrumentation
invariance the serial engine already pins), and must surface worker crashes
as a clean :class:`repro.exceptions.ParallelExecutionError` instead of a
hang or a wedged pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GradientAlgorithm,
    GradientConfig,
    Instrumentation,
    ParallelExecutionError,
    build_extended_network,
    solve,
)
from repro.core.routing import initial_routing, solve_traffic
from repro.parallel import ParallelBackend, SerialBackend, resolve_backend
from repro.parallel.backend import _split_shards
from repro.workloads import random_stream_network
from repro.workloads.random_network import RandomNetworkSpec

ITERATIONS = 25


def _random_ext(seed: int, num_nodes: int = 18, num_commodities: int = 3):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(3, 4),
        layer_width_range=(2, 3),
    )
    return build_extended_network(random_stream_network(spec, seed=seed))


def _trajectory(ext, config, backend=None, iterations=ITERATIONS):
    """The full phi trajectory of a run (every iterate, not just records)."""
    algo = GradientAlgorithm(ext, config, backend=backend)
    routing = initial_routing(ext)
    states = [routing.phi.copy()]
    context = algo.compute_context(routing)
    for _ in range(iterations):
        routing = algo.step(routing, context=context)
        states.append(routing.phi.copy())
        context = algo.compute_context(routing)
    return states


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_trajectory_bit_identical_to_serial(self, workers, seed):
        ext = _random_ext(seed)
        config = GradientConfig(eta=0.04)
        serial = _trajectory(ext, config)
        with ParallelBackend(workers=workers) as backend:
            parallel = _trajectory(ext, config, backend=backend)
        assert len(serial) == len(parallel)
        for iteration, (a, b) in enumerate(zip(serial, parallel)):
            assert np.array_equal(a, b), f"phi diverged at iteration {iteration}"

    def test_run_loop_bit_identical(self):
        ext = _random_ext(seed=5)
        config = GradientConfig(eta=0.04, max_iterations=40, record_every=5)
        r_serial = GradientAlgorithm(ext, config).run()
        with ParallelBackend(workers=2) as backend:
            r_parallel = GradientAlgorithm(ext, config, backend=backend).run()
        assert r_serial.iterations == r_parallel.iterations
        assert r_serial.converged == r_parallel.converged
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_parallel.history
        ]
        assert np.array_equal(
            r_serial.solution.routing.phi, r_parallel.solution.routing.phi
        )
        assert r_serial.solution.utility == r_parallel.solution.utility

    def test_no_blocking_config(self):
        ext = _random_ext(seed=9)
        config = GradientConfig(eta=0.04, use_blocking=False)
        serial = _trajectory(ext, config, iterations=10)
        with ParallelBackend(workers=2) as backend:
            parallel = _trajectory(ext, config, backend=backend, iterations=10)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_single_commodity_more_workers_than_commodities(self):
        ext = _random_ext(seed=2, num_nodes=12, num_commodities=1)
        config = GradientConfig(eta=0.04)
        serial = _trajectory(ext, config, iterations=10)
        with ParallelBackend(workers=4) as backend:
            parallel = _trajectory(ext, config, backend=backend, iterations=10)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_parallel_context_matches_serial_flow_solve(self):
        ext = _random_ext(seed=13)
        config = GradientConfig(eta=0.04)
        routing = initial_routing(ext)
        serial_ctx = GradientAlgorithm(ext, config).compute_context(routing)
        with ParallelBackend(workers=2) as backend:
            backend.bind(ext, config)
            parallel_ctx = backend.build_context(routing)
        assert np.array_equal(serial_ctx.traffic, parallel_ctx.traffic)
        assert np.array_equal(serial_ctx.edge_usage, parallel_ctx.edge_usage)
        assert np.array_equal(serial_ctx.node_usage, parallel_ctx.node_usage)
        assert np.array_equal(serial_ctx.dadf, parallel_ctx.dadf)
        assert serial_ctx.cost == parallel_ctx.cost


class TestSolveIntegration:
    def test_solve_workers_bit_identical(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=4
        )
        config = GradientConfig(eta=0.04, max_iterations=30)
        s_serial = solve(net, config=config)
        s_parallel = solve(net, config=config, workers=2)
        assert np.array_equal(s_serial.routing.phi, s_parallel.routing.phi)
        assert s_serial.utility == s_parallel.utility

    def test_solve_distributed_workers(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=14, num_commodities=2), seed=6
        )
        config = GradientConfig(eta=0.04, max_iterations=5)
        r_serial = solve(net, method="distributed", config=config, full_result=True)
        r_parallel = solve(
            net, method="distributed", config=config, full_result=True, workers=2
        )
        assert np.array_equal(
            r_serial.solution.routing.phi, r_parallel.solution.routing.phi
        )
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_parallel.history
        ]

    @pytest.mark.parametrize("method", ["optimal", "backpressure"])
    def test_solve_rejects_workers_for_other_methods(self, method):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=14, num_commodities=2), seed=6
        )
        with pytest.raises(TypeError, match="workers"):
            solve(net, method=method, workers=2)

    def test_flow_solve_counter_invariant(self):
        """A parallel run performs exactly as many flow solves as a serial one."""
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        config = GradientConfig(eta=0.04, max_iterations=20)
        inst_serial, inst_parallel = Instrumentation(), Instrumentation()
        solve(net, config=config, instrumentation=inst_serial)
        solve(net, config=config, instrumentation=inst_parallel, workers=2)
        serial_solves = inst_serial.registry.counter("flow_solves").value
        parallel_solves = inst_parallel.registry.counter("flow_solves").value
        assert serial_solves == parallel_solves
        assert serial_solves > 0

    def test_per_worker_phase_timings_recorded(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        inst = Instrumentation()
        solve(
            net,
            config=GradientConfig(eta=0.04, max_iterations=5),
            instrumentation=inst,
            workers=2,
        )
        histograms = inst.registry.as_dict()["histograms"]
        for worker in (0, 1):
            for phase in ("flow_solve", "marginals", "blocking", "gamma"):
                assert f"phase.worker{worker}.{phase}.seconds" in histograms


class TestCrashSafety:
    @pytest.mark.parametrize("phase", ["forecast", "step"])
    def test_worker_fault_surfaces_clean_error(self, phase):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ParallelBackend(workers=2, inject_fault=phase)
        try:
            with pytest.raises(ParallelExecutionError, match=phase):
                GradientAlgorithm(ext, config, backend=backend).run()
        finally:
            backend.close()

    def test_fault_tears_down_pool_and_shared_memory(self):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ParallelBackend(workers=2, inject_fault="forecast")
        with pytest.raises(ParallelExecutionError):
            GradientAlgorithm(ext, config, backend=backend).run()
        assert backend._pool is None
        assert backend._shm is None

    def test_unbound_backend_raises(self):
        backend = ParallelBackend(workers=2)
        with pytest.raises(ParallelExecutionError, match="bind"):
            backend.build_context(None)


class TestBackendLifecycle:
    def test_close_is_idempotent_and_reusable(self):
        ext = _random_ext(seed=7)
        config = GradientConfig(eta=0.04)
        backend = ParallelBackend(workers=2)
        backend.bind(ext, config)
        routing = initial_routing(ext)
        first = backend.build_context(routing).traffic
        backend.close()
        backend.close()  # idempotent
        # the pool restarts lazily after close
        again = backend.build_context(routing).traffic
        assert np.array_equal(first, again)
        backend.close()

    def test_rebind_to_new_network(self):
        config = GradientConfig(eta=0.04)
        ext_a, ext_b = _random_ext(seed=1), _random_ext(seed=2, num_nodes=14)
        with ParallelBackend(workers=2) as backend:
            backend.bind(ext_a, config)
            routing_a = initial_routing(ext_a)
            got_a = backend.build_context(routing_a).traffic
            assert np.array_equal(got_a, solve_traffic(ext_a, routing_a))
            backend.bind(ext_b, config)
            routing_b = initial_routing(ext_b)
            got_b = backend.build_context(routing_b).traffic
            assert np.array_equal(got_b, solve_traffic(ext_b, routing_b))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelBackend(workers=0)

    def test_resolve_backend(self):
        assert isinstance(resolve_backend(), SerialBackend)
        backend = resolve_backend(workers=3)
        assert isinstance(backend, ParallelBackend)
        assert backend.workers == 3
        explicit = SerialBackend()
        assert resolve_backend(backend=explicit) is explicit
        with pytest.raises(ValueError):
            resolve_backend(backend=explicit, workers=2)

    def test_split_shards(self):
        assert _split_shards(5, 2) == [(0, 3), (3, 5)]
        assert _split_shards(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert _split_shards(6, 3) == [(0, 2), (2, 4), (4, 6)]
        shards = _split_shards(7, 3)
        covered = [j for lo, hi in shards for j in range(lo, hi)]
        assert covered == list(range(7))
