"""Tests for the process-parallel execution backend (:mod:`repro.parallel`).

The contract under test is strict: a :class:`ParallelBackend` must produce
**bit-identical** iterates to the serial engine -- not "close", equal -- for
any worker count, must not change the flow-solve count (the instrumentation
invariance the serial engine already pins), and must surface worker crashes
as a clean :class:`repro.exceptions.ParallelExecutionError` instead of a
hang or a wedged pool.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import (
    GradientAlgorithm,
    GradientConfig,
    Instrumentation,
    ParallelExecutionError,
    build_extended_network,
    solve,
)
from repro.core.routing import initial_routing, solve_traffic
from repro.parallel import (
    ParallelBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.parallel.backend import REPRO_BACKEND_ENV, _split_shards
from repro.scenarios import random_stream_network
from repro.scenarios import RandomNetworkSpec

ITERATIONS = 25


def _random_ext(seed: int, num_nodes: int = 18, num_commodities: int = 3):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(3, 4),
        layer_width_range=(2, 3),
    )
    return build_extended_network(random_stream_network(spec, seed=seed))


def _trajectory(ext, config, backend=None, iterations=ITERATIONS):
    """The full phi trajectory of a run (every iterate, not just records)."""
    algo = GradientAlgorithm(ext, config, backend=backend)
    routing = initial_routing(ext)
    states = [routing.phi.copy()]
    context = algo.compute_context(routing)
    for _ in range(iterations):
        routing = algo.step(routing, context=context)
        states.append(routing.phi.copy())
        context = algo.compute_context(routing)
    return states


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_trajectory_bit_identical_to_serial(self, workers, seed):
        ext = _random_ext(seed)
        config = GradientConfig(eta=0.04)
        serial = _trajectory(ext, config)
        with ParallelBackend(workers=workers) as backend:
            parallel = _trajectory(ext, config, backend=backend)
        assert len(serial) == len(parallel)
        for iteration, (a, b) in enumerate(zip(serial, parallel)):
            assert np.array_equal(a, b), f"phi diverged at iteration {iteration}"

    def test_run_loop_bit_identical(self):
        ext = _random_ext(seed=5)
        config = GradientConfig(eta=0.04, max_iterations=40, record_every=5)
        r_serial = GradientAlgorithm(ext, config).run()
        with ParallelBackend(workers=2) as backend:
            r_parallel = GradientAlgorithm(ext, config, backend=backend).run()
        assert r_serial.iterations == r_parallel.iterations
        assert r_serial.converged == r_parallel.converged
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_parallel.history
        ]
        assert np.array_equal(
            r_serial.solution.routing.phi, r_parallel.solution.routing.phi
        )
        assert r_serial.solution.utility == r_parallel.solution.utility

    def test_no_blocking_config(self):
        ext = _random_ext(seed=9)
        config = GradientConfig(eta=0.04, use_blocking=False)
        serial = _trajectory(ext, config, iterations=10)
        with ParallelBackend(workers=2) as backend:
            parallel = _trajectory(ext, config, backend=backend, iterations=10)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_single_commodity_more_workers_than_commodities(self):
        ext = _random_ext(seed=2, num_nodes=12, num_commodities=1)
        config = GradientConfig(eta=0.04)
        serial = _trajectory(ext, config, iterations=10)
        with ParallelBackend(workers=4) as backend:
            parallel = _trajectory(ext, config, backend=backend, iterations=10)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_parallel_context_matches_serial_flow_solve(self):
        ext = _random_ext(seed=13)
        config = GradientConfig(eta=0.04)
        routing = initial_routing(ext)
        serial_ctx = GradientAlgorithm(ext, config).compute_context(routing)
        with ParallelBackend(workers=2) as backend:
            backend.bind(ext, config)
            parallel_ctx = backend.build_context(routing)
        assert np.array_equal(serial_ctx.traffic, parallel_ctx.traffic)
        assert np.array_equal(serial_ctx.edge_usage, parallel_ctx.edge_usage)
        assert np.array_equal(serial_ctx.node_usage, parallel_ctx.node_usage)
        assert np.array_equal(serial_ctx.dadf, parallel_ctx.dadf)
        assert serial_ctx.cost == parallel_ctx.cost


class TestSolveIntegration:
    def test_solve_workers_bit_identical(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=4
        )
        config = GradientConfig(eta=0.04, max_iterations=30)
        s_serial = solve(net, config=config)
        s_parallel = solve(net, config=config, workers=2)
        assert np.array_equal(s_serial.routing.phi, s_parallel.routing.phi)
        assert s_serial.utility == s_parallel.utility

    def test_solve_distributed_workers(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=14, num_commodities=2), seed=6
        )
        config = GradientConfig(eta=0.04, max_iterations=5)
        r_serial = solve(net, method="distributed", config=config, full_result=True)
        r_parallel = solve(
            net, method="distributed", config=config, full_result=True, workers=2
        )
        assert np.array_equal(
            r_serial.solution.routing.phi, r_parallel.solution.routing.phi
        )
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_parallel.history
        ]

    @pytest.mark.parametrize("method", ["optimal", "backpressure"])
    def test_solve_rejects_workers_for_other_methods(self, method):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=14, num_commodities=2), seed=6
        )
        with pytest.raises(TypeError, match="workers"):
            solve(net, method=method, workers=2)

    def test_flow_solve_counter_invariant(self):
        """A parallel run performs exactly as many flow solves as a serial one."""
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        config = GradientConfig(eta=0.04, max_iterations=20)
        inst_serial, inst_parallel = Instrumentation(), Instrumentation()
        solve(net, config=config, instrumentation=inst_serial)
        solve(net, config=config, instrumentation=inst_parallel, workers=2)
        serial_solves = inst_serial.registry.counter("flow_solves").value
        parallel_solves = inst_parallel.registry.counter("flow_solves").value
        assert serial_solves == parallel_solves
        assert serial_solves > 0

    def test_per_worker_phase_timings_recorded(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        inst = Instrumentation()
        solve(
            net,
            config=GradientConfig(eta=0.04, max_iterations=5),
            instrumentation=inst,
            workers=2,
        )
        histograms = inst.registry.as_dict()["histograms"]
        for worker in (0, 1):
            for phase in ("flow_solve", "marginals", "blocking", "gamma"):
                assert f"phase.worker{worker}.{phase}.seconds" in histograms


class TestCrashSafety:
    @pytest.mark.parametrize("phase", ["forecast", "step"])
    def test_worker_fault_surfaces_clean_error(self, phase):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ParallelBackend(workers=2, inject_fault=phase)
        try:
            with pytest.raises(ParallelExecutionError, match=phase):
                GradientAlgorithm(ext, config, backend=backend).run()
        finally:
            backend.close()

    def test_fault_tears_down_pool_and_shared_memory(self):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ParallelBackend(workers=2, inject_fault="forecast")
        with pytest.raises(ParallelExecutionError):
            GradientAlgorithm(ext, config, backend=backend).run()
        assert backend._pool is None
        assert backend._shm is None

    def test_unbound_backend_raises(self):
        backend = ParallelBackend(workers=2)
        with pytest.raises(ParallelExecutionError, match="bind"):
            backend.build_context(None)


class TestBackendLifecycle:
    def test_close_is_idempotent_and_reusable(self):
        ext = _random_ext(seed=7)
        config = GradientConfig(eta=0.04)
        backend = ParallelBackend(workers=2)
        backend.bind(ext, config)
        routing = initial_routing(ext)
        first = backend.build_context(routing).traffic
        backend.close()
        backend.close()  # idempotent
        # the pool restarts lazily after close
        again = backend.build_context(routing).traffic
        assert np.array_equal(first, again)
        backend.close()

    def test_rebind_to_new_network(self):
        config = GradientConfig(eta=0.04)
        ext_a, ext_b = _random_ext(seed=1), _random_ext(seed=2, num_nodes=14)
        with ParallelBackend(workers=2) as backend:
            backend.bind(ext_a, config)
            routing_a = initial_routing(ext_a)
            got_a = backend.build_context(routing_a).traffic
            assert np.array_equal(got_a, solve_traffic(ext_a, routing_a))
            backend.bind(ext_b, config)
            routing_b = initial_routing(ext_b)
            got_b = backend.build_context(routing_b).traffic
            assert np.array_equal(got_b, solve_traffic(ext_b, routing_b))

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelBackend(workers=0)

    def test_resolve_backend(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(), SerialBackend)
        backend = resolve_backend(workers=3)
        assert isinstance(backend, ParallelBackend)
        assert backend.workers == 3
        explicit = SerialBackend()
        assert resolve_backend(backend=explicit) is explicit
        with pytest.raises(ValueError):
            resolve_backend(backend=explicit, workers=2)

    def test_resolve_backend_one_worker_is_serial(self, monkeypatch):
        """A pool of one is pure overhead: workers=1 means the serial engine."""
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(workers=1), SerialBackend)
        assert isinstance(resolve_backend(backend="thread", workers=1), SerialBackend)
        assert isinstance(resolve_backend(backend="process", workers=1), SerialBackend)

    def test_resolve_backend_names(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(backend="serial"), SerialBackend)
        thread = resolve_backend(backend="thread", workers=2)
        assert isinstance(thread, ThreadBackend) and thread.workers == 2
        process = resolve_backend(backend="process", workers=2)
        assert isinstance(process, ParallelBackend) and process.workers == 2
        stale = resolve_backend(workers=4, staleness=3)
        assert isinstance(stale, ParallelBackend) and stale.staleness == 3
        with pytest.raises(ValueError):
            resolve_backend(backend="bogus")
        with pytest.raises(ValueError):
            resolve_backend(backend="serial", workers=4)
        with pytest.raises(ValueError):
            resolve_backend(backend="thread", workers=2, staleness=1)
        with pytest.raises(ValueError):
            resolve_backend(staleness=2)  # needs the process backend
        with pytest.raises(ValueError):
            resolve_backend(workers=2, staleness=-1)

    def test_resolve_backend_auto(self, monkeypatch):
        """Auto picks serial whenever one effective worker is all there is."""
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        ext = _random_ext(seed=1)
        resolved = resolve_backend(workers="auto", ext=ext)
        # small instance (or a single-CPU host): must not pay any pool
        from repro.parallel.backend import AUTO_THREAD_MIN_CELLS, available_cpus

        cells = ext.num_commodities * (ext.num_edges + ext.num_nodes)
        if available_cpus() == 1 or cells < AUTO_THREAD_MIN_CELLS:
            assert isinstance(resolved, SerialBackend)
        resolved.close()
        # without size information auto never picks the process pool
        if available_cpus() > 1:
            anonymous = resolve_backend(workers="auto")
            assert not isinstance(anonymous, ParallelBackend)
            anonymous.close()

    def test_resolve_backend_env_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "thread")
        resolved = resolve_backend()
        assert isinstance(resolved, ThreadBackend)
        resolved.close()
        # explicit arguments always beat the environment
        assert isinstance(resolve_backend(backend="serial"), SerialBackend)
        monkeypatch.setenv(REPRO_BACKEND_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_pool_clamped_to_commodity_count(self):
        """No worker process is started just to receive empty shards."""
        ext = _random_ext(seed=5, num_commodities=3)
        with ParallelBackend(workers=8) as backend:
            backend.bind(ext, GradientConfig(eta=0.04))
            backend.build_context(initial_routing(ext))
            assert backend._pool_size == 3
            assert len(backend._shards) == 3
            assert backend._pool._max_workers == 3

    def test_split_shards(self):
        assert _split_shards(5, 2) == [(0, 3), (3, 5)]
        assert _split_shards(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert _split_shards(6, 3) == [(0, 2), (2, 4), (4, 6)]
        shards = _split_shards(7, 3)
        covered = [j for lo, hi in shards for j in range(lo, hi)]
        assert covered == list(range(7))


class TestStaleness:
    """The bounded-staleness batched-dispatch contract of ParallelBackend."""

    def test_staleness_zero_is_bit_identical(self):
        """staleness=0 keeps the synchronous schedule: same bits as serial."""
        ext = _random_ext(seed=5)
        config = GradientConfig(eta=0.04, max_iterations=40, record_every=5)
        r_serial = GradientAlgorithm(ext, config).run()
        with ParallelBackend(workers=2, staleness=0) as backend:
            r_stale = GradientAlgorithm(ext, config, backend=backend).run()
        assert r_serial.iterations == r_stale.iterations
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_stale.history
        ]
        assert np.array_equal(
            r_serial.solution.routing.phi, r_stale.solution.routing.phi
        )

    def test_staleness_within_documented_drift_bound(self):
        """staleness>0 relaxes bit-identity but not the drift bound."""
        from repro.validate import (
            STALENESS_DRIFT_RTOL,
            AlgorithmSpec,
            DifferentialOracle,
        )

        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=4
        )
        config = GradientConfig(eta=0.04, max_iterations=60, record_every=10)
        oracle = DifferentialOracle(utility_rtol=STALENESS_DRIFT_RTOL)
        report = oracle.compare(
            net,
            AlgorithmSpec(config=config, label="serial"),
            AlgorithmSpec(config=config, workers=2, staleness=4),
        )
        assert report.passed, report.summary()

    @pytest.mark.parametrize("staleness", [1, 4])
    def test_barrier_knife_edge_stays_within_drift_bound(self, staleness):
        """Regression: near the capacity barrier a batch on frozen dadf can
        overshoot into the penalty wall -- and the accumulated drift can flip
        a discrete blocked-set decision, after which even the exact full-eta
        step ascends.  Unguarded, this instance drifted ~40% from serial.
        The monotonicity guard must reject the blown-up batches (visible in
        parallel.batch_rejected) and the eta-backoff redo must keep the
        final utility inside the documented bound."""
        from repro.validate import STALENESS_DRIFT_RTOL

        net = random_stream_network(
            RandomNetworkSpec(num_nodes=20, num_commodities=3), seed=7
        )
        config = GradientConfig(eta=0.04, max_iterations=120, record_every=10)
        serial = solve(net, config=config, full_result=True)
        inst = Instrumentation()
        stale = solve(
            net, config=config, workers=2, staleness=staleness,
            full_result=True, instrumentation=inst,
        )
        drift = abs(stale.final_utility - serial.final_utility) / abs(
            serial.final_utility
        )
        assert drift <= STALENESS_DRIFT_RTOL, drift
        counters = inst.registry.as_dict()["counters"]
        assert counters.get("parallel.batch_rejected", 0) > 0
        # rejected batches are redone synchronously: one logical flow solve
        # per iteration either way (backtracking trials count separately)
        assert counters["flow_solves"] == config.max_iterations + 1

    def test_staleness_preserves_record_cadence(self):
        """Batches never cross a record boundary: the trajectory keeps its
        exact record_every sampling, relaxed mode or not."""
        ext = _random_ext(seed=7)
        config = GradientConfig(eta=0.04, max_iterations=40, record_every=5)
        r_serial = GradientAlgorithm(ext, config).run()
        with ParallelBackend(workers=2, staleness=3) as backend:
            r_stale = GradientAlgorithm(ext, config, backend=backend).run()
        assert [h.iteration for h in r_stale.history] == [
            h.iteration for h in r_serial.history
        ]

    def test_staleness_flow_solve_count_invariant(self):
        """Batched dispatch still performs one flow solve per iteration."""
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        config = GradientConfig(
            eta=0.04, max_iterations=20, record_every=5, tolerance=0.0
        )
        inst_serial, inst_stale = Instrumentation(), Instrumentation()
        solve(net, config=config, instrumentation=inst_serial)
        solve(net, config=config, instrumentation=inst_stale, workers=2, staleness=4)
        serial_solves = inst_serial.registry.counter("flow_solves").value
        stale_solves = inst_stale.registry.counter("flow_solves").value
        assert serial_solves == stale_solves
        assert inst_stale.registry.counter("parallel.batches").value > 0

    def test_invalid_staleness(self):
        with pytest.raises(ValueError):
            ParallelBackend(workers=2, staleness=-1)
        with pytest.raises(ValueError):
            ParallelBackend(workers=2, staleness="2")

    def test_solve_staleness_requires_gradient_method(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=14, num_commodities=2), seed=6
        )
        with pytest.raises(TypeError, match="staleness"):
            solve(net, method="distributed", workers=2, staleness=2)

    def test_batch_worker_fault_surfaces_clean_error(self):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=10, record_every=5)
        backend = ParallelBackend(workers=2, staleness=4, inject_fault="batch")
        try:
            with pytest.raises(ParallelExecutionError, match="batch"):
                GradientAlgorithm(ext, config, backend=backend).run()
        finally:
            backend.close()


class TestResourceHygiene:
    """No leaked pools or shared-memory segments at interpreter exit."""

    def test_no_resource_tracker_leak_warnings(self):
        """A clean run, a crashed run, and an unclosed backend must all exit
        without resource_tracker leak warnings (the shm atexit safety net
        plus solve()'s context-managed backend lifecycle)."""
        script = textwrap.dedent(
            """
            from repro import (
                GradientAlgorithm,
                GradientConfig,
                ParallelExecutionError,
                build_extended_network,
                solve,
            )
            from repro.core.routing import initial_routing
            from repro.parallel import ParallelBackend
            from repro.scenarios import random_stream_network
            from repro.scenarios import RandomNetworkSpec

            net = random_stream_network(
                RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
            )
            config = GradientConfig(eta=0.04, max_iterations=5)
            solve(net, config=config, workers=2)  # clean path

            ext = build_extended_network(net)
            crashing = ParallelBackend(workers=2, inject_fault="step")
            try:
                GradientAlgorithm(ext, config, backend=crashing).run()
            except ParallelExecutionError:
                pass  # the crash path tears pool + segments down

            leaky = ParallelBackend(workers=2)
            leaky.bind(ext, config)
            leaky.build_context(initial_routing(ext))
            # never closed: the atexit safety net must unlink the segments
            print("SUBPROCESS-OK")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SUBPROCESS-OK" in proc.stdout
        for marker in ("resource_tracker", "leaked", "KeyError"):
            assert marker not in proc.stderr, proc.stderr
