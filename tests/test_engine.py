"""Direct unit tests for the event engine (repro.simulation.engine).

test_simulation.py exercises the engine through full protocol runs; these
tests pin the engine's own contract -- scheduling, pausing, budgets, and
the observability tap -- with minimal hand-rolled agents.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation import EventEngine
from repro.simulation.messages import Message, TickMessage


class Recorder:
    """Agent that logs deliveries and optionally forwards each message."""

    def __init__(self, forward_to=None):
        self.received = []
        self.forward_to = forward_to

    def on_message(self, message, engine):
        self.received.append((engine.now, message))
        if self.forward_to is not None:
            engine.send(self.forward_to, message)


class SelfLooper:
    """Agent that re-sends every delivery to itself, forever."""

    def on_message(self, message, engine):
        engine.send(0, message)


def _msg(sender=0, commodity=0):
    return Message(sender=sender, commodity=commodity)


class TestConstruction:
    def test_rejects_zero_hop_latency(self):
        with pytest.raises(SimulationError, match="hop_latency"):
            EventEngine(hop_latency=0)

    def test_rejects_negative_delay(self):
        engine = EventEngine()
        engine.register(0, Recorder())
        with pytest.raises(SimulationError, match="delay"):
            engine.send(0, _msg(), delay=-1)

    def test_hop_latency_sets_default_delivery_time(self):
        engine = EventEngine(hop_latency=4)
        agent = Recorder()
        engine.register(0, agent)
        engine.send(0, _msg())
        engine.run_until_idle()
        assert agent.received[0][0] == 4


class TestRunUntil:
    def test_stop_condition_pauses_with_messages_pending(self):
        engine = EventEngine()
        agent = Recorder()
        engine.register(0, agent)
        for i in range(5):
            engine.send(0, _msg(sender=i), delay=i + 1)
        engine.run_until(lambda: len(agent.received) >= 2)
        assert len(agent.received) == 2
        assert engine.pending == 3  # paused, not drained
        engine.run_until_idle()  # resume finishes the rest
        assert len(agent.received) == 5
        assert engine.pending == 0

    def test_run_until_idle_returns_elapsed_ticks(self):
        engine = EventEngine()
        engine.register(0, Recorder())
        engine.send(0, _msg(), delay=7)
        assert engine.run_until_idle() == 7
        assert engine.run_until_idle() == 0  # idle engine: no time passes

    def test_event_budget_catches_livelock(self):
        engine = EventEngine()
        engine.register(0, SelfLooper())
        engine._max_events = 100  # shrink the backstop for the test
        engine.send(0, _msg())
        with pytest.raises(SimulationError, match="event budget"):
            engine.run_until_idle()


class TestSchedulingPrimitives:
    def test_deliver_later_skips_accounting(self):
        engine = EventEngine()
        engine.register(0, Recorder())
        engine._deliver_later(0, TickMessage(sender=0, commodity=-1), 3)
        assert engine.pending == 1
        assert engine.metrics.messages_total == 0  # raw path: no accounting
        engine.run_until_idle()

    def test_on_send_tap_sees_every_protocol_send(self):
        tapped = []
        engine = EventEngine(on_send=tapped.append)
        engine.register(0, Recorder())
        engine.register(1, Recorder(forward_to=0))
        engine.send(1, _msg())
        engine.run_until_idle()
        assert len(tapped) == 2  # the original send plus the forward
        assert engine.metrics.messages_total == 2

    def test_equal_time_deliveries_keep_send_order(self):
        engine = EventEngine()
        agent = Recorder()
        engine.register(0, agent)
        for i in range(10):
            engine.send(0, _msg(sender=i), delay=5)
        engine.run_until_idle()
        assert [m.sender for _, m in agent.received] == list(range(10))
