"""Tests for the online re-optimisation module (events, rebuild, recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.routing import (
    feasibility_report,
    initial_routing,
    validate_routing,
)
from repro.exceptions import ModelError
from repro.online import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NodeFailure,
    OnlineOrchestrator,
    apply_event,
    emergency_shed,
    remap_routing,
)
from repro.scenarios import diamond_network, figure1_network


class TestEventValidation:
    def test_negative_iteration(self):
        with pytest.raises(ModelError):
            DemandChange(at_iteration=-1, commodity="c", new_rate=1.0)

    def test_demand_change_requires_fields(self):
        with pytest.raises(ModelError):
            DemandChange(at_iteration=0, commodity="", new_rate=1.0)
        with pytest.raises(ModelError):
            DemandChange(at_iteration=0, commodity="c", new_rate=0.0)

    def test_link_failure_requires_link(self):
        with pytest.raises(ModelError):
            LinkFailure(at_iteration=0, link=("", "b"))

    def test_capacity_change_requires_positive(self):
        with pytest.raises(ModelError):
            CapacityChange(at_iteration=0, node="n", new_capacity=0.0)


class TestApplyEvent:
    def test_demand_change(self):
        net = figure1_network()
        result = apply_event(
            net, DemandChange(at_iteration=1, commodity="S1", new_rate=99.0)
        )
        assert result.network.commodity("S1").max_rate == pytest.approx(99.0)
        assert result.network.commodity("S2").max_rate == pytest.approx(12.0)
        assert not result.dropped_commodities
        # original untouched
        assert net.commodity("S1").max_rate == pytest.approx(15.0)

    def test_demand_change_unknown_commodity(self):
        with pytest.raises(ModelError):
            apply_event(
                figure1_network(),
                DemandChange(at_iteration=1, commodity="nope", new_rate=1.0),
            )

    def test_capacity_change(self):
        net = figure1_network()
        result = apply_event(
            net, CapacityChange(at_iteration=1, node="server3", new_capacity=7.0)
        )
        assert result.network.physical.node("server3").capacity == pytest.approx(7.0)

    def test_capacity_change_rejects_sink(self):
        with pytest.raises(ModelError):
            apply_event(
                figure1_network(),
                CapacityChange(at_iteration=1, node="sink1", new_capacity=5.0),
            )

    def test_link_failure_prunes_edges(self):
        net = figure1_network()
        result = apply_event(
            net, LinkFailure(at_iteration=1, link=("server2", "server4"))
        )
        s1 = result.network.commodity("S1")
        assert ("server2", "server4") not in s1.edges
        assert not result.dropped_commodities  # alternate paths exist

    def test_link_failure_drops_stranded_commodity(self):
        net = figure1_network()
        # S2's chain is 7 -> 3 -> 5 -> 8 -> sink2; cutting 3->5 strands it
        result = apply_event(
            net, LinkFailure(at_iteration=1, link=("server3", "server5"))
        )
        assert result.dropped_commodities == ["S2"]
        names = [c.name for c in result.network.commodities]
        assert names == ["S1"]

    def test_node_failure(self):
        net = figure1_network()
        result = apply_event(net, NodeFailure(at_iteration=1, node="server2"))
        s1 = result.network.commodity("S1")
        assert all("server2" not in edge for edge in s1.edges)
        # S1 still reaches sink1 via server3
        assert not result.dropped_commodities

    def test_node_failure_unknown(self):
        with pytest.raises(ModelError):
            apply_event(figure1_network(), NodeFailure(at_iteration=1, node="x"))

    def test_event_stranding_everything_rejected(self):
        net = diamond_network()
        with pytest.raises(ModelError):
            apply_event(net, NodeFailure(at_iteration=1, node="src"))

    def test_departure_removes_commodity(self):
        net = figure1_network()
        result = apply_event(
            net, CommodityDeparture(at_iteration=1, commodity="S2")
        )
        assert [c.name for c in result.network.commodities] == ["S1"]
        # an intentional departure is not a loss; dropped stays empty
        assert result.dropped_commodities == []
        assert net.num_commodities == 2  # input untouched

    def test_departure_unknown_commodity(self):
        with pytest.raises(ModelError):
            apply_event(
                figure1_network(),
                CommodityDeparture(at_iteration=1, commodity="nope"),
            )

    def test_last_departure_rejected(self):
        net = diamond_network()
        (only,) = [c.name for c in net.commodities]
        with pytest.raises(ModelError):
            apply_event(net, CommodityDeparture(at_iteration=1, commodity=only))

    def test_arrival_round_trip(self):
        net = figure1_network()
        s2 = net.commodity("S2")
        smaller = apply_event(
            net, CommodityDeparture(at_iteration=1, commodity="S2")
        ).network
        back = apply_event(
            smaller, CommodityArrival(at_iteration=2, commodity=s2)
        ).network
        assert sorted(c.name for c in back.commodities) == ["S1", "S2"]
        assert back.commodity("S2") is s2  # shared, not copied

    def test_arrival_duplicate_name_rejected(self):
        net = figure1_network()
        with pytest.raises(ModelError):
            apply_event(
                net,
                CommodityArrival(at_iteration=1, commodity=net.commodity("S1")),
            )

    def test_event_constructor_validation(self):
        with pytest.raises(ModelError):
            CommodityArrival(at_iteration=1, commodity=None)
        with pytest.raises(ModelError):
            CommodityDeparture(at_iteration=1, commodity="")


class TestRemapRouting:
    def test_identity_when_topology_unchanged(self):
        net = figure1_network()
        ext = build_extended_network(net)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=500)
        ).run()
        rebuilt = apply_event(
            net, DemandChange(at_iteration=1, commodity="S1", new_rate=20.0)
        )
        new_ext = build_extended_network(rebuilt.network)
        carried = remap_routing(ext, result.solution.routing, new_ext)
        validate_routing(new_ext, carried)
        # identical edge structure => identical fractions
        np.testing.assert_allclose(
            np.sort(carried.phi[carried.phi > 0]),
            np.sort(result.solution.routing.phi[result.solution.routing.phi > 0]),
            rtol=1e-9,
        )

    def test_redistributes_after_link_failure(self):
        net = figure1_network()
        ext = build_extended_network(net)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=800)
        ).run()
        rebuilt = apply_event(
            net, LinkFailure(at_iteration=1, link=("server2", "server4"))
        )
        new_ext = build_extended_network(rebuilt.network, require_connected=False)
        carried = remap_routing(ext, result.solution.routing, new_ext)
        validate_routing(new_ext, carried)

    def test_fresh_nodes_get_default(self):
        """A node whose out-mass entirely vanished falls back to defaults."""
        net = figure1_network()
        ext = build_extended_network(net)
        routing = initial_routing(ext)
        rebuilt = apply_event(
            net, LinkFailure(at_iteration=1, link=("server3", "server5"))
        )
        new_ext = build_extended_network(rebuilt.network, require_connected=False)
        carried = remap_routing(ext, routing, new_ext)
        validate_routing(new_ext, carried)


class TestEmergencyShed:
    def test_no_change_when_feasible(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        shed = emergency_shed(diamond_ext, routing)
        np.testing.assert_array_equal(shed.phi, routing.phi)

    def test_restores_feasibility(self):
        net = diamond_network(top_capacity=3.0, bottom_capacity=3.0,
                              source_capacity=100.0, max_rate=30.0)
        ext = build_extended_network(net)
        routing = initial_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 1.0  # wildly oversubscribed
        routing.phi[0, view.difference_edge] = 0.0
        shed = emergency_shed(ext, routing, utilization_target=0.98)
        report = feasibility_report(ext, shed)
        assert report.max_utilization <= 0.981
        assert shed.phi[0, view.input_edge] < 1.0
        validate_routing(ext, shed)

    def test_interior_split_preserved(self):
        net = diamond_network(top_capacity=3.0, bottom_capacity=3.0,
                              source_capacity=100.0, max_rate=30.0)
        ext = build_extended_network(net)
        routing = initial_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 1.0
        routing.phi[0, view.difference_edge] = 0.0
        src = view.source
        out = ext.commodity_out_edges[0][src]
        routing.phi[0, out[0]], routing.phi[0, out[1]] = 0.7, 0.3
        shed = emergency_shed(ext, routing)
        assert shed.phi[0, out[0]] == pytest.approx(0.7)
        assert shed.phi[0, out[1]] == pytest.approx(0.3)

    def test_rejects_bad_target(self, diamond_ext):
        with pytest.raises(ModelError):
            emergency_shed(diamond_ext, initial_routing(diamond_ext), 0.0)


class TestOrchestrator:
    def test_rejects_simultaneous_events(self):
        net = figure1_network()
        events = [
            DemandChange(at_iteration=5, commodity="S1", new_rate=20.0),
            DemandChange(at_iteration=5, commodity="S2", new_rate=20.0),
        ]
        with pytest.raises(ModelError):
            OnlineOrchestrator(net, events)

    def test_rejects_zero_iterations(self):
        orch = OnlineOrchestrator(figure1_network(), [])
        with pytest.raises(ModelError):
            orch.run(0)

    def test_quiet_run_matches_plain_gradient(self):
        net = figure1_network()
        orch = OnlineOrchestrator(net, [], GradientConfig(eta=0.05))
        result = orch.run(600)
        ext = build_extended_network(net)
        plain = GradientAlgorithm(
            ext,
            GradientConfig(eta=0.05, max_iterations=600, tolerance=0.0,
                           patience=10**9),
        ).run()
        assert result.final_utility == pytest.approx(
            plain.history[-1].utility, rel=1e-9
        )

    def test_demand_surge_recovery(self):
        net = figure1_network()
        events = [DemandChange(at_iteration=400, commodity="S1", new_rate=30.0)]
        result = OnlineOrchestrator(net, events, GradientConfig(eta=0.05)).run(1200)
        (report,) = result.recoveries
        assert report.new_optimal_utility > report.pre_event_utility
        assert report.iterations_to_95 is not None
        assert result.final_utility >= 0.95 * report.new_optimal_utility

    def test_link_failure_drops_and_recovers(self):
        net = figure1_network()
        events = [LinkFailure(at_iteration=400, link=("server3", "server5"))]
        result = OnlineOrchestrator(net, events, GradientConfig(eta=0.05)).run(1200)
        (report,) = result.recoveries
        assert report.dropped_commodities == ["S2"]
        assert report.new_optimal_utility < report.pre_event_utility
        assert result.final_utility >= 0.95 * report.new_optimal_utility

    def test_warm_start_no_worse_than_cold(self):
        net = figure1_network()
        events = [NodeFailure(at_iteration=500, node="server2")]
        warm = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), warm_start=True
        ).run(1500)
        cold = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), warm_start=False
        ).run(1500)
        (warm_report,) = warm.recoveries
        (cold_report,) = cold.recoveries
        assert warm_report.iterations_to_95 is not None
        assert cold_report.iterations_to_95 is not None
        assert warm_report.iterations_to_95 <= cold_report.iterations_to_95

    def test_records_carry_event_labels(self):
        net = figure1_network()
        events = [CapacityChange(at_iteration=100, node="server3", new_capacity=10.0)]
        result = OnlineOrchestrator(net, events, GradientConfig(eta=0.05)).run(300)
        labels = [r.event for r in result.records if r.event]
        assert labels == ["CapacityChange"]

    def test_incremental_matches_legacy_bitwise(self):
        """The delta path is an optimisation, not a different algorithm:
        the whole timeline must land on the exact same utility."""
        net = figure1_network()
        events = [
            DemandChange(at_iteration=150, commodity="S1", new_rate=25.0),
            CapacityChange(at_iteration=300, node="server3", new_capacity=9.0),
            LinkFailure(at_iteration=450, link=("server2", "server4")),
        ]
        fast = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True
        ).run(600)
        slow = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=False
        ).run(600)
        assert fast.final_utility == slow.final_utility  # bit-identical
        for a, b in zip(fast.records, slow.records):
            assert a.utility == b.utility

    def test_incremental_reports_epochs(self):
        net = figure1_network()
        events = [
            DemandChange(at_iteration=50, commodity="S1", new_rate=25.0),
            LinkFailure(at_iteration=100, link=("server2", "server4")),
        ]
        result = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True
        ).run(200)
        assert [r.epoch for r in result.recoveries] == [1, 2]

    def test_rejects_backend_and_workers_together(self):
        from repro.parallel.backend import SerialBackend

        with pytest.raises(ModelError):
            OnlineOrchestrator(
                figure1_network(), [], backend=SerialBackend(), workers=2
            )

    def test_orchestrator_with_parallel_workers_matches_serial(self):
        net = figure1_network()
        events = [DemandChange(at_iteration=60, commodity="S1", new_rate=25.0)]
        serial = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True
        ).run(120)
        parallel = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True, workers=2
        ).run(120)
        assert parallel.final_utility == serial.final_utility
