"""Tests for the blocked-set / tag-propagation machinery (eq. (18))."""

from __future__ import annotations

import numpy as np

from repro.core.blocking import compute_blocked_sets, improper_links, node_tags
from repro.core.marginals import (
    CostModel,
    edge_marginals,
    link_cost_derivative,
    marginal_cost_to_destination,
)
from repro.core.routing import (
    resource_usage,
    solve_traffic,
    uniform_routing,
)


def marginal_context(ext, routing, eps=0.2):
    cost_model = CostModel(eps=eps)
    traffic = solve_traffic(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
    contexts = []
    for view in ext.commodities:
        dadr = marginal_cost_to_destination(ext, view.index, routing, dadf)
        delta = edge_marginals(ext, view.index, dadf, dadr)
        contexts.append((dadr, delta))
    return traffic, contexts


class TestImproperLinks:
    def test_no_improper_links_on_descending_marginals(self, diamond_ext):
        """With an interior routing on the diamond, dA/dr strictly decreases
        toward the sink, so no link points 'uphill'."""
        routing = uniform_routing(diamond_ext)
        traffic, contexts = marginal_context(diamond_ext, routing)
        dadr, delta = contexts[0]
        improper = improper_links(
            diamond_ext, 0, routing, traffic, dadr, delta, eta=0.04
        )
        assert not improper.any()

    def test_zero_phi_links_never_improper(self, figure1_ext):
        routing = uniform_routing(figure1_ext)
        routing.phi[0] *= 0.0
        # rebuild a valid routing with some zero fractions: all mass on the
        # first out-edge at every node
        for view in figure1_ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = figure1_ext.commodity_out_edges[j][node]
                if out:
                    routing.phi[j, out] = 0.0
                    routing.phi[j, out[0]] = 1.0
        traffic, contexts = marginal_context(figure1_ext, routing)
        for view in figure1_ext.commodities:
            dadr, delta = contexts[view.index]
            improper = improper_links(
                figure1_ext, view.index, routing, traffic, dadr, delta, eta=0.04
            )
            phi = routing.phi[view.index]
            assert not improper[phi <= 1e-12].any()

    def test_synthetic_uphill_link_detected(self, diamond_ext):
        """Force an inverted marginal landscape and check eq. (18) fires."""
        routing = uniform_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        view = diamond_ext.commodities[0]
        dadr = np.zeros(diamond_ext.num_nodes)
        delta = np.zeros(diamond_ext.num_edges)
        # pick a flow-carrying edge out of the source and invert its ends
        edge = diamond_ext.commodity_out_edges[0][view.source][0]
        tail, head = diamond_ext.edge_tail[edge], diamond_ext.edge_head[edge]
        dadr[tail] = 1.0
        dadr[head] = 2.0  # downstream looks *more* expensive
        delta[edge] = 1.0  # tiny spread => phi >= threshold
        improper = improper_links(
            diamond_ext, 0, routing, traffic, dadr, delta, eta=0.04
        )
        assert improper[edge]

    def test_large_spread_escapes_blocking(self, diamond_ext):
        """If eta/t * (delta - dadr) exceeds phi, the link can be zeroed this
        iteration and is not improper."""
        routing = uniform_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        view = diamond_ext.commodities[0]
        dadr = np.zeros(diamond_ext.num_nodes)
        delta = np.zeros(diamond_ext.num_edges)
        edge = diamond_ext.commodity_out_edges[0][view.source][0]
        tail, head = diamond_ext.edge_tail[edge], diamond_ext.edge_head[edge]
        dadr[tail] = 1.0
        dadr[head] = 2.0
        delta[edge] = 1e9  # enormous spread => threshold above phi
        improper = improper_links(
            diamond_ext, 0, routing, traffic, dadr, delta, eta=0.04
        )
        assert not improper[edge]


class TestTagPropagation:
    def test_tags_flood_upstream_of_improper_link(self, figure1_ext):
        routing = uniform_routing(figure1_ext)
        view = figure1_ext.commodities[0]
        j = view.index
        # mark an edge deep in the commodity DAG as improper
        interior_edges = [
            e
            for e in view.edge_indices
            if figure1_ext.edge_tail[e] != view.dummy
            and figure1_ext.edge_head[e] != view.sink
        ]
        target = interior_edges[len(interior_edges) // 2]
        improper = np.zeros(figure1_ext.num_edges, dtype=bool)
        improper[target] = True
        tags = node_tags(figure1_ext, j, routing, improper)
        tail = figure1_ext.edge_tail[target]
        assert tags[tail]
        # every node with a positive-phi path to `tail` must be tagged
        position = {n: i for i, n in enumerate(view.topo_order)}
        for node in view.node_indices:
            if node == view.sink:
                continue
            if position[node] < position[tail]:
                reachable = _reaches(figure1_ext, j, routing, node, tail)
                if reachable:
                    assert tags[node], figure1_ext.nodes[node].name

    def test_no_improper_no_tags(self, figure1_ext):
        routing = uniform_routing(figure1_ext)
        improper = np.zeros(figure1_ext.num_edges, dtype=bool)
        for view in figure1_ext.commodities:
            tags = node_tags(figure1_ext, view.index, routing, improper)
            assert not tags.any()


def _reaches(ext, j, routing, start, goal):
    """Positive-phi reachability inside one commodity subgraph."""
    stack, seen = [start], set()
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        for e in ext.commodity_out_edges[j][node]:
            if routing.phi[j, e] > 1e-12:
                stack.append(ext.edge_head[e])
    return False


class TestBlockedSets:
    def test_only_zero_phi_edges_blocked(self, figure1_ext):
        routing = uniform_routing(figure1_ext)
        traffic, contexts = marginal_context(figure1_ext, routing)
        for view in figure1_ext.commodities:
            dadr, delta = contexts[view.index]
            blocked = compute_blocked_sets(
                figure1_ext, view.index, routing, traffic, dadr, delta, eta=0.04
            )
            phi = routing.phi[view.index]
            assert not blocked[phi > 1e-12].any()

    def test_blocked_edges_point_to_tagged_heads(self, diamond_ext):
        routing = uniform_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        view = diamond_ext.commodities[0]
        # make one edge zero-phi and force its head tagged via synthetic
        # marginals with an improper link out of that head
        src = view.source
        out = diamond_ext.commodity_out_edges[0][src]
        zero_edge, keep_edge = out[0], out[1]
        routing.phi[0, zero_edge] = 0.0
        routing.phi[0, keep_edge] = 1.0
        head = diamond_ext.edge_head[zero_edge]
        downstream = diamond_ext.commodity_out_edges[0][head][0]
        dadr = np.zeros(diamond_ext.num_nodes)
        delta = np.zeros(diamond_ext.num_edges)
        dadr[diamond_ext.edge_tail[downstream]] = 1.0
        dadr[diamond_ext.edge_head[downstream]] = 2.0
        delta[downstream] = 1.0
        # ensure the improper edge carries flow
        routing.phi[0, downstream] = 1.0
        blocked = compute_blocked_sets(
            diamond_ext, 0, routing, traffic, dadr, delta, eta=0.04
        )
        assert blocked[zero_edge]
        assert not blocked[keep_edge]
