"""Tests for the admission-control front end (token bucket shaping)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_extended_network
from repro.core.admission import AdmissionController, TokenBucket
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.exceptions import ModelError
from repro.scenarios import diamond_network, onoff_trace, poisson_trace


@pytest.fixture(scope="module")
def diamond_solution():
    ext = build_extended_network(diamond_network())
    return GradientAlgorithm(ext, GradientConfig(eta=0.05, max_iterations=3000)).run().solution


class TestTokenBucket:
    def test_initial_burst_available(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.offer(5.0, elapsed=0.0) == pytest.approx(5.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=10.0)
        bucket.offer(10.0, elapsed=0.0)  # drain
        assert bucket.offer(100.0, elapsed=3.0) == pytest.approx(6.0)

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        bucket.offer(0.0, elapsed=1000.0)
        assert bucket.offer(100.0, elapsed=0.0) == pytest.approx(4.0)

    def test_reset(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        bucket.offer(4.0, elapsed=0.0)
        bucket.reset()
        assert bucket.tokens == pytest.approx(4.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ModelError):
            TokenBucket(rate=1.0, burst=0.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ModelError):
            bucket.offer(-1.0, 0.0)

    @given(
        rate=st.floats(0.1, 10.0),
        burst=st.floats(0.5, 20.0),
        volumes=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_long_run_rate_bound(self, rate, burst, volumes):
        """Admitted volume over T slots never exceeds rate*T + burst."""
        bucket = TokenBucket(rate=rate, burst=burst)
        admitted = sum(bucket.offer(v, elapsed=1.0) for v in volumes)
        assert admitted <= rate * len(volumes) + burst + 1e-6

    @given(volumes=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_never_admits_more_than_offered(self, volumes):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        for v in volumes:
            assert bucket.offer(v, elapsed=1.0) <= v + 1e-12


class TestAdmissionController:
    def test_rates_come_from_solution(self, diamond_solution):
        controller = AdmissionController(diamond_solution)
        assert controller.rate("diamond") == pytest.approx(
            float(diamond_solution.admitted[0])
        )

    def test_unknown_commodity(self, diamond_solution):
        controller = AdmissionController(diamond_solution)
        with pytest.raises(ModelError):
            controller.rate("nope")
        with pytest.raises(ModelError):
            controller.shape("nope", [1.0])

    def test_constant_trace_at_rate_passes(self, diamond_solution):
        controller = AdmissionController(diamond_solution, burst_seconds=2.0)
        rate = controller.rate("diamond")
        trace = np.full(50, rate)
        shaped = controller.shape("diamond", trace)
        assert shaped.admitted_fraction == pytest.approx(1.0)
        np.testing.assert_allclose(shaped.shed, 0.0, atol=1e-9)

    def test_overload_is_shed(self, diamond_solution):
        controller = AdmissionController(diamond_solution, burst_seconds=1.0)
        rate = controller.rate("diamond")
        trace = np.full(50, 2.0 * rate)
        shaped = controller.shape("diamond", trace)
        assert shaped.admitted_fraction == pytest.approx(0.51, abs=0.03)
        assert shaped.shed.sum() > 0

    def test_bursty_trace_respects_sustained_rate(self, diamond_solution):
        controller = AdmissionController(diamond_solution, burst_seconds=1.0)
        rate = controller.rate("diamond")
        trace = onoff_trace(peak_rate=5 * rate, num_slots=200, seed=1)
        shaped = controller.shape("diamond", trace)
        assert shaped.admitted.sum() <= rate * 200 + rate + 1e-6
        np.testing.assert_allclose(
            shaped.admitted + shaped.shed, shaped.offered, atol=1e-9
        )

    def test_shape_all(self, diamond_solution):
        controller = AdmissionController(diamond_solution)
        traces = {"diamond": poisson_trace(3.0, 20, seed=2)}
        shaped = controller.shape_all(traces)
        assert set(shaped) == {"diamond"}

    def test_report_mentions_rates(self, diamond_solution):
        controller = AdmissionController(diamond_solution)
        report = controller.report()
        assert "diamond" in report
        assert "%" in report

    def test_rejects_bad_args(self, diamond_solution):
        with pytest.raises(ModelError):
            AdmissionController(diamond_solution, burst_seconds=0.0)
        controller = AdmissionController(diamond_solution)
        with pytest.raises(ModelError):
            controller.shape("diamond", [1.0], slot_length=0.0)
        with pytest.raises(ModelError):
            controller.shape("diamond", [-1.0])
