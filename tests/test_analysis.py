"""Tests for the analysis toolkit (convergence metrics, tables, ASCII plots)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.analysis import (
    AlgorithmTrajectory,
    TableBuilder,
    ascii_plot,
    figure4_table,
    is_effectively_monotone,
    iterations_to_fraction,
    solution_table,
    summarize_convergence,
)
from repro.core.optimal import solve_lp
from repro.scenarios import diamond_network


class TestIterationsToFraction:
    def test_finds_first_crossing(self):
        iters = [0, 10, 20, 30]
        utils = [0.0, 5.0, 9.6, 9.9]
        assert iterations_to_fraction(iters, utils, reference=10.0, fraction=0.95) == 20

    def test_none_when_never_reached(self):
        assert (
            iterations_to_fraction([0, 10], [1.0, 2.0], reference=10.0, fraction=0.95)
            is None
        )

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            iterations_to_fraction([0], [1.0], reference=0.0, fraction=0.9)
        with pytest.raises(ValueError):
            iterations_to_fraction([0], [1.0], reference=1.0, fraction=1.5)
        with pytest.raises(ValueError):
            iterations_to_fraction([0, 1], [1.0], reference=1.0, fraction=0.9)


class TestMonotone:
    def test_increasing(self):
        assert is_effectively_monotone([1, 2, 3], "increasing")
        assert not is_effectively_monotone([1, 3, 2], "increasing", slack=1e-9)

    def test_decreasing(self):
        assert is_effectively_monotone([3, 2, 1], "decreasing")

    def test_slack_tolerates_wobble(self):
        assert is_effectively_monotone([1.0, 2.0, 1.9999999], "increasing")

    def test_unknown_direction(self):
        with pytest.raises(ValueError):
            is_effectively_monotone([1, 2], "sideways")


class TestSummaries:
    def test_summary_fields(self):
        iters = np.arange(0, 101, 10)
        utils = np.linspace(0, 10, 11)
        summary = summarize_convergence(iters, utils, reference=10.0)
        assert summary.final_fraction == pytest.approx(1.0)
        assert summary.iterations_to_90 == 90
        assert summary.monotone

    def test_row_renders(self):
        summary = summarize_convergence([0, 1], [0.0, 9.0], reference=10.0)
        row = summary.row("algo")
        assert "algo" in row
        assert "90.0%" in row


class TestTables:
    def test_table_builder(self):
        table = TableBuilder(["a", "b"])
        table.add_row("x", 1.23456)
        text = table.render(title="T")
        assert "T" in text and "1.235" in text

    def test_table_builder_arity_check(self):
        table = TableBuilder(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_figure4_table(self):
        text = figure4_table(
            10.0,
            [
                AlgorithmTrajectory("gradient", [0, 1, 2], [0.0, 9.0, 9.9]),
                AlgorithmTrajectory("back-pressure", [0, 100], [0.0, 9.6]),
            ],
        )
        assert "gradient" in text
        assert "back-pressure" in text
        assert "optimal (LP)" in text

    def test_solution_table(self):
        ext = build_extended_network(diamond_network())
        lp = solve_lp(ext)
        text = solution_table([lp, lp], ["lp-a", "lp-b"])
        assert "diamond" in text
        assert "TOTAL UTILITY" in text
        with pytest.raises(ValueError):
            solution_table([lp], ["a", "b"])
        with pytest.raises(ValueError):
            solution_table([], [])


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            [("linear", [1, 10, 100], [0.0, 5.0, 10.0])],
            log_x=True,
            title="demo",
        )
        assert "demo" in text
        assert "legend" in text
        assert "*" in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot(
            [
                ("one", [0, 1], [0.0, 1.0]),
                ("two", [0, 1], [1.0, 0.0]),
            ]
        )
        assert "*" in text and "+" in text

    def test_validates_input(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([("s", [1], [1.0])], width=4)
        with pytest.raises(ValueError):
            ascii_plot([("s", [], [])])

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([("flat", [0, 1, 2], [5.0, 5.0, 5.0])])
        assert "flat" in text

    def test_log_x_clamps_nonpositive_samples(self):
        """Iteration 0 on a log axis is clamped to the smallest positive x."""
        text = ascii_plot([("s", [0, 1, 100], [1.0, 2.0, 3.0])], log_x=True)
        assert "log scale" in text

    def test_log_x_with_no_positive_samples_uses_unit_floor(self):
        text = ascii_plot([("s", [0, 0], [1.0, 2.0])], log_x=True)
        assert "s" in text  # renders rather than dividing by zero

    def test_single_point_widens_both_axes(self):
        text = ascii_plot([("dot", [3.0], [7.0])])
        assert "7" in text  # y-axis label survives the degenerate range

    def test_axis_labels_in_footer(self):
        text = ascii_plot(
            [("s", [0, 1], [0.0, 1.0])], x_label="iteration", y_label="utility"
        )
        assert "[iteration]" in text
        assert "[utility]" in text

    def test_markers_cycle_past_the_palette(self):
        series = [(f"s{i}", [0, 1], [float(i), float(i)]) for i in range(8)]
        text = ascii_plot(series)
        legend = text.splitlines()[-1]
        # 8th series wraps around to the first marker
        assert "* s0" in legend and "* s7" in legend
