"""Tests for the centralized optimal solvers (LP, Frank-Wolfe, arc flows)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import minimize

from repro import build_extended_network
from repro.core.optimal import (
    arc_flows_to_routing,
    build_arc_flow_problem,
    solve_concave,
    solve_lp,
    solve_optimal,
)
from repro.core.routing import (
    admitted_rates,
    feasibility_report,
    solve_traffic,
    validate_routing,
)
from repro.core.utility import LinearUtility, LogUtility, SqrtUtility
from repro.exceptions import SolverError
from repro.scenarios import diamond_network


class TestArcFlowProblem:
    def test_variable_count(self, diamond_ext):
        problem = build_arc_flow_problem(diamond_ext)
        expected = sum(len(v.edge_indices) for v in diamond_ext.commodities)
        assert problem.num_vars == expected

    def test_conservation_rows_cover_non_sink_nodes(self, diamond_ext):
        problem = build_arc_flow_problem(diamond_ext)
        expected_rows = sum(
            len(v.node_indices) - 1 for v in diamond_ext.commodities
        )
        assert problem.a_eq.shape[0] == expected_rows

    def test_rhs_carries_offered_rates(self, diamond_ext):
        problem = build_arc_flow_problem(diamond_ext)
        assert problem.b_eq.sum() == pytest.approx(diamond_ext.lam.sum())

    def test_capacity_scale_bounds(self, diamond_ext):
        full = build_arc_flow_problem(diamond_ext, capacity_scale=1.0)
        scaled = build_arc_flow_problem(diamond_ext, capacity_scale=0.5)
        np.testing.assert_allclose(scaled.b_ub, 0.5 * full.b_ub)

    def test_rejects_bad_scale(self, diamond_ext):
        with pytest.raises(SolverError):
            build_arc_flow_problem(diamond_ext, capacity_scale=0.0)


class TestLP:
    def test_diamond_hand_optimum(self):
        """min(max_rate, (top+bottom)/cost, src/cost) = min(30, 20, 100) = 20."""
        ext = build_extended_network(diamond_network())
        solution = solve_lp(ext)
        assert solution.utility == pytest.approx(20.0, rel=1e-9)
        assert solution.admitted[0] == pytest.approx(20.0, rel=1e-9)

    def test_diamond_rate_limited(self):
        ext = build_extended_network(diamond_network(max_rate=5.0))
        assert solve_lp(ext).utility == pytest.approx(5.0, rel=1e-9)

    def test_diamond_source_limited(self):
        ext = build_extended_network(diamond_network(source_capacity=8.0))
        # src pays cost 1 per unit across both out-edges: total a <= 8
        assert solve_lp(ext).utility == pytest.approx(8.0, rel=1e-9)

    def test_bandwidth_limited(self):
        """With expansion gain 2, wire rate doubles after processing, so the
        post-source bandwidth (not compute) binds."""
        net = diamond_network(
            gain_top=2.0,
            gain_bottom=2.0,
            bandwidth=10.0,
            top_capacity=1000.0,
            bottom_capacity=1000.0,
            source_capacity=1000.0,
            max_rate=50.0,
        )
        ext = build_extended_network(net)
        # each src->mid wire carries 2a/2 = a units => a <= 10 per path side;
        # two parallel paths => a <= 10 + 10 = 20... but src->mid bandwidth
        # binds at 10 per link with flow a/2*2 = a per link? Each link carries
        # gain * (a/2) = a. So a <= 10.
        assert solve_lp(ext).utility == pytest.approx(10.0, rel=1e-6)

    def test_weighted_linear_objective(self):
        net = diamond_network(utility=LinearUtility(weight=3.0))
        ext = build_extended_network(net)
        assert solve_lp(ext).utility == pytest.approx(60.0, rel=1e-9)

    def test_rejects_nonlinear(self):
        net = diamond_network(utility=LogUtility())
        ext = build_extended_network(net)
        with pytest.raises(SolverError, match="non-linear"):
            solve_lp(ext)

    def test_figure1_full_admission(self, figure1_ext):
        solution = solve_lp(figure1_ext)
        np.testing.assert_allclose(solution.admitted, figure1_ext.lam, rtol=1e-9)

    def test_node_usage_respects_capacity(self, figure4_ext):
        solution = solve_lp(figure4_ext)
        node_usage = solution.extras["node_usage"]
        finite = np.isfinite(figure4_ext.capacity)
        assert np.all(
            node_usage[finite] <= figure4_ext.capacity[finite] * (1 + 1e-7)
        )


class TestConcave:
    def concave_ext(self):
        return build_extended_network(
            diamond_network(utility=LogUtility(weight=10.0))
        )

    def test_frank_wolfe_matches_slsqp(self):
        ext = self.concave_ext()
        fw = solve_concave(ext)

        problem = build_arc_flow_problem(ext)
        cols = problem.admitted_columns

        def negative_utility(y):
            total = 0.0
            for view in ext.commodities:
                total += float(view.utility.value(max(y[cols[view.index]], 0.0)))
            return -total

        res = minimize(
            negative_utility,
            x0=np.zeros(problem.num_vars),
            method="SLSQP",
            constraints=[
                {"type": "eq", "fun": lambda y: problem.a_eq @ y - problem.b_eq},
                {"type": "ineq", "fun": lambda y: problem.b_ub - problem.a_ub @ y},
            ],
            bounds=[(0, None)] * problem.num_vars,
            options={"maxiter": 300, "ftol": 1e-10},
        )
        assert res.success
        assert fw.utility == pytest.approx(-res.fun, rel=1e-4)

    def test_log_utility_still_admits_maximum_when_unconstrained(self):
        net = diamond_network(
            utility=LogUtility(),
            top_capacity=1000.0,
            bottom_capacity=1000.0,
            source_capacity=1000.0,
            max_rate=10.0,
        )
        ext = build_extended_network(net)
        solution = solve_concave(ext)
        # increasing utility + no binding constraint => admit everything
        assert solution.admitted[0] == pytest.approx(10.0, rel=1e-3)

    def test_dispatcher(self):
        linear_ext = build_extended_network(diamond_network())
        assert solve_optimal(linear_ext).method == "lp"
        concave_ext = self.concave_ext()
        assert solve_optimal(concave_ext).method == "frank-wolfe"

    def test_sqrt_utility(self):
        net = diamond_network(utility=SqrtUtility(weight=4.0))
        ext = build_extended_network(net)
        solution = solve_concave(ext)
        assert solution.admitted[0] == pytest.approx(20.0, rel=1e-2)


class TestArcFlowsToRouting:
    def test_roundtrip_reproduces_admitted_rates(self, figure1_ext):
        lp = solve_lp(figure1_ext)
        routing = arc_flows_to_routing(figure1_ext, lp.extras["arc_flows"])
        validate_routing(figure1_ext, routing)
        traffic = solve_traffic(figure1_ext, routing)
        recovered = admitted_rates(figure1_ext, routing, traffic)
        np.testing.assert_allclose(recovered, lp.admitted, rtol=1e-6, atol=1e-9)

    def test_roundtrip_feasible(self, diamond_ext):
        lp = solve_lp(diamond_ext)
        routing = arc_flows_to_routing(diamond_ext, lp.extras["arc_flows"])
        report = feasibility_report(diamond_ext, routing)
        assert report.feasible

    def test_idle_nodes_get_default_fractions(self, diamond_ext):
        flows = np.zeros((diamond_ext.num_commodities, diamond_ext.num_edges))
        routing = arc_flows_to_routing(diamond_ext, flows)
        validate_routing(diamond_ext, routing)
        view = diamond_ext.commodities[0]
        assert routing.phi[0, view.difference_edge] == 1.0


class TestSolutionObject:
    def test_lp_solution_reports(self, diamond_ext):
        solution = solve_lp(diamond_ext)
        assert solution.method == "lp"
        assert "diamond" in solution.admitted_by_name
        assert np.isnan(solution.cost)
        text = solution.summary()
        assert "lp" in text
        assert "admitted" in text
