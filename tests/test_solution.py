"""Tests for the Solution object and build_solution."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import CostModel
from repro.core.routing import initial_routing, uniform_routing
from repro.core.solution import build_solution
from repro.scenarios import diamond_network, figure1_network


@pytest.fixture(scope="module")
def solved():
    ext = build_extended_network(figure1_network())
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.05, max_iterations=1500)
    ).run()
    return ext, result.solution


class TestSolutionAccessors:
    def test_admitted_by_name(self, solved):
        ext, solution = solved
        by_name = solution.admitted_by_name
        assert set(by_name) == {"S1", "S2"}
        np.testing.assert_allclose(
            sorted(by_name.values()), sorted(solution.admitted)
        )

    def test_shed_complements_admitted(self, solved):
        ext, solution = solved
        for view in ext.commodities:
            total = (
                solution.admitted_by_name[view.name]
                + solution.shed_by_name[view.name]
            )
            assert total == pytest.approx(view.max_rate)

    def test_summary_contains_essentials(self, solved):
        __, solution = solved
        text = solution.summary()
        assert "gradient" in text
        assert "S1" in text and "S2" in text
        assert "utilization" in text

    def test_feasibility_report_present_with_routing(self, solved):
        __, solution = solved
        report = solution.feasibility()
        assert report is not None
        assert report.feasible

    def test_link_flows_cover_used_links(self, solved):
        ext, solution = solved
        flows = solution.link_flows()
        used = {e for c in ext.stream_network.commodities for e in c.edges}
        assert set(flows) == used
        assert all(rate >= 0 for rate in flows.values())


class TestBuildSolution:
    def test_extras_populated(self):
        ext = build_extended_network(diamond_network())
        routing = uniform_routing(ext)
        solution = build_solution(ext, routing, CostModel(), method="test")
        for key in ("edge_usage", "node_usage", "traffic", "utility_loss", "penalty"):
            assert key in solution.extras
        assert solution.extras["traffic"].shape == (
            ext.num_commodities,
            ext.num_nodes,
        )

    def test_extra_overrides_merge(self):
        ext = build_extended_network(diamond_network())
        solution = build_solution(
            ext,
            initial_routing(ext),
            CostModel(),
            method="test",
            extras={"custom": 42},
        )
        assert solution.extras["custom"] == 42

    def test_shed_everything_solution(self):
        ext = build_extended_network(diamond_network())
        solution = build_solution(
            ext, initial_routing(ext), CostModel(), method="idle"
        )
        assert solution.utility == pytest.approx(0.0)
        np.testing.assert_allclose(solution.admitted, 0.0, atol=1e-12)
        view = ext.commodities[0]
        assert solution.shed_by_name[view.name] == pytest.approx(view.max_rate)

    def test_iterations_carried(self):
        ext = build_extended_network(diamond_network())
        solution = build_solution(
            ext, initial_routing(ext), CostModel(), method="x", iterations=7
        )
        assert solution.iterations == 7
        assert "7 iterations" in solution.summary()
