"""Tests for the joint placement loop and the connectivity-aware seed."""

from __future__ import annotations

import pytest

from repro.core.gradient import GradientConfig
from repro.core.network import PhysicalNetwork
from repro.core.commodity import Task
from repro.exceptions import ModelError
from repro.placement import JointPlacementLoop, JointPlacementReport
from repro.placement.greedy import feasible_hosts, greedy_seed
from repro.scenarios import FatTreeSpec, IspSpec, fat_tree_requests, isp_requests

FAST = GradientConfig(eta=0.04, max_iterations=800, tolerance=1e-7, patience=10)


def fork_physical() -> PhysicalNetwork:
    """src -> {a, b} -> {c, d} -> sink, with a->d and b->c only.

    ``a`` (high capacity) is the greedy layer-1 pick; ``c`` has the most
    layer-2 capacity but is only reachable from ``b``, so a capacity-only
    greedy strands the single-replica chain on a disconnected pair.
    """
    net = PhysicalNetwork()
    net.add_server("src", 50.0)
    net.add_server("a", 40.0)
    net.add_server("b", 30.0)
    net.add_server("c", 50.0)
    net.add_server("d", 10.0)
    net.add_sink("sink")
    for tail, head in (
        ("src", "a"),
        ("src", "b"),
        ("a", "d"),
        ("b", "c"),
        ("c", "sink"),
        ("d", "sink"),
    ):
        net.add_link(tail, head, 20.0)
    return net


class TestGreedySeed:
    def test_prefers_connected_hosts(self):
        net = fork_physical()
        tasks = [Task(f"t{i}", cost=1.0, gain=1.0) for i in range(3)]
        layers = feasible_hosts(net, 3, "src", "sink")
        assert layers[1] == {"a", "b"} and layers[2] == {"c", "d"}
        placement = greedy_seed(net, tasks, layers, max_replicas=1)
        # after `a` wins layer 1 on capacity, only `d` is connected from
        # it -- the seed must prefer it over the higher-capacity `c`
        assert placement["t1"] == ["a"]
        assert placement["t2"] == ["d"]

    def test_never_reuses_a_server(self):
        physical, requests, __ = fat_tree_requests(
            FatTreeSpec(k=4, num_streams=1), seed=0
        )
        request = requests[0]
        layers = feasible_hosts(
            physical, len(request.tasks), request.source, request.sink
        )
        placement = greedy_seed(physical, list(request.tasks), layers, 2)
        chosen = [h for hosts in placement.values() for h in hosts]
        assert len(chosen) == len(set(chosen))


def small_fat_tree():
    return fat_tree_requests(
        FatTreeSpec(k=4, num_streams=4, switch_capacity_range=(5.0, 12.0)),
        seed=0,
    )


class TestJointPlacementLoop:
    def test_joint_lp_never_below_routing_only(self):
        physical, requests, __ = small_fat_tree()
        report = JointPlacementLoop(
            physical, requests, config=FAST, rounds=1, max_moves=2, max_replicas=1
        ).run()
        assert isinstance(report, JointPlacementReport)
        assert report.joint_lp >= report.routing_only_lp - 1e-9
        assert report.lp_ratio >= 1.0 - 1e-12
        assert report.rounds_run >= 1
        assert set(report.placements) == {r.name for r in requests}

    def test_deterministic(self):
        physical, requests, __ = small_fat_tree()
        loop = lambda: JointPlacementLoop(  # noqa: E731
            physical, requests, config=FAST, rounds=1, max_moves=2, max_replicas=1
        ).run()
        a, b = loop(), loop()
        assert a.to_dict() == b.to_dict()
        assert [m.stream for m in a.moves] == [m.stream for m in b.moves]

    def test_isp_improves_under_contention(self):
        # calibrated regime (tight router capacity, single replica): the
        # joint loop must find at least one improving move at this seed
        physical, requests, __ = isp_requests(
            IspSpec(num_routers=32, capacity_range=(6.0, 18.0)), seed=1
        )
        report = JointPlacementLoop(
            physical, requests, config=FAST, rounds=2, max_moves=6, max_replicas=1
        ).run()
        assert report.moves
        assert report.joint_lp > report.routing_only_lp + 1e-6

    def test_report_dict_shape(self):
        physical, requests, __ = small_fat_tree()
        doc = JointPlacementLoop(
            physical, requests, config=FAST, rounds=1, max_moves=0
        ).run().to_dict()
        assert set(doc) == {
            "routing_only_lp",
            "routing_only_utility",
            "joint_lp",
            "joint_utility",
            "lp_ratio",
            "achieved_ratio",
            "moves",
            "rounds_run",
        }

    def test_rejects_empty_requests(self):
        physical, __, __ = small_fat_tree()
        with pytest.raises(ModelError):
            JointPlacementLoop(physical, [])


class TestFromScenario:
    def test_knobs_come_from_spec_with_overrides(self):
        loop = JointPlacementLoop.from_scenario(
            "fat-tree-16", config=FAST, rounds=1, max_moves=1
        )
        assert loop.rounds == 1
        assert loop.max_moves == 1
        assert loop.max_replicas == 1  # from the catalog entry
        assert len(loop.requests) == 8

    def test_isp_entry(self):
        loop = JointPlacementLoop.from_scenario("isp-32", config=FAST)
        assert loop.max_replicas == 1
        assert len(loop.requests) == 4

    def test_rejects_non_request_topology(self):
        with pytest.raises(ModelError):
            JointPlacementLoop.from_scenario("diamond")

    def test_placement_table_renders(self):
        from repro.analysis import placement_table

        physical, requests, __ = small_fat_tree()
        report = JointPlacementLoop(
            physical, requests, config=FAST, rounds=1, max_moves=0
        ).run()
        text = placement_table(report)
        assert "TAB-PLACEMENT" in text
        assert "routing-only" in text
        assert "joint placement" in text
