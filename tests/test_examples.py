"""Smoke tests: the runnable examples must actually run.

Only the fast examples execute here (the full Figure-4 reproduction and the
incident-timeline example take minutes and run as benchmarks/examples
instead); each is checked for a zero exit code and its headline output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "TOTAL UTILITY",
    "distributed_protocol.py": "sequential rounds",
    "capacity_planning.py": "marginal value",
    "financial_pipeline.py": "expands",
}


@pytest.mark.parametrize("script,needle", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5
    for script in scripts:
        text = (EXAMPLES_DIR / script).read_text()
        assert text.startswith("#!/usr/bin/env python3"), script
        assert '"""' in text, f"{script} lacks a docstring"
        assert "def main()" in text, f"{script} lacks a main()"
