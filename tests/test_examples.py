"""Smoke tests: the runnable examples must actually run.

Every script in ``examples/`` executes here (the registry below is pinned to
the directory glob, so adding an example without registering its headline
output fails the suite); each is checked for a zero exit code and a needle
from its expected output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# script -> a distinctive fragment of its headline output
EXAMPLES = {
    "quickstart.py": "TOTAL UTILITY",
    "distributed_protocol.py": "sequential rounds",
    "capacity_planning.py": "marginal value",
    "financial_pipeline.py": "expands",
    "sensor_fusion.py": "Admitted rates",
    "failure_recovery.py": "final utility",
    "figure4_reproduction.py": "optimal total throughput",
    "serve_demo.py": "Admission decision audit trail",
    "scenario_tour.py": "joint vs routing-only",
}


@pytest.mark.parametrize("script,needle", sorted(EXAMPLES.items()))
def test_example_runs(script, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout


def test_registry_matches_examples_directory():
    """A new example can't silently go un-smoked: the registry must list
    exactly the scripts in examples/ (CI's examples-smoke job runs the same
    glob)."""
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == sorted(EXAMPLES), (
        "examples/ and tests/test_examples.py:EXAMPLES disagree -- register "
        "the new script (with an output needle) or delete the stale entry"
    )


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5
    for script in scripts:
        text = (EXAMPLES_DIR / script).read_text()
        assert text.startswith("#!/usr/bin/env python3"), script
        assert '"""' in text, f"{script} lacks a docstring"
        assert "def main()" in text, f"{script} lacks a main()"
