"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import load_network, save_network
from repro.workloads import figure1_network


@pytest.fixture()
def model_path(tmp_path):
    path = tmp_path / "model.json"
    save_network(figure1_network(), path)
    return path


class TestGenerate:
    def test_generates_valid_model(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        code = main(
            [
                "generate",
                "--nodes",
                "16",
                "--commodities",
                "2",
                "--seed",
                "5",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        network = load_network(out)
        assert network.physical.num_nodes == 16
        assert network.num_commodities == 2
        assert "wrote" in capsys.readouterr().out


class TestInfo:
    def test_prints_summary(self, model_path, capsys):
        assert main(["info", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "StreamNetwork" in out
        assert "S1" in out and "S2" in out


class TestSolve:
    def test_gradient_solve_writes_solution(self, model_path, tmp_path, capsys):
        out = tmp_path / "sol.json"
        code = main(
            [
                "solve",
                str(model_path),
                "--method",
                "gradient",
                "--max-iterations",
                "800",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["method"] == "gradient"
        assert data["utility"] > 0
        assert "total utility" in capsys.readouterr().out

    def test_optimal_solve(self, model_path, capsys):
        assert main(["solve", str(model_path), "--method", "optimal"]) == 0
        assert "lp" in capsys.readouterr().out

    def test_backpressure_solve(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--method",
                "backpressure",
                "--max-iterations",
                "3000",
            ]
        )
        assert code == 0
        assert "backpressure" in capsys.readouterr().out

    def test_adaptive_flag(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--adaptive",
                "--max-iterations",
                "500",
            ]
        )
        assert code == 0

    def test_unknown_method_rejected(self, model_path):
        with pytest.raises(SystemExit):
            main(["solve", str(model_path), "--method", "magic"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
