"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import load_network, save_network
from repro.scenarios import figure1_network


@pytest.fixture()
def model_path(tmp_path):
    path = tmp_path / "model.json"
    save_network(figure1_network(), path)
    return path


class TestGenerate:
    def test_generates_valid_model(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        code = main(
            [
                "generate",
                "--nodes",
                "16",
                "--commodities",
                "2",
                "--seed",
                "5",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        network = load_network(out)
        assert network.physical.num_nodes == 16
        assert network.num_commodities == 2
        assert "wrote" in capsys.readouterr().out


class TestInfo:
    def test_prints_summary(self, model_path, capsys):
        assert main(["info", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "StreamNetwork" in out
        assert "S1" in out and "S2" in out

    def test_json_output(self, model_path, capsys):
        assert main(["info", str(model_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.info/1"
        assert doc["nodes"] > 0 and doc["links"] > 0
        assert all("utility" in c for c in doc["commodities"])
        assert doc["extended"]["edges"] > doc["links"]


class TestSolve:
    def test_gradient_solve_writes_solution(self, model_path, tmp_path, capsys):
        out = tmp_path / "sol.json"
        code = main(
            [
                "solve",
                str(model_path),
                "--method",
                "gradient",
                "--max-iterations",
                "800",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["method"] == "gradient"
        assert data["utility"] > 0
        assert "total utility" in capsys.readouterr().out

    def test_optimal_solve(self, model_path, capsys):
        assert main(["solve", str(model_path), "--method", "optimal"]) == 0
        assert "lp" in capsys.readouterr().out

    def test_backpressure_solve(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--method",
                "backpressure",
                "--max-iterations",
                "3000",
            ]
        )
        assert code == 0
        assert "backpressure" in capsys.readouterr().out

    def test_adaptive_flag(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--adaptive",
                "--max-iterations",
                "500",
            ]
        )
        assert code == 0

    def test_unknown_method_rejected(self, model_path):
        with pytest.raises(SystemExit):
            main(["solve", str(model_path), "--method", "magic"])

    def test_json_output_embeds_metrics(self, model_path, capsys):
        code = main(
            ["solve", str(model_path), "--max-iterations", "200", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.result/1"
        assert doc["solution"]["method"] == "gradient"
        assert len(doc["trajectory"]["iterations"]) >= 1
        assert doc["metrics"]["schema"] == "repro.metrics/1"
        assert doc["metrics"]["counters"]["flow_solves"] >= 1

    def test_metrics_and_trace_out(self, model_path, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        code = main(
            [
                "solve",
                str(model_path),
                "--max-iterations",
                "100",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        mdoc = json.loads(metrics.read_text())
        assert mdoc["schema"] == "repro.metrics/1"
        assert "phase.iteration.seconds" in mdoc["histograms"]
        assert mdoc["events"]  # full timeline in the file form
        tdoc = json.loads(trace.read_text())
        assert any(e.get("ph") == "X" for e in tdoc["traceEvents"])

    def test_distributed_method(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--method",
                "distributed",
                "--max-iterations",
                "10",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["average_messages_per_iteration"] > 0
        assert doc["metrics"]["counters"]["messages_total"] > 0

    def test_step_size_flag(self, model_path, capsys):
        code = main(
            [
                "solve",
                str(model_path),
                "--step-size",
                "0.05",
                "--max-iterations",
                "50",
            ]
        )
        assert code == 0

    def test_workers_flag_matches_serial(self, model_path, capsys):
        """--workers shards the iteration across processes; the solution must
        be bit-identical to the serial run (the backend's core contract)."""
        assert (
            main(["solve", str(model_path), "--max-iterations", "60", "--json"])
            == 0
        )
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "solve",
                    str(model_path),
                    "--max-iterations",
                    "60",
                    "--workers",
                    "2",
                    "--json",
                ]
            )
            == 0
        )
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["final_utility"] == serial["final_utility"]
        assert parallel["solution"]["admitted"] == serial["solution"]["admitted"]
        assert parallel["trajectory"] == serial["trajectory"]

    def test_workers_rejected_for_optimal(self, model_path):
        with pytest.raises(TypeError, match="workers"):
            main(
                ["solve", str(model_path), "--method", "optimal", "--workers", "2"]
            )

    def test_eta_alias_warns(self, model_path, capsys):
        with pytest.warns(DeprecationWarning, match="--step-size"):
            code = main(
                [
                    "solve",
                    str(model_path),
                    "--eta",
                    "0.05",
                    "--max-iterations",
                    "50",
                ]
            )
        assert code == 0


class TestProfile:
    def test_prints_phase_timings(self, model_path, capsys):
        code = main(["profile", str(model_path), "--max-iterations", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase timings" in out
        assert "flow_solve" in out and "gamma" in out
        assert "flow_solves" in out  # counters section
        assert "final utility" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenario:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "churn-120" in out and "fat-tree-16" in out

    def test_list_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.scenarios/1"
        names = {row["name"] for row in doc["scenarios"]}
        assert {"churn-120", "serve-mix-120", "fat-tree-16", "isp-32"} <= names

    def test_run_online_json(self, capsys):
        code = main(
            ["scenario", "run", "churn-smoke-20", "--json", "--iterations", "150"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.scenario.run/1"
        assert doc["mode"] == "online"
        assert doc["events"] == 12
        assert doc["final_utility"] > 0

    def test_run_unknown_name(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            main(["scenario", "run", "no-such-scenario"])

    def test_solve_with_scenario_flag(self, capsys):
        code = main(
            ["solve", "--scenario", "figure1", "--max-iterations", "200", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["context"]["model"] == "scenario:figure1"

    def test_solve_rejects_model_plus_scenario(self, model_path):
        with pytest.raises(SystemExit):
            main(["solve", str(model_path), "--scenario", "figure1"])

    def test_solve_requires_some_input(self):
        with pytest.raises(SystemExit):
            main(["solve"])
