"""Tests for the declarative scenario layer (``repro.scenarios``)."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.exceptions import ModelError
from repro.online import OnlineOrchestrator
from repro.scenarios import (
    ChurnSpec,
    DemandSpec,
    FailureSpec,
    FatTreeSpec,
    IspSpec,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
    churn_network,
    churn_trace,
    fat_tree_network,
    fat_tree_requests,
    isp_network,
    isp_requests,
    register_scenario,
    scenario,
    scenario_names,
    scenario_summaries,
)


def combo_spec() -> ScenarioSpec:
    """A spec exercising every component slot at small size."""
    return ScenarioSpec(
        name="combo",
        topology=TopologySpec("fat-tree", {"k": 4, "num_streams": 2}),
        demand=DemandSpec("diurnal", {"num_samples": 4, "iteration_gap": 8}),
        failures=FailureSpec("correlated", {"num_bursts": 1, "cluster_size": 2}),
        placement=PlacementSpec("joint", {"rounds": 1}),
        seed=3,
    )


class TestSpecRoundTrip:
    def test_json_round_trip_exact(self):
        spec = combo_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip_and_hash(self):
        spec = combo_spec()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert json.dumps(spec.to_dict()) == json.dumps(clone.to_dict())

    def test_param_order_is_canonical(self):
        a = TopologySpec("fat-tree", {"k": 4, "num_streams": 2})
        b = TopologySpec("fat-tree", {"num_streams": 2, "k": 4})
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            TopologySpec("mesh")
        with pytest.raises(ModelError):
            DemandSpec("sawtooth")
        with pytest.raises(ModelError):
            FailureSpec("meteor")
        with pytest.raises(ModelError):
            PlacementSpec("oracle")

    def test_unknown_field_rejected(self):
        doc = combo_spec().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ModelError):
            ScenarioSpec.from_dict(doc)

    def test_with_seed(self):
        spec = combo_spec()
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.topology == spec.topology
        assert spec.seed == 3  # frozen: original untouched


class TestCompileDeterminism:
    def test_timeline_byte_identical(self):
        spec = ScenarioSpec(
            name="det",
            topology=TopologySpec(
                "churn-random", {"num_nodes": 20, "num_commodities": 4}
            ),
            demand=DemandSpec("churn", {"num_events": 12}),
            seed=17,
        )
        a = spec.compile()
        b = spec.compile()
        assert repr(a.events) == repr(b.events)
        assert len(a.network.physical.links) == len(b.network.physical.links)

    def test_seed_changes_timeline(self):
        spec = ScenarioSpec(
            name="det",
            topology=TopologySpec(
                "churn-random", {"num_nodes": 20, "num_commodities": 4}
            ),
            demand=DemandSpec("churn", {"num_events": 12}),
            seed=17,
        )
        assert repr(spec.compile().events) != repr(
            spec.with_seed(18).compile().events
        )

    def test_churn_parity_with_legacy_generators(self):
        # the spec path must reproduce the legacy two-step generation
        # bit-for-bit (network at seed, trace at seed + 1) -- the committed
        # benchmark baselines depend on it
        spec = ScenarioSpec(
            name="parity",
            topology=TopologySpec(
                "churn-random", {"num_nodes": 20, "num_commodities": 4}
            ),
            demand=DemandSpec("churn", {"num_events": 12}),
            seed=17,
        )
        compiled = spec.compile()
        network = churn_network(num_nodes=20, num_commodities=4, seed=17)
        events = churn_trace(network, ChurnSpec(num_events=12), seed=18)
        assert repr(compiled.events) == repr(events)

    def test_compiled_horizon_clears_last_event(self):
        compiled = scenario("churn-smoke-20").compile()
        assert compiled.events
        assert compiled.horizon() > max(e.at_iteration for e in compiled.events)


class TestFatTreeInvariants:
    def test_strata_counts(self):
        physical, requests, placements = fat_tree_requests(
            FatTreeSpec(k=4, num_streams=2), seed=0
        )
        names = set(physical.nodes)
        hosts = {n for n in names if n.startswith("h")}
        edges = {n for n in names if n.startswith("e")}
        aggs = {n for n in names if n.startswith("a")}
        cores = {n for n in names if n.startswith("c")}
        sinks = {n for n in names if n.startswith("sink")}
        assert len(hosts) == 16  # k^3/4
        assert len(edges) == len(aggs) == 8  # k * k/2
        assert len(cores) == 4  # (k/2)^2
        assert len(sinks) == 2
        assert names == hosts | edges | aggs | cores | sinks

    def test_degrees(self):
        physical, __, __ = fat_tree_requests(FatTreeSpec(k=4, num_streams=1), seed=0)
        # every host uplinks to exactly one edge switch
        for name in physical.nodes:
            if name.startswith("h"):
                up = [
                    link.head
                    for link in physical.out_links(name)
                    if link.head.startswith("e")
                ]
                assert len(up) == 1
            if name.startswith("c"):
                # each core reaches one aggregation switch per pod
                down = {
                    link.head
                    for link in physical.out_links(name)
                    if link.head.startswith("a")
                }
                assert len(down) == 4

    def test_cross_pod_distance_is_six_hops(self):
        physical, __, __ = fat_tree_requests(FatTreeSpec(k=4, num_streams=1), seed=0)
        dist = {"h0_0": 0}
        frontier = ["h0_0"]
        while frontier:
            nxt = []
            for u in frontier:
                for link in physical.out_links(u):
                    if link.head not in dist:
                        dist[link.head] = dist[u] + 1
                        nxt.append(link.head)
            frontier = nxt
        assert dist["h1_0"] == 6  # up edge/agg/core, down agg/edge/host

    def test_network_materializes_and_validates(self):
        network = fat_tree_network(FatTreeSpec(k=4, num_streams=2), seed=1)
        assert len(network.commodities) == 2
        for commodity in network.commodities:
            # 7 chain stages then the sink: the longest source->sink path
            # in the commodity DAG has exactly 8 nodes
            order = commodity.topological_order()
            assert order[0] == commodity.source
            longest = {node: 1 for node in commodity.nodes}
            for tail, head in sorted(
                commodity.edges, key=lambda e: order.index(e[0])
            ):
                longest[head] = max(longest[head], longest[tail] + 1)
            assert max(longest.values()) == 8


class TestIspInvariants:
    def test_router_count_and_edge_budget(self):
        spec = IspSpec(num_routers=16, attachment=2, num_streams=2)
        physical, requests, __ = isp_requests(spec, seed=0)
        routers = [n for n in physical.nodes if n.startswith("r")]
        assert len(routers) == 16
        router_links = [
            (t, h)
            for t, h in physical.links
            if t.startswith("r") and h.startswith("r")
        ]
        # BA(n, m) has m*(n-m) undirected edges; both directions are added
        assert len(router_links) == 2 * 2 * (16 - 2)

    def test_connected(self):
        physical, __, __ = isp_requests(IspSpec(num_routers=16), seed=0)
        routers = {n for n in physical.nodes if n.startswith("r")}
        seen = {"r0"}
        frontier = ["r0"]
        while frontier:
            nxt = []
            for u in frontier:
                for link in physical.out_links(u):
                    if link.head in routers and link.head not in seen:
                        seen.add(link.head)
                        nxt.append(link.head)
            frontier = nxt
        assert seen == routers

    def test_exact_hop_strata(self):
        spec = IspSpec(num_routers=16, num_streams=2)
        physical, requests, placements = isp_requests(spec, seed=0)
        adj = {n: [] for n in physical.nodes if n.startswith("r")}
        for t, h in physical.links:
            if t.startswith("r") and h.startswith("r"):
                adj[t].append(h)

        def bfs(start):
            dist = {start: 0}
            frontier = [start]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in adj[u]:
                        if v not in dist:
                            dist[v] = dist[u] + 1
                            nxt.append(v)
                frontier = nxt
            return dist

        for request in requests:
            layers = placements[request.name]
            dist = bfs(request.source)
            for level, task in enumerate(request.tasks):
                for host in layers[task.name]:
                    assert dist[host] == level
        lo, hi = spec.chain_range
        for request in requests:
            assert lo + 1 <= len(request.tasks) <= hi + 1

    def test_network_materializes_and_validates(self):
        network = isp_network(IspSpec(num_routers=16, num_streams=2), seed=3)
        assert len(network.commodities) == 2


class TestTimelineReplay:
    """Compiled timelines must replay through the orchestrator unchanged."""

    def _run(self, spec: ScenarioSpec):
        compiled = spec.compile()
        orchestrator = OnlineOrchestrator(compiled.network, compiled.events)
        result = orchestrator.run(compiled.horizon())
        assert len(result.recoveries) == len(compiled.events)
        return result

    def test_diurnal(self):
        self._run(
            ScenarioSpec(
                name="d",
                topology=TopologySpec(
                    "churn-random", {"num_nodes": 20, "num_commodities": 4}
                ),
                demand=DemandSpec(
                    "diurnal", {"num_samples": 4, "iteration_gap": 8}
                ),
                seed=5,
            )
        )

    def test_flash_crowd(self):
        self._run(
            ScenarioSpec(
                name="f",
                topology=TopologySpec(
                    "churn-random", {"num_nodes": 20, "num_commodities": 4}
                ),
                demand=DemandSpec(
                    "flash-crowd",
                    {"num_samples": 5, "spike_sample": 1, "iteration_gap": 8},
                ),
                seed=5,
            )
        )

    def test_correlated_failures_merge_with_demand(self):
        result = self._run(
            ScenarioSpec(
                name="c",
                topology=TopologySpec(
                    "churn-random", {"num_nodes": 20, "num_commodities": 4}
                ),
                demand=DemandSpec(
                    "diurnal", {"num_samples": 3, "iteration_gap": 8}
                ),
                failures=FailureSpec(
                    "correlated",
                    {"num_bursts": 1, "cluster_size": 2, "start_iteration": 40},
                ),
                seed=5,
            )
        )
        assert result.final_utility > 0

    def test_orchestrator_from_scenario(self):
        orchestrator = OnlineOrchestrator.from_scenario("churn-smoke-20")
        compiled = scenario("churn-smoke-20").compile()
        result = orchestrator.run(compiled.horizon())
        assert len(result.recoveries) == len(compiled.events)

    def test_orchestrator_from_scenario_rejects_junk(self):
        with pytest.raises(ModelError):
            OnlineOrchestrator.from_scenario(42)


class TestRegistry:
    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ModelError, match="churn-120"):
            scenario("definitely-not-a-scenario")

    def test_seed_override(self):
        assert scenario("churn-120").seed == 17
        assert scenario("churn-120", seed=99).seed == 99

    def test_register_requires_overwrite(self):
        spec = combo_spec()
        name = "test-registry-entry"
        try:
            register_scenario(name, spec, "a test entry")
            assert name in scenario_names()
            with pytest.raises(ModelError):
                register_scenario(name, spec, "again")
            register_scenario(name, spec.with_seed(4), "again", overwrite=True)
            assert scenario(name).seed == 4
        finally:
            from repro.scenarios import registry

            registry._CATALOG.pop(name, None)
            registry._DESCRIPTIONS.pop(name, None)

    def test_summaries_shape(self):
        rows = scenario_summaries()
        assert len(rows) >= 20
        for row in rows:
            assert set(row) == {
                "name",
                "description",
                "topology",
                "demand",
                "failures",
                "placement",
                "seed",
            }

    def test_smoke_entries_compile(self):
        for name in ("churn-smoke-20", "serve-demo-24", "flash-crowd-30"):
            compiled = scenario(name).compile()
            assert compiled.events


class TestWorkloadShims:
    def setup_method(self):
        from repro.workloads import _shim

        _shim._reset_warned()

    def test_warns_once_per_name_with_replacement(self):
        import repro.workloads as workloads

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = workloads.churn_network
            again = workloads.churn_network
            other = workloads.ChurnSpec
        assert first is again
        messages = [str(w.message) for w in caught]
        assert len(messages) == 2  # one per distinct name, not per access
        assert any(
            "repro.scenarios.churn_network" in m and "deprecated" in m
            for m in messages
        )
        assert other is ChurnSpec

    def test_every_legacy_module_forwards(self):
        import repro.scenarios as scenarios
        import repro.workloads.churn
        import repro.workloads.layered
        import repro.workloads.random_network
        import repro.workloads.scenarios
        import repro.workloads.traces

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert (
                repro.workloads.random_network.random_stream_network
                is scenarios.random_stream_network
            )
            assert repro.workloads.layered.diamond_network is scenarios.diamond_network
            assert (
                repro.workloads.scenarios.figure1_network
                is scenarios.figure1_network
            )
            assert repro.workloads.churn.churn_trace is scenarios.churn_trace
            assert repro.workloads.traces.poisson_trace is scenarios.poisson_trace

    def test_unknown_name_still_raises_attribute_error(self):
        import repro.workloads as workloads

        with pytest.raises(AttributeError):
            workloads.not_a_generator


class TestHypothesisStrategy:
    def test_scenario_specs_strategy_round_trips(self):
        from hypothesis import given, settings
        from repro.validate.strategies import scenario_specs

        @given(scenario_specs())
        @settings(max_examples=10, deadline=None)
        def check(spec):
            assert ScenarioSpec.from_json(spec.to_json()) == spec

        check()
