"""Tests for the extended-graph transformation (Figures 2 and 3)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import build_extended_network
from repro.core.transform import ExtEdgeKind, ExtNodeKind
from repro.exceptions import TransformError
from repro.scenarios import diamond_network, figure1_network


class TestBookkeeping:
    """Paper, Section 3: N + M + J nodes and 2M + 2J edges."""

    @pytest.mark.parametrize("factory", [diamond_network, figure1_network])
    def test_counts(self, factory):
        net = factory()
        used = {e for c in net.commodities for e in c.edges}
        ext = build_extended_network(net)
        n, m, j = net.physical.num_nodes, len(used), net.num_commodities
        assert ext.num_nodes == n + m + j
        assert ext.num_edges == 2 * m + 2 * j

    def test_unused_physical_links_get_no_bandwidth_node(self):
        net = diamond_network()
        net.physical.add_server("spare", 5.0)
        net.physical.add_link("spare", "sink", 5.0)
        net.physical.add_link("src", "spare", 5.0)
        ext = build_extended_network(net)
        names = {node.name for node in ext.nodes}
        assert "bw:spare->sink" not in names


class TestStructure:
    def test_bandwidth_node_capacity_is_link_bandwidth(self, diamond_ext):
        for node in diamond_ext.nodes:
            if node.kind is ExtNodeKind.BANDWIDTH:
                link = diamond_ext.stream_network.physical.link(*node.physical_link)
                assert node.capacity == pytest.approx(link.bandwidth)

    def test_dummy_nodes_are_unconstrained(self, diamond_ext):
        for node in diamond_ext.nodes:
            if node.kind is ExtNodeKind.DUMMY_SOURCE:
                assert node.capacity == float("inf")

    def test_sinks_are_unconstrained(self, diamond_ext):
        for node in diamond_ext.nodes:
            if node.kind is ExtNodeKind.SINK:
                assert node.capacity == float("inf")

    def test_every_used_link_becomes_two_edges(self, figure1_ext):
        processing = [
            e for e in figure1_ext.edges if e.kind is ExtEdgeKind.PROCESSING
        ]
        transfer = [e for e in figure1_ext.edges if e.kind is ExtEdgeKind.TRANSFER]
        assert len(processing) == len(transfer)
        for edge in processing:
            bw_node = figure1_ext.nodes[edge.head]
            assert bw_node.kind is ExtNodeKind.BANDWIDTH
            assert bw_node.physical_link == edge.physical_link

    def test_each_commodity_has_both_dummy_links(self, figure1_ext):
        for view in figure1_ext.commodities:
            input_edge = figure1_ext.edges[view.input_edge]
            diff_edge = figure1_ext.edges[view.difference_edge]
            assert input_edge.kind is ExtEdgeKind.DUMMY_INPUT
            assert diff_edge.kind is ExtEdgeKind.DUMMY_DIFFERENCE
            assert input_edge.tail == view.dummy
            assert input_edge.head == view.source
            assert diff_edge.tail == view.dummy
            assert diff_edge.head == view.sink


class TestParameters:
    def test_processing_edge_inherits_cost_and_gain(self, figure1_ext):
        net = figure1_ext.stream_network
        for view in figure1_ext.commodities:
            commodity = net.commodity(view.name)
            for edge_idx in view.edge_indices:
                edge = figure1_ext.edges[edge_idx]
                j = view.index
                if edge.kind is ExtEdgeKind.PROCESSING:
                    tail, head = edge.physical_link
                    if (tail, head) in commodity.costs:
                        assert figure1_ext.cost[j, edge_idx] == pytest.approx(
                            commodity.cost(tail, head)
                        )
                        assert figure1_ext.gain[j, edge_idx] == pytest.approx(
                            commodity.gain(tail, head)
                        )

    def test_transfer_edges_are_unit_cost_unit_gain(self, figure1_ext):
        for view in figure1_ext.commodities:
            j = view.index
            for edge_idx in view.edge_indices:
                edge = figure1_ext.edges[edge_idx]
                if edge.kind in (ExtEdgeKind.TRANSFER, ExtEdgeKind.DUMMY_INPUT,
                                 ExtEdgeKind.DUMMY_DIFFERENCE):
                    assert figure1_ext.cost[j, edge_idx] == 1.0
                    assert figure1_ext.gain[j, edge_idx] == 1.0

    def test_disallowed_edges_masked(self, figure1_ext):
        for view in figure1_ext.commodities:
            j = view.index
            allowed = set(view.edge_indices)
            for e in range(figure1_ext.num_edges):
                assert figure1_ext.allowed[j, e] == (e in allowed)

    def test_lam_vector(self, figure1_ext):
        np.testing.assert_allclose(figure1_ext.lam, [15.0, 12.0])


class TestTopology:
    def test_commodity_subgraphs_are_dags_with_valid_topo_order(self, figure1_ext):
        for view in figure1_ext.commodities:
            graph = nx.DiGraph()
            for e in view.edge_indices:
                graph.add_edge(
                    figure1_ext.edge_tail[e], figure1_ext.edge_head[e]
                )
            assert nx.is_directed_acyclic_graph(graph)
            position = {n: i for i, n in enumerate(view.topo_order)}
            for e in view.edge_indices:
                assert (
                    position[figure1_ext.edge_tail[e]]
                    < position[figure1_ext.edge_head[e]]
                )

    def test_dummy_is_first_in_topo_order(self, figure1_ext):
        for view in figure1_ext.commodities:
            assert view.topo_order[0] == view.dummy

    def test_adjacency_lists_consistent(self, figure1_ext):
        for e, edge in enumerate(figure1_ext.edges):
            assert e in figure1_ext.out_edges[edge.tail]
            assert e in figure1_ext.in_edges[edge.head]


class TestHelpers:
    def test_node_index_roundtrip(self, diamond_ext):
        for node in diamond_ext.nodes:
            assert diamond_ext.node_index(node.name) == node.index

    def test_node_index_unknown(self, diamond_ext):
        with pytest.raises(TransformError):
            diamond_ext.node_index("nope")

    def test_commodity_view_lookup(self, diamond_ext):
        assert diamond_ext.commodity_view("diamond").name == "diamond"
        with pytest.raises(TransformError):
            diamond_ext.commodity_view("nope")

    def test_describe_mentions_counts(self, diamond_ext):
        text = diamond_ext.describe()
        assert str(diamond_ext.num_nodes) in text
        assert "bandwidth" in text

    def test_to_networkx(self, diamond_ext):
        graph = diamond_ext.to_networkx()
        assert graph.number_of_nodes() == diamond_ext.num_nodes
        assert graph.number_of_edges() == diamond_ext.num_edges
