"""Unit and property tests for commodities, task chains, and Property 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commodity import (
    Commodity,
    StreamNetwork,
    Task,
    potentials_from_gains,
    validate_property1,
)
from repro.core.network import PhysicalNetwork
from repro.core.utility import LinearUtility
from repro.exceptions import ModelError, ValidationError


def simple_physical():
    net = PhysicalNetwork()
    for name in ("s", "m1", "m2"):
        net.add_server(name, 10.0)
    net.add_sink("d")
    net.add_link("s", "m1", 5.0)
    net.add_link("s", "m2", 5.0)
    net.add_link("m1", "d", 5.0)
    net.add_link("m2", "d", 5.0)
    return net


def simple_commodity(**overrides):
    kwargs = dict(
        name="c",
        source="s",
        sink="d",
        max_rate=4.0,
        edges=[("s", "m1"), ("s", "m2"), ("m1", "d"), ("m2", "d")],
        potentials={"s": 1.0, "m1": 2.0, "m2": 0.5, "d": 1.0},
        costs={e: 1.0 for e in [("s", "m1"), ("s", "m2"), ("m1", "d"), ("m2", "d")]},
    )
    kwargs.update(overrides)
    return Commodity(**kwargs)


class TestTask:
    def test_valid(self):
        Task("f", cost=1.0, gain=0.5)

    @pytest.mark.parametrize("cost,gain", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_nonpositive_params(self, cost, gain):
        with pytest.raises(ValidationError):
            Task("f", cost=cost, gain=gain)


class TestCommodityConstruction:
    def test_gains_are_potential_ratios(self):
        c = simple_commodity()
        assert c.gain("s", "m1") == pytest.approx(2.0)
        assert c.gain("m1", "d") == pytest.approx(0.5)
        assert c.gain("s", "m2") == pytest.approx(0.5)
        assert c.gain("m2", "d") == pytest.approx(2.0)

    def test_path_products_agree(self):
        """Property 1: both s->d paths have the same gain product."""
        c = simple_commodity()
        top = c.gain("s", "m1") * c.gain("m1", "d")
        bottom = c.gain("s", "m2") * c.gain("m2", "d")
        assert top == pytest.approx(bottom)

    def test_potentials_normalised_to_source(self):
        c = simple_commodity(potentials={"s": 4.0, "m1": 8.0, "m2": 2.0, "d": 4.0})
        assert c.potentials["s"] == pytest.approx(1.0)
        assert c.gain("s", "m1") == pytest.approx(2.0)

    def test_rejects_cycle(self):
        edges = [("s", "m1"), ("m1", "m2"), ("m2", "m1"), ("m1", "d")]
        with pytest.raises(ValidationError, match="DAG"):
            simple_commodity(edges=edges, costs={e: 1.0 for e in edges})

    def test_rejects_unreachable_sink(self):
        with pytest.raises(ValidationError):
            simple_commodity(edges=[("s", "m1"), ("m2", "d")])

    def test_rejects_dangling_edges(self):
        net = simple_physical()
        net.add_server("dead", 1.0)
        net.add_link("m1", "dead", 1.0)
        with pytest.raises(ValidationError, match="prune"):
            simple_commodity(
                edges=[
                    ("s", "m1"),
                    ("s", "m2"),
                    ("m1", "d"),
                    ("m2", "d"),
                    ("m1", "dead"),
                ],
                potentials={
                    "s": 1.0,
                    "m1": 2.0,
                    "m2": 0.5,
                    "d": 1.0,
                    "dead": 1.0,
                },
                costs={
                    e: 1.0
                    for e in [
                        ("s", "m1"),
                        ("s", "m2"),
                        ("m1", "d"),
                        ("m2", "d"),
                        ("m1", "dead"),
                    ]
                },
            )

    def test_prune_removes_dangling(self):
        c = Commodity.from_subgraph(
            name="c",
            source="s",
            sink="d",
            max_rate=1.0,
            edges=[("s", "m1"), ("m1", "d"), ("m1", "dead")],
            potentials={"s": 1.0, "m1": 2.0, "d": 1.0, "dead": 1.0},
            costs={("s", "m1"): 1.0, ("m1", "d"): 1.0, ("m1", "dead"): 1.0},
            prune=True,
        )
        assert ("m1", "dead") not in c.edges

    def test_rejects_missing_potential(self):
        with pytest.raises(ValidationError, match="potentials"):
            simple_commodity(potentials={"s": 1.0, "m1": 2.0, "d": 1.0})

    def test_rejects_missing_cost(self):
        with pytest.raises(ValidationError, match="costs"):
            simple_commodity(costs={("s", "m1"): 1.0})

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValidationError):
            simple_commodity(max_rate=0.0)

    def test_rejects_source_equals_sink(self):
        with pytest.raises(ValidationError):
            simple_commodity(source="d")

    def test_topological_order_starts_at_source(self):
        order = simple_commodity().topological_order()
        assert order[0] == "s"
        assert order[-1] == "d"

    def test_default_utility_is_linear(self):
        assert isinstance(simple_commodity().utility, LinearUtility)

    def test_unknown_edge_accessors(self):
        c = simple_commodity()
        with pytest.raises(ModelError):
            c.gain("m1", "m2")
        with pytest.raises(ModelError):
            c.cost("m1", "m2")


class TestValidateAgainst:
    def test_accepts_realisable(self):
        simple_commodity().validate_against(simple_physical())

    def test_rejects_missing_physical_link(self):
        net = PhysicalNetwork()
        for name in ("s", "m1", "m2"):
            net.add_server(name, 10.0)
        net.add_sink("d")
        net.add_link("s", "m1", 5.0)
        net.add_link("m1", "d", 5.0)
        with pytest.raises(ValidationError, match="absent"):
            simple_commodity().validate_against(net)

    def test_rejects_sink_as_source(self):
        net = simple_physical()
        commodity = Commodity(
            name="bad",
            source="m1",
            sink="d",
            max_rate=1.0,
            edges=[("m1", "d")],
            potentials={"m1": 1.0, "d": 1.0},
            costs={("m1", "d"): 1.0},
        )
        # rewire: claim sink 'd' is a source by building a commodity whose
        # declared sink is a processing node
        other = Commodity(
            name="bad2",
            source="s",
            sink="m1",
            max_rate=1.0,
            edges=[("s", "m1")],
            potentials={"s": 1.0, "m1": 1.0},
            costs={("s", "m1"): 1.0},
        )
        commodity.validate_against(net)  # fine: m1 is a processing source
        with pytest.raises(ValidationError, match="not a sink"):
            other.validate_against(net)


class TestStreamNetwork:
    def test_add_and_lookup(self):
        sn = StreamNetwork(physical=simple_physical())
        sn.add_commodity(simple_commodity())
        assert sn.commodity("c").name == "c"
        assert sn.num_commodities == 1

    def test_duplicate_commodity_rejected(self):
        sn = StreamNetwork(physical=simple_physical())
        sn.add_commodity(simple_commodity())
        with pytest.raises(ModelError):
            sn.add_commodity(simple_commodity())

    def test_unknown_commodity(self):
        sn = StreamNetwork(physical=simple_physical())
        with pytest.raises(ModelError):
            sn.commodity("nope")

    def test_validate_requires_commodities(self):
        sn = StreamNetwork(physical=simple_physical())
        with pytest.raises(ValidationError):
            sn.validate()

    def test_validate_rejects_shared_sink(self):
        net = simple_physical()
        sn = StreamNetwork(physical=net)
        sn.add_commodity(simple_commodity())
        second = Commodity(
            name="c2",
            source="m1",
            sink="d",
            max_rate=1.0,
            edges=[("m1", "d")],
            potentials={"m1": 1.0, "d": 3.0},
            costs={("m1", "d"): 1.0},
        )
        sn.add_commodity(second)
        with pytest.raises(ValidationError, match="unique sink"):
            sn.validate()


class TestFromTaskChain:
    def test_rejects_empty_chain(self):
        with pytest.raises(ValidationError):
            Commodity.from_task_chain(
                "c", simple_physical(), [], {}, "s", "d", 1.0
            )

    def test_rejects_unplaced_task(self):
        with pytest.raises(ValidationError, match="placement"):
            Commodity.from_task_chain(
                "c",
                simple_physical(),
                [Task("t1", 1.0, 1.0)],
                {},
                "s",
                "d",
                1.0,
            )

    def test_first_task_must_sit_on_source(self):
        with pytest.raises(ValidationError, match="source"):
            Commodity.from_task_chain(
                "c",
                simple_physical(),
                [Task("t1", 1.0, 1.0), Task("t2", 1.0, 1.0)],
                {"t1": ["m1"], "t2": ["m2"]},
                "s",
                "d",
                1.0,
            )

    def test_two_stage_chain(self):
        net = simple_physical()
        c = Commodity.from_task_chain(
            "c",
            net,
            [Task("t1", 1.5, 0.5), Task("t2", 2.0, 3.0)],
            {"t1": ["s"], "t2": ["m1", "m2"]},
            "s",
            "d",
            4.0,
        )
        assert set(c.edges) == {("s", "m1"), ("s", "m2"), ("m1", "d"), ("m2", "d")}
        assert c.gain("s", "m1") == pytest.approx(0.5)
        assert c.gain("m1", "d") == pytest.approx(3.0)
        assert c.cost("s", "m2") == pytest.approx(1.5)
        assert c.cost("m2", "d") == pytest.approx(2.0)

    def test_unreachable_host_pruned(self):
        net = PhysicalNetwork()
        for name in ("s", "m1", "m2"):
            net.add_server(name, 10.0)
        net.add_sink("d")
        net.add_link("s", "m1", 5.0)
        net.add_link("m1", "d", 5.0)
        net.add_link("m2", "d", 5.0)  # m2 hosts t2 but s cannot reach it
        c = Commodity.from_task_chain(
            "c",
            net,
            [Task("t1", 1.0, 1.0), Task("t2", 1.0, 1.0)],
            {"t1": ["s"], "t2": ["m1", "m2"]},
            "s",
            "d",
            1.0,
        )
        assert ("m2", "d") not in c.edges


class TestProperty1Validation:
    def test_consistent_gains_pass(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        gains = {
            ("a", "b"): 2.0,
            ("a", "c"): 4.0,
            ("b", "d"): 6.0,
            ("c", "d"): 3.0,
        }
        potentials = validate_property1(edges, gains)
        assert potentials["d"] / potentials["a"] == pytest.approx(12.0)

    def test_inconsistent_gains_fail(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        gains = {
            ("a", "b"): 2.0,
            ("a", "c"): 4.0,
            ("b", "d"): 6.0,
            ("c", "d"): 5.0,  # product mismatch: 12 vs 20
        }
        with pytest.raises(ValidationError, match="Property 1"):
            validate_property1(edges, gains)

    def test_missing_gain_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            validate_property1([("a", "b")], {})

    def test_nonpositive_gain_rejected(self):
        with pytest.raises(ValidationError):
            validate_property1([("a", "b")], {("a", "b"): 0.0})

    def test_alias(self):
        edges = [("a", "b")]
        gains = {("a", "b"): 2.0}
        assert potentials_from_gains(edges, gains) == validate_property1(edges, gains)

    @given(
        potentials=st.lists(st.floats(0.1, 10.0), min_size=4, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_gains_from_any_potentials_always_pass(self, potentials):
        """Gains derived from node potentials satisfy Property 1 by construction."""
        names = ["a", "b", "c", "d"]
        pot = dict(zip(names, potentials))
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        gains = {(t, h): pot[h] / pot[t] for (t, h) in edges}
        recovered = validate_property1(edges, gains)
        for (t, h) in edges:
            assert recovered[h] / recovered[t] == pytest.approx(gains[(t, h)])
