"""Tests for the barrier-free async engine and its chaos-test harness.

Layout mirrors the module: fault layer (FaultSpec / FaultyChannel), the
event engine, the agent's message handling, convergence against the
synchronous reference, the chaos soak (ISSUE 9's headline scenario), the
deadlock diagnosis, and the solve()/oracle/CLI integration surface.

The convergence configurations are calibrated, not arbitrary: with a
fixed step and the stiff safeguarded barrier, a *saturated* instance
limit-cycles under delayed feedback once utilization first grazes the
wall (see docs/async.md, "Stability under lag"), so the drift gates run
in the pre-saturation tracking regime where the paper's protocol is
well-posed under bounded staleness.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import GradientConfig
from repro.core.gradient import GradientAlgorithm
from repro.exceptions import ProtocolError, SimulationError, SolverError
from repro.cli import main
from repro.io import save_network
from repro.obs import Instrumentation
from repro.simulation import (
    ASYNC_STAMP_BYTES,
    AsyncEventEngine,
    AsyncGradientRun,
    AsyncRunResult,
    FaultSpec,
    FaultyChannel,
    MarginalCostMessage,
    TickMessage,
)
from repro.simulation.async_engine import PERFECT_LINK
from repro.validate import DifferentialOracle
from repro.validate.oracle import STALENESS_DRIFT_RTOL, AlgorithmSpec
from repro.validate.strategies import (
    delivery_schedules,
    named_extended_network,
    random_extended_network,
    random_routing,
)
from repro.scenarios import figure1_network

# the chaos trace of the soak: jittered delays, 5% loss, 5% duplication,
# occasional 10-tick delay spikes -- every fault class at once
CHAOS = FaultSpec(
    drop=0.05, duplicate=0.05, delay_min=1, delay_max=4,
    spike_prob=0.05, spike_delay=10,
)


def _config(epochs: int, eta: float = 0.04) -> GradientConfig:
    # fixed step, no tolerance stop: async agents cannot implement the
    # adaptive controller (it is global), so the reference must not either
    return GradientConfig(
        eta=eta, max_iterations=epochs, tolerance=0.0, adaptive_eta=False
    )


def _drift(result, reference) -> float:
    ref = reference.solution.utility
    return abs(result.solution.utility - ref) / max(abs(ref), 1e-12)


def _phi_digest(run: AsyncGradientRun) -> str:
    return hashlib.sha256(run.export_routing().phi.tobytes()).hexdigest()


# ------------------------------------------------------------------ fault layer


class TestFaultSpec:
    def test_defaults_are_the_perfect_link(self):
        assert FaultSpec() == PERFECT_LINK

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 1.0},  # certain loss breaks eventual delivery
            {"drop": -0.1},
            {"duplicate": 1.5},
            {"delay_min": 0},  # zero latency would beat the local clock
            {"delay_min": 3, "delay_max": 2},
            {"spike_prob": 2.0},
            {"spike_delay": -1},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(SimulationError):
            FaultSpec(**kwargs)


class TestFaultyChannel:
    def test_same_seed_replays_the_same_trace(self):
        spec = FaultSpec(drop=0.3, duplicate=0.3, delay_min=1, delay_max=6,
                         spike_prob=0.2, spike_delay=9)
        plans_a = [FaultyChannel(spec, seed=7).plan(0, 1, t) for t in range(200)]
        plans_b = [FaultyChannel(spec, seed=7).plan(0, 1, t) for t in range(200)]
        assert plans_a == plans_b

    def test_different_seeds_diverge(self):
        spec = FaultSpec(drop=0.5, delay_min=1, delay_max=8)
        a = FaultyChannel(spec, seed=1)
        b = FaultyChannel(spec, seed=2)
        assert [a.plan(0, 1, t) for t in range(100)] != [
            b.plan(0, 1, t) for t in range(100)
        ]

    def test_faults_actually_occur(self):
        spec = FaultSpec(drop=0.4, duplicate=0.4, delay_min=2, delay_max=5)
        channel = FaultyChannel(spec, seed=0)
        plans = [channel.plan(0, 1, t) for t in range(300)]
        assert any(p == [] for p in plans)  # drops
        assert any(len(p) == 2 for p in plans)  # duplicates
        m = channel.metrics
        assert m.attempts == 300
        assert m.dropped > 0 and m.duplicated > 0 and m.delayed > 0
        assert m.faults == m.dropped + m.duplicated + m.delayed
        assert m.delivered + m.dropped >= m.attempts

    def test_until_tick_turns_the_channel_perfect(self):
        channel = FaultyChannel(FaultSpec(drop=0.9, delay_min=4, delay_max=9),
                                seed=3, until_tick=50)
        assert all(
            channel.plan(0, 1, now) == [1] for now in range(50, 120)
        )

    def test_per_link_override(self):
        lossy = FaultSpec(drop=0.5)
        channel = FaultyChannel(links={(2, 3): lossy}, seed=0)
        assert channel.spec_for(2, 3) is lossy
        assert channel.spec_for(3, 2) is PERFECT_LINK
        # default-spec links take the perfect fast path: always one copy,
        # unit delay, nothing counted as a fault
        assert channel.plan(3, 2, 0) == [1]
        assert channel.metrics.faults == 0


# ------------------------------------------------------------------ event engine


class TestAsyncEventEngine:
    def test_send_to_unknown_target_raises(self):
        engine = AsyncEventEngine(channel=FaultyChannel(seed=0))
        with pytest.raises(SimulationError, match="no agent"):
            engine.send(99, TickMessage(sender=0, commodity=-1))

    def test_schedule_local_bypasses_channel_and_accounting(self):
        ext = named_extended_network("diamond")
        run = AsyncGradientRun(
            ext, _config(10), faults=FaultSpec(drop=0.99), seed=0
        )
        engine = run.engine
        before = engine.metrics.messages_total
        engine.schedule_local(0, TickMessage(sender=0, commodity=-1), 5)
        assert engine.metrics.messages_total == before  # not a protocol message
        assert engine.channel.metrics.attempts == 0  # never saw the channel

    def test_explicit_delay_bypasses_the_channel(self):
        ext = named_extended_network("diamond")
        run = AsyncGradientRun(
            ext, _config(10), faults=FaultSpec(drop=0.99), seed=0
        )
        run.engine.send(0, TickMessage(sender=0, commodity=-1), delay=3)
        assert run.engine.channel.metrics.attempts == 0


# ------------------------------------------------------------------ agent units


def _interior_agent(run: AsyncGradientRun):
    """An agent with both marginal and forecast inputs (multi-input, so a
    single crafted delivery cannot satisfy its freshness predicate)."""
    for agent in run.agents:
        ports = list(agent.ports.values())
        heads = sum(len(p.out_heads) for p in ports if not p.is_sink)
        tails = sum(len(p.in_tails) for p in ports)
        if heads >= 1 and tails >= 1 and heads + tails >= 3:
            return agent
    raise AssertionError("no interior agent in instance")


class TestAsyncAgent:
    def test_negative_staleness_rejected(self):
        ext = named_extended_network("diamond")
        with pytest.raises(SimulationError, match="staleness"):
            AsyncGradientRun(ext, _config(10), staleness=-1)

    def test_bad_epoch_targets_rejected(self):
        ext = named_extended_network("diamond")
        with pytest.raises(SimulationError, match="epochs"):
            AsyncGradientRun(ext, _config(10)).run(0)

    def test_unknown_commodity_raises_protocol_error(self):
        run = AsyncGradientRun(named_extended_network("diamond"), _config(10))
        agent = run.agents[0]
        msg = MarginalCostMessage(sender=1, commodity=999, seq=1, epoch=0,
                                  value=0.0, tagged=False)
        with pytest.raises(ProtocolError, match="does not carry"):
            agent.on_message(msg, run.engine)

    def test_marginal_from_non_neighbour_raises(self):
        run = AsyncGradientRun(named_extended_network("diamond"), _config(10))
        agent = _interior_agent(run)
        j, port = next(
            (j, p) for j, p in agent.ports.items() if not p.is_sink
        )
        stranger = max(port.out_heads) + 1000
        msg = MarginalCostMessage(sender=stranger, commodity=j, seq=1,
                                  epoch=0, value=0.0, tagged=False)
        with pytest.raises(ProtocolError, match="non-neighbour"):
            agent.on_message(msg, run.engine)

    def test_sequence_dedup_keeps_last_writer(self):
        run = AsyncGradientRun(named_extended_network("figure1"), _config(10))
        agent = _interior_agent(run)
        j, port = next(
            (j, p)
            for j, p in agent.ports.items()
            if not p.is_sink and p.out_heads
        )
        head = port.out_heads[0]

        def deliver(seq, value):
            agent.on_message(
                MarginalCostMessage(sender=head, commodity=j, seq=seq,
                                    epoch=0, value=value, tagged=False),
                run.engine,
            )

        deliver(5, 1.25)
        assert port.dadr_in[head] == 1.25
        deliver(3, 9.0)  # reordered straggler: ignored
        assert port.dadr_in[head] == 1.25
        assert port.dadr_seq[head] == 5
        deliver(6, 2.5)  # fresh: wins
        assert port.dadr_in[head] == 2.5


# ------------------------------------------------------------------ convergence


class TestConvergence:
    def test_perfect_channel_tracks_sync_reference(self):
        ext = random_extended_network(3)
        cfg = _config(60)
        ref = GradientAlgorithm(ext, cfg).run()
        run = AsyncGradientRun(ext, cfg, staleness=2)
        result = run.run(60, record_every=60)
        assert _drift(result, ref) <= STALENESS_DRIFT_RTOL
        assert result.solution.method == "gradient-async"
        # barrier-free evidence: some node ran >= 2 epochs ahead of the
        # slowest, which a phase barrier can never produce -- and the
        # freshness rule kept the skew within staleness + 1
        assert 2 <= result.metrics.max_skew <= run.staleness + 1
        assert result.metrics.messages > 0
        assert result.metrics.bytes > result.metrics.messages * ASYNC_STAMP_BYTES

    def test_chaos_channel_still_converges(self):
        ext = random_extended_network(3)
        cfg = _config(60)
        ref = GradientAlgorithm(ext, cfg).run()
        result = AsyncGradientRun(
            ext, cfg, staleness=2, faults=CHAOS, seed=42
        ).run(60, record_every=60)
        assert _drift(result, ref) <= STALENESS_DRIFT_RTOL
        assert result.metrics.channel.faults > 0

    def test_staleness_zero_runs_in_lockstep(self):
        ext = named_extended_network("figure1")
        result = AsyncGradientRun(ext, _config(30), staleness=0).run(
            30, record_every=30
        )
        assert result.metrics.max_skew <= 1

    def test_trajectory_checkpoints(self):
        ext = named_extended_network("figure1")
        result = AsyncGradientRun(ext, _config(20), staleness=2).run(
            20, record_every=6
        )
        assert [r.iteration for r in result.history] == [6, 12, 18, 20]
        assert all(np.isfinite(r.utility) for r in result.history)
        assert result.iterations == 20

    def test_warm_start_from_existing_routing(self):
        ext = named_extended_network("diamond")
        routing = random_routing(ext, seed=9)
        result = AsyncGradientRun(ext, _config(15), staleness=2).run(
            15, routing=routing
        )
        assert np.isfinite(result.solution.utility)

    def test_instrumentation_records_async_gauges(self):
        ext = named_extended_network("diamond")
        inst = Instrumentation()
        AsyncGradientRun(
            ext, _config(10), staleness=2, faults=CHAOS, seed=1,
            instrumentation=inst,
        ).run(10, record_every=10)
        doc = inst.metrics_document()
        text = json.dumps(doc)
        assert "async.max_skew" in text
        assert "async.channel.dropped" in text


class TestRetransmitRecovery:
    def test_heavy_loss_recovers_through_local_timers(self):
        ext = named_extended_network("diamond")
        result = AsyncGradientRun(
            ext, _config(30), staleness=1, tick_interval=2,
            faults=FaultSpec(drop=0.4), seed=5,
        ).run(30, record_every=30)
        m = result.metrics
        assert m.channel.dropped > 0  # the channel really lost traffic
        assert m.retransmits > 0  # and the timer path repaired it
        assert m.ticks > 0
        assert np.isfinite(result.solution.utility)


class TestDeadlockDiagnosis:
    def test_loss_without_timers_is_diagnosed_not_hung(self):
        ext = named_extended_network("diamond")
        with pytest.raises(SimulationError, match="async deadlock") as info:
            AsyncGradientRun(
                ext, _config(30), staleness=1, tick_interval=0,
                faults=FaultSpec(drop=0.5), seed=1,
            ).run(30, record_every=30)
        assert "waiting on" in str(info.value)  # per-node stall diagnosis


# ------------------------------------------------------------------ chaos soak


class TestChaosSoak:
    """ISSUE 9's headline scenario: a long seeded fault window (delay
    spikes, loss, duplication -- thousands of injected fault events),
    followed by quiescence; the run must neither deadlock nor diverge,
    utility must keep improving once the network heals, and the whole
    trace must replay bit-identically from its seed."""

    EPOCHS = 60
    QUIESCE_TICK = 60  # channel turns perfect here; run ends near tick ~90

    def _soak(self, seed=42):
        ext = random_extended_network(3)
        run = AsyncGradientRun(
            ext, _config(self.EPOCHS), staleness=2, faults=CHAOS,
            seed=seed, fault_until_tick=self.QUIESCE_TICK,
        )
        result = run.run(self.EPOCHS, record_every=5)
        return run, result

    def test_soak_converges_with_a_dense_fault_trace(self):
        run, result = self._soak()
        assert result.metrics.channel.faults >= 200  # a *dense* trace
        ref = GradientAlgorithm(run.ext, _config(self.EPOCHS)).run()
        assert _drift(result, ref) <= STALENESS_DRIFT_RTOL
        assert run.engine.pending == 0  # queue fully drained, no zombies

    def test_utility_monotone_after_quiescence(self):
        _, result = self._soak()
        tail = [r.utility for r in result.history[-4:]]
        assert all(b >= a - 1e-9 for a, b in zip(tail, tail[1:]))

    def test_replay_is_hash_identical(self):
        run_a, result_a = self._soak(seed=42)
        run_b, result_b = self._soak(seed=42)
        assert _phi_digest(run_a) == _phi_digest(run_b)
        assert result_a.metrics.as_dict() == result_b.metrics.as_dict()
        assert [r.utility for r in result_a.history] == [
            r.utility for r in result_b.history
        ]

    def test_different_seed_is_a_different_trace(self):
        run_a, _ = self._soak(seed=42)
        run_b, result_b = self._soak(seed=43)
        assert _phi_digest(run_a) != _phi_digest(run_b)
        # ... but still inside the drift bound: the protocol's outcome is
        # schedule-robust even though the trajectory is schedule-specific
        ref = GradientAlgorithm(run_b.ext, _config(self.EPOCHS)).run()
        assert _drift(result_b, ref) <= STALENESS_DRIFT_RTOL


# ------------------------------------------------------------------ property


class TestDeliverySchedules:
    @settings(deadline=None)
    @given(schedule=delivery_schedules())
    def test_any_eventually_delivering_schedule_converges(self, schedule):
        spec, seed, staleness = schedule
        ext = named_extended_network("figure1")
        cfg = _config(40)
        ref = GradientAlgorithm(ext, cfg).run()
        result = AsyncGradientRun(
            ext, cfg, staleness=staleness, faults=spec, seed=seed
        ).run(40, record_every=40)
        assert _drift(result, ref) <= STALENESS_DRIFT_RTOL


# ------------------------------------------------------------------ integration


class TestSolveIntegration:
    def test_solve_execution_async(self):
        from repro import solve

        solution = solve(
            figure1_network(),
            method="distributed",
            execution="async",
            config=_config(30),
        )
        assert solution.method == "gradient-async"
        assert solution.utility > 0

    def test_full_result_exposes_async_metrics(self):
        from repro import solve

        result = solve(
            figure1_network(),
            method="distributed",
            execution="async",
            staleness=1,
            config=_config(20),
            full_result=True,
        )
        assert isinstance(result, AsyncRunResult)
        assert result.metrics.messages > 0
        assert result.metrics.max_skew <= 2  # staleness 1 + 1

    def test_execution_requires_distributed_method(self):
        from repro import solve

        with pytest.raises(TypeError, match="execution"):
            solve(figure1_network(), method="gradient", execution="async")

    def test_unknown_execution_rejected(self):
        from repro import solve

        with pytest.raises((ValueError, SolverError), match="execution"):
            solve(figure1_network(), method="distributed", execution="bogus")


class TestOracleIntegration:
    def test_compare_async_perfect_channel(self):
        report = DifferentialOracle().compare_async(figure1_network(), epochs=40)
        assert report.passed
        assert report.utility_rtol == STALENESS_DRIFT_RTOL
        assert report.extras["async_metrics"]["messages"] > 0

    def test_compare_async_with_faults(self):
        report = DifferentialOracle().compare_async(
            figure1_network(), epochs=40, faults=CHAOS, seed=3,
        )
        assert report.passed
        assert "async" in report.label_b

    def test_algorithm_spec_carries_execution(self):
        spec = AlgorithmSpec(method="distributed", execution="async")
        assert "execution=async" in spec.name


class TestCLI:
    def test_solve_execution_async(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        save_network(figure1_network(), path)
        out = tmp_path / "sol.json"
        code = main(
            [
                "solve", str(path),
                "--method", "distributed",
                "--execution", "async",
                "--max-iterations", "30",
                "-o", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["method"] == "gradient-async"
        assert "total utility" in capsys.readouterr().out
