"""Unit tests for the physical-network model."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.network import Link, Node, NodeKind, PhysicalNetwork
from repro.exceptions import ModelError, ValidationError
from repro.scenarios import figure1_network


class TestNode:
    def test_processing_node_requires_positive_capacity(self):
        with pytest.raises(ValidationError):
            Node("a", NodeKind.PROCESSING, 0.0)

    def test_sink_capacity_must_be_infinite(self):
        with pytest.raises(ValidationError):
            Node("a", NodeKind.SINK, 5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Node("", NodeKind.PROCESSING, 1.0)

    def test_is_sink(self):
        assert Node("d", NodeKind.SINK, float("inf")).is_sink
        assert not Node("p", NodeKind.PROCESSING, 1.0).is_sink


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError):
            Link("a", "a", 1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValidationError):
            Link("a", "b", 0.0)

    def test_key(self):
        assert Link("a", "b", 1.0).key == ("a", "b")


class TestPhysicalNetwork:
    def make_small(self):
        net = PhysicalNetwork()
        net.add_server("a", 10.0)
        net.add_server("b", 20.0)
        net.add_sink("d")
        net.add_link("a", "b", 5.0)
        net.add_link("b", "d", 5.0)
        return net

    def test_counts(self):
        net = self.make_small()
        assert net.num_nodes == 3
        assert net.num_links == 2

    def test_duplicate_node_rejected(self):
        net = self.make_small()
        with pytest.raises(ModelError):
            net.add_server("a", 1.0)

    def test_duplicate_link_rejected(self):
        net = self.make_small()
        with pytest.raises(ModelError):
            net.add_link("a", "b", 1.0)

    def test_link_endpoints_must_exist(self):
        net = self.make_small()
        with pytest.raises(ModelError):
            net.add_link("a", "zzz", 1.0)

    def test_sink_cannot_originate_links(self):
        net = self.make_small()
        with pytest.raises(ModelError):
            net.add_link("d", "a", 1.0)

    def test_validate_accepts_connected(self):
        self.make_small().validate()

    def test_validate_rejects_disconnected(self):
        net = self.make_small()
        net.add_server("lonely", 1.0)
        with pytest.raises(ValidationError):
            net.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(ValidationError):
            PhysicalNetwork().validate()

    def test_accessors(self):
        net = self.make_small()
        assert net.node("a").capacity == 10.0
        assert net.link("a", "b").bandwidth == 5.0
        assert net.has_link("a", "b")
        assert not net.has_link("b", "a")
        with pytest.raises(ModelError):
            net.node("zzz")
        with pytest.raises(ModelError):
            net.link("b", "a")

    def test_in_out_links(self):
        net = self.make_small()
        assert [l.head for l in net.out_links("a")] == ["b"]
        assert [l.tail for l in net.in_links("d")] == ["b"]

    def test_processing_nodes_and_sinks(self):
        net = self.make_small()
        assert {n.name for n in net.processing_nodes()} == {"a", "b"}
        assert {n.name for n in net.sinks()} == {"d"}

    def test_to_networkx(self):
        graph = self.make_small().to_networkx()
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 3
        assert graph["a"]["b"]["bandwidth"] == 5.0
        assert graph.nodes["d"]["kind"] == "sink"

    def test_copy_is_independent(self):
        net = self.make_small()
        clone = net.copy()
        clone.add_server("extra", 1.0)
        assert "extra" not in net.nodes


class TestFigure1Example:
    """The paper's Figure-1 system: per-stream subgraphs must be DAGs with
    the placement-induced structure."""

    def test_shape(self):
        net = figure1_network()
        assert net.physical.num_nodes == 10  # 8 servers + 2 sinks
        assert net.num_commodities == 2

    def test_per_stream_subgraphs_are_dags(self):
        net = figure1_network()
        for commodity in net.commodities:
            graph = commodity.subgraph()
            assert nx.is_directed_acyclic_graph(graph)

    def test_stream1_uses_its_lattice(self):
        s1 = figure1_network().commodity("S1")
        assert ("server1", "server2") in s1.edges
        assert ("server3", "server5") in s1.edges
        assert ("server6", "sink1") in s1.edges
        # S2-only hops are not available to S1
        assert ("server7", "server3") not in s1.edges

    def test_stream2_chain(self):
        s2 = figure1_network().commodity("S2")
        assert s2.edges == [
            ("server7", "server3"),
            ("server3", "server5"),
            ("server5", "server8"),
            ("server8", "sink2"),
        ]

    def test_shared_servers(self):
        net = figure1_network()
        s1_nodes = set(net.commodity("S1").nodes)
        s2_nodes = set(net.commodity("S2").nodes)
        assert {"server3", "server5"} <= (s1_nodes & s2_nodes)

    def test_gains_follow_task_chain(self):
        s1 = figure1_network().commodity("S1")
        # server1 runs task A (gain 0.8) regardless of the downstream choice
        assert s1.gain("server1", "server2") == pytest.approx(0.8)
        assert s1.gain("server1", "server3") == pytest.approx(0.8)
        # layer B -> C edges carry task B's gain
        assert s1.gain("server2", "server4") == pytest.approx(0.6)

    def test_costs_follow_task_chain(self):
        s1 = figure1_network().commodity("S1")
        assert s1.cost("server1", "server2") == pytest.approx(1.0)
        assert s1.cost("server2", "server5") == pytest.approx(2.0)
