"""Unit and property tests for the penalty (barrier) library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.penalty import (
    InverseBarrier,
    LogBarrier,
    QuadraticOverload,
    check_convex_increasing,
)
from repro.exceptions import ValidationError

BARRIERS = [InverseBarrier(), LogBarrier()]
ALL_PENALTIES = BARRIERS + [QuadraticOverload()]


class TestInverseBarrier:
    """The paper's canonical ``D(z) = 1/(C - z)`` (shifted by -1/C)."""

    def test_value_matches_formula(self):
        barrier = InverseBarrier()
        capacity = 10.0
        z = 5.0
        assert barrier.value(z, capacity) == pytest.approx(1.0 / 5.0 - 1.0 / 10.0)

    def test_derivative_matches_formula(self):
        barrier = InverseBarrier()
        assert barrier.derivative(5.0, 10.0) == pytest.approx(1.0 / 25.0)

    def test_zero_at_idle(self):
        barrier = InverseBarrier()
        assert barrier.value(0.0, 10.0) == pytest.approx(0.0)

    def test_blows_up_near_capacity(self):
        barrier = InverseBarrier(switch_fraction=0.999)
        assert barrier.value(9.98, 10.0) > 10.0

    def test_infinite_capacity_gives_zero(self):
        barrier = InverseBarrier()
        assert barrier.value(1e9, np.inf) == 0.0
        assert barrier.derivative(1e9, np.inf) == 0.0

    def test_safeguarded_tail_is_finite_past_capacity(self):
        barrier = InverseBarrier()
        assert np.isfinite(barrier.value(15.0, 10.0))
        assert np.isfinite(barrier.derivative(15.0, 10.0))
        assert barrier.value(15.0, 10.0) > barrier.value(9.0, 10.0)

    def test_tail_is_c1_at_switch(self):
        barrier = InverseBarrier(switch_fraction=0.9)
        capacity = 10.0
        zs = 9.0
        eps = 1e-7
        v_below = barrier.value(zs - eps, capacity)
        v_above = barrier.value(zs + eps, capacity)
        assert v_above == pytest.approx(v_below, rel=1e-4)
        d_below = barrier.derivative(zs - eps, capacity)
        d_above = barrier.derivative(zs + eps, capacity)
        assert d_above == pytest.approx(d_below, rel=1e-4)

    def test_rejects_bad_switch_fraction(self):
        with pytest.raises(ValidationError):
            InverseBarrier(switch_fraction=1.5)


class TestLogBarrier:
    def test_value_matches_formula(self):
        barrier = LogBarrier()
        assert barrier.value(5.0, 10.0) == pytest.approx(-np.log(0.5))

    def test_derivative_matches_formula(self):
        barrier = LogBarrier()
        assert barrier.derivative(5.0, 10.0) == pytest.approx(0.2)


class TestQuadraticOverload:
    def test_zero_below_threshold(self):
        penalty = QuadraticOverload(threshold_fraction=0.9)
        assert penalty.value(8.0, 10.0) == 0.0
        assert penalty.derivative(8.0, 10.0) == 0.0

    def test_quadratic_above_threshold(self):
        penalty = QuadraticOverload(threshold_fraction=0.5)
        # over = 7 - 5 = 2; value = 4 / 10
        assert penalty.value(7.0, 10.0) == pytest.approx(0.4)
        assert penalty.derivative(7.0, 10.0) == pytest.approx(0.4)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValidationError):
            QuadraticOverload(threshold_fraction=0.0)


class TestVectorisation:
    @pytest.mark.parametrize("penalty", ALL_PENALTIES, ids=lambda p: repr(p))
    def test_broadcasts_usage_and_capacity(self, penalty):
        usage = np.array([0.0, 2.0, 5.0, 9.0])
        capacity = np.array([10.0, 10.0, np.inf, 10.0])
        values = penalty.value(usage, capacity)
        derivs = penalty.derivative(usage, capacity)
        assert values.shape == usage.shape
        assert derivs.shape == usage.shape
        assert values[2] == 0.0 and derivs[2] == 0.0

    @pytest.mark.parametrize("penalty", ALL_PENALTIES, ids=lambda p: repr(p))
    def test_scalar_in_scalar_out(self, penalty):
        assert isinstance(penalty.value(1.0, 10.0), float)
        assert isinstance(penalty.derivative(1.0, 10.0), float)

    @pytest.mark.parametrize("penalty", BARRIERS, ids=lambda p: repr(p))
    def test_drained_host_zero_capacity(self, penalty):
        """Regression: ``C = 0`` (a host drained after model build) made the
        barriers emit divide-by-zero warnings and return ``inf - inf = nan``,
        poisoning the whole cost.  Drained hosts now charge a steep *finite*
        linear penalty: zero at idle, a slope far above any real marginal
        cost otherwise, so downstream gradient arithmetic stays finite."""
        import warnings

        from repro.core.penalty import _DRAINED_SLOPE

        usage = np.array([0.0, 3.0, 1.0, 4.0])
        capacity = np.array([0.0, 0.0, 10.0, np.inf])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            values = penalty.value(usage, capacity)
            derivs = penalty.derivative(usage, capacity)
        assert values[0] == 0.0 and values[1] == 3.0 * _DRAINED_SLOPE
        assert derivs[0] == _DRAINED_SLOPE and derivs[1] == _DRAINED_SLOPE
        # positive-capacity entries are untouched by the drained handling
        assert np.isfinite(values[2]) and values[3] == 0.0


class TestConvexityChecker:
    @pytest.mark.parametrize("penalty", ALL_PENALTIES, ids=lambda p: repr(p))
    def test_accepts_library_penalties(self, penalty):
        check_convex_increasing(penalty, capacity=10.0)

    def test_rejects_concave(self):
        class Concave(QuadraticOverload):
            def value(self, usage, capacity):
                return np.sqrt(np.maximum(np.asarray(usage, dtype=float), 0.0))

            def derivative(self, usage, capacity):
                u = np.maximum(np.asarray(usage, dtype=float), 1e-9)
                return 0.5 / np.sqrt(u)

        with pytest.raises(ValidationError):
            check_convex_increasing(Concave())


class TestBarrierProperties:
    @given(
        capacity=st.floats(0.5, 1000.0),
        fractions=st.lists(st.floats(0.0, 1.5), min_size=2, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_inverse_barrier_monotone_in_usage(self, capacity, fractions):
        barrier = InverseBarrier()
        usages = np.sort(np.asarray(fractions)) * capacity
        values = barrier.value(usages, capacity)
        assert np.all(np.diff(np.atleast_1d(values)) >= -1e-10)

    @given(
        capacity=st.floats(0.5, 1000.0),
        fraction=st.floats(0.0, 1.4),
    )
    @settings(max_examples=150, deadline=None)
    def test_derivative_matches_finite_difference(self, capacity, fraction):
        barrier = InverseBarrier()
        z = fraction * capacity
        h = 1e-6 * max(capacity, 1.0)
        fd = (barrier.value(z + h, capacity) - barrier.value(z, capacity)) / h
        mid = barrier.derivative(z + h / 2, capacity)
        assert fd == pytest.approx(mid, rel=1e-3, abs=1e-9)
