"""Tests for routing state, flow balance with gains, and resource usage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_extended_network
from repro.core.routing import (
    RoutingState,
    admitted_rates,
    commodity_edge_flows,
    external_inputs,
    feasibility_report,
    initial_routing,
    physical_link_flows,
    require_feasible,
    resource_usage,
    solve_traffic,
    solve_traffic_linear,
    uniform_routing,
    validate_routing,
)
from repro.core.routing import solve_traffic_scalar, utilization_profile
from repro.exceptions import InfeasibleError, RoutingError
from repro.scenarios import diamond_network, random_stream_network
from repro.scenarios import RandomNetworkSpec


class TestInitialRouting:
    def test_valid_and_sheds_everything(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        validate_routing(diamond_ext, routing)
        for view in diamond_ext.commodities:
            assert routing.phi[view.index, view.difference_edge] == 1.0
            assert routing.phi[view.index, view.input_edge] == 0.0
            assert routing.admitted_fraction(diamond_ext, view.index) == 0.0

    def test_strictly_feasible(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        report = feasibility_report(diamond_ext, routing)
        assert report.feasible
        assert report.max_utilization == pytest.approx(0.0)

    def test_admitted_rates_zero(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        np.testing.assert_allclose(admitted_rates(diamond_ext, routing), 0.0)


class TestUniformRouting:
    def test_valid(self, figure1_ext):
        validate_routing(figure1_ext, uniform_routing(figure1_ext))

    def test_dummy_splits_between_input_and_difference(self, diamond_ext):
        routing = uniform_routing(diamond_ext)
        view = diamond_ext.commodities[0]
        assert routing.phi[0, view.input_edge] == pytest.approx(0.5)
        assert routing.phi[0, view.difference_edge] == pytest.approx(0.5)


class TestValidateRouting:
    def test_rejects_bad_shape(self, diamond_ext):
        with pytest.raises(RoutingError, match="shape"):
            validate_routing(diamond_ext, RoutingState(np.zeros((1, 3))))

    def test_rejects_negative(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        routing.phi[0, 0] = -0.1
        with pytest.raises(RoutingError, match="negative"):
            validate_routing(diamond_ext, routing)

    def test_rejects_off_graph(self, figure1_ext):
        routing = initial_routing(figure1_ext)
        forbidden = int(np.nonzero(~figure1_ext.allowed[0])[0][0])
        routing.phi[0, forbidden] = 0.5
        with pytest.raises(RoutingError):
            validate_routing(figure1_ext, routing)

    def test_rejects_non_stochastic(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        view = diamond_ext.commodities[0]
        routing.phi[0, view.difference_edge] = 0.7
        with pytest.raises(RoutingError, match="sum"):
            validate_routing(diamond_ext, routing)


class TestTrafficSolver:
    def test_external_inputs(self, diamond_ext):
        r = external_inputs(diamond_ext)
        view = diamond_ext.commodities[0]
        assert r[0, view.dummy] == pytest.approx(view.max_rate)
        assert r.sum() == pytest.approx(view.max_rate)

    def test_shed_everything_traffic(self, diamond_ext):
        routing = initial_routing(diamond_ext)
        t = solve_traffic(diamond_ext, routing)
        view = diamond_ext.commodities[0]
        assert t[0, view.dummy] == pytest.approx(view.max_rate)
        assert t[0, view.source] == pytest.approx(0.0)
        # everything arrives at the sink via the difference link
        assert t[0, view.sink] == pytest.approx(view.max_rate)

    def test_gain_scaling_along_chain(self):
        """One unit at the source becomes gain-product units downstream."""
        net = diamond_network(gain_top=2.0, gain_bottom=2.0, max_rate=8.0,
                              top_capacity=100.0, bottom_capacity=100.0)
        ext = build_extended_network(net)
        routing = uniform_routing(ext)
        view = ext.commodities[0]
        # force full admission, all through 'top'
        routing.phi[0, view.input_edge] = 1.0
        routing.phi[0, view.difference_edge] = 0.0
        src = view.source
        for e in ext.commodity_out_edges[0][src]:
            head_name = ext.nodes[ext.edge_head[e]].name
            routing.phi[0, e] = 1.0 if "top" in head_name else 0.0
        t = solve_traffic(ext, routing)
        top = ext.node_index("top")
        assert t[0, top] == pytest.approx(8.0 * 2.0)
        assert t[0, view.sink] == pytest.approx(16.0)  # top->sink gain 1

    def test_matches_linear_solver_on_fixtures(
        self, diamond_ext, figure1_ext, small_random_ext
    ):
        for ext in (diamond_ext, figure1_ext, small_random_ext):
            routing = uniform_routing(ext)
            np.testing.assert_allclose(
                solve_traffic(ext, routing),
                solve_traffic_linear(ext, routing),
                atol=1e-9,
            )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_linear_solver_on_random_phi(self, seed):
        # hypothesis cannot take fixtures; rebuild the small net each time
        ext = build_extended_network(diamond_network())
        rng = np.random.default_rng(seed)
        routing = uniform_routing(ext)
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = ext.commodity_out_edges[j][node]
                if not out:
                    continue
                weights = rng.random(len(out)) + 1e-9
                routing.phi[j, out] = weights / weights.sum()
        validate_routing(ext, routing)
        np.testing.assert_allclose(
            solve_traffic(ext, routing),
            solve_traffic_linear(ext, routing),
            atol=1e-9,
        )


def _randomize_phi(ext, rng):
    """A valid routing with random fractions on every decision node."""
    routing = uniform_routing(ext)
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            weights = rng.random(len(out)) + 1e-9
            routing.phi[j, out] = weights / weights.sum()
    validate_routing(ext, routing)
    return routing


class TestVectorizedTrafficSolver:
    """The per-level scatter solve must reproduce the scalar recursion
    bit-for-bit (the sync/distributed equivalence rests on this)."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_bitwise_matches_scalar_on_random_phi(self, seed):
        ext = build_extended_network(diamond_network())
        routing = _randomize_phi(ext, np.random.default_rng(seed))
        fast = solve_traffic(ext, routing)
        slow = solve_traffic_scalar(ext, routing)
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("net_seed", [1, 5, 9, 23])
    def test_bitwise_matches_scalar_on_random_dags(self, net_seed):
        spec = RandomNetworkSpec(
            num_nodes=18,
            num_commodities=2,
            depth_range=(3, 5),
            layer_width_range=(2, 4),
        )
        ext = build_extended_network(random_stream_network(spec, seed=net_seed))
        rng = np.random.default_rng(net_seed + 100)
        for _ in range(5):
            routing = _randomize_phi(ext, rng)
            fast = solve_traffic(ext, routing)
            assert np.array_equal(fast, solve_traffic_scalar(ext, routing))
            np.testing.assert_allclose(
                fast, solve_traffic_linear(ext, routing), atol=1e-9
            )


class TestUtilizationProfile:
    def test_infinite_capacity_counts_as_idle(self):
        util = utilization_profile(
            np.array([5.0, 2.0]), np.array([np.inf, 4.0])
        )
        np.testing.assert_allclose(util, [0.0, 0.5])

    def test_zero_capacity_no_warning(self):
        """Regression: zero-capacity nodes used to trip a divide-by-zero."""
        import warnings

        usage = np.array([0.0, 3.0, 1.0])
        capacity = np.array([0.0, 0.0, 2.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            util = utilization_profile(usage, capacity)
        assert util[0] == 0.0  # idle node: no load, no violation
        assert util[1] == np.inf  # loaded node with no capacity
        assert util[2] == pytest.approx(0.5)


class TestResourceUsage:
    def test_hand_computed_diamond(self):
        net = diamond_network(max_rate=10.0, top_capacity=100.0,
                              bottom_capacity=100.0, cost=2.0)
        ext = build_extended_network(net)
        routing = uniform_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 1.0
        routing.phi[0, view.difference_edge] = 0.0
        __, node_usage = resource_usage(ext, routing)
        src = view.source
        # src processes 10 units at cost 2 => 20 resource units
        assert node_usage[src] == pytest.approx(20.0)
        # each middle server gets 5 units (uniform split), cost 2 => 10 each
        top = ext.node_index("top")
        assert node_usage[top] == pytest.approx(10.0)

    def test_edge_usage_sums_to_node_usage(self, figure1_ext):
        routing = uniform_routing(figure1_ext)
        edge_usage, node_usage = resource_usage(figure1_ext, routing)
        recomputed = np.zeros_like(node_usage)
        np.add.at(recomputed, figure1_ext.edge_tail, edge_usage)
        np.testing.assert_allclose(node_usage, recomputed)

    def test_commodity_edge_flows_shape(self, figure1_ext):
        flows = commodity_edge_flows(figure1_ext, uniform_routing(figure1_ext))
        assert flows.shape == (figure1_ext.num_commodities, figure1_ext.num_edges)
        assert np.all(flows >= 0)


class TestFeasibility:
    def test_overload_detected(self):
        net = diamond_network(top_capacity=1.0, bottom_capacity=1.0,
                              source_capacity=5.0, max_rate=30.0)
        ext = build_extended_network(net)
        routing = uniform_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 1.0
        routing.phi[0, view.difference_edge] = 0.0
        report = feasibility_report(ext, routing)
        assert not report.feasible
        assert report.max_utilization > 1.0
        with pytest.raises(InfeasibleError):
            require_feasible(ext, routing)

    def test_utilization_zero_for_infinite_capacity(self, diamond_ext):
        report = feasibility_report(diamond_ext, initial_routing(diamond_ext))
        for view in diamond_ext.commodities:
            assert report.utilization[view.dummy] == 0.0


class TestPhysicalLinkFlows:
    def test_wire_rates_match_bandwidth_usage(self):
        net = diamond_network(max_rate=10.0, top_capacity=100.0, bottom_capacity=100.0)
        ext = build_extended_network(net)
        routing = uniform_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 1.0
        routing.phi[0, view.difference_edge] = 0.0
        flows = physical_link_flows(ext, routing)
        assert flows[("src", "top")] == pytest.approx(5.0)
        assert flows[("top", "sink")] == pytest.approx(5.0)
        assert flows[("src", "bottom")] == pytest.approx(5.0)

    def test_empty_when_everything_shed(self, diamond_ext):
        flows = physical_link_flows(diamond_ext, initial_routing(diamond_ext))
        assert all(v == pytest.approx(0.0) for v in flows.values())
