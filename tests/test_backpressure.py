"""Tests for the back-pressure baseline (potential balancing, [6])."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.backpressure import (
    BackpressureAlgorithm,
    BackpressureConfig,
    BackpressureResult,
)
from repro.core.optimal import solve_lp
from repro.scenarios import diamond_network


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_cap": 0.0},
            {"slot_length": 0.0},
            {"max_iterations": 0},
            {"record_every": 0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            BackpressureConfig(**kwargs)


class TestDynamics:
    def test_delivered_rates_bounded_by_offered(self, diamond_ext):
        config = BackpressureConfig(max_iterations=2000, record_every=100)
        result = BackpressureAlgorithm(diamond_ext, config).run()
        assert np.all(result.average_rates <= diamond_ext.lam + 1e-9)
        assert np.all(result.average_rates >= 0)

    def test_utility_rises_over_time(self, diamond_ext):
        config = BackpressureConfig(max_iterations=5000, record_every=100)
        result = BackpressureAlgorithm(diamond_ext, config).run()
        utilities = result.utilities
        # time-averaged throughput climbs through the transient
        assert utilities[-1] > utilities[0]
        # and is near-monotone after warmup (cumulative averages smooth it)
        later = utilities[len(utilities) // 4 :]
        assert np.all(np.diff(later) >= -0.02 * max(1.0, float(later.max())))

    def test_converges_near_optimum_on_diamond(self, diamond_ext):
        lp = solve_lp(diamond_ext)
        config = BackpressureConfig(
            max_iterations=60000, record_every=1000, buffer_cap=500.0
        )
        result = BackpressureAlgorithm(diamond_ext, config).run()
        assert result.utility >= 0.93 * lp.utility

    def test_converges_near_optimum_on_figure1(self, figure1_ext):
        lp = solve_lp(figure1_ext)
        config = BackpressureConfig(
            max_iterations=60000, record_every=1000, buffer_cap=500.0
        )
        result = BackpressureAlgorithm(figure1_ext, config).run()
        assert result.utility >= 0.90 * lp.utility

    def test_slower_than_gradient(self, small_random_ext):
        """The Figure-4 ordering: on a congested multi-commodity instance the
        gradient algorithm needs several times fewer iterations than
        back-pressure (the full-scale comparison lives in the benchmarks)."""
        from repro.core.gradient import GradientAlgorithm, GradientConfig

        lp = solve_lp(small_random_ext)
        target = 0.9 * lp.utility

        grad = GradientAlgorithm(
            small_random_ext, GradientConfig(eta=0.04, max_iterations=3000)
        ).run()
        grad_hit = next(
            rec.iteration for rec in grad.history if rec.utility >= target
        )

        config = BackpressureConfig(
            max_iterations=10000, record_every=200, buffer_cap=500.0
        )
        bp = BackpressureAlgorithm(small_random_ext, config).run()
        bp_hit = next(
            (rec.iteration for rec in bp.history if rec.utility >= target), None
        )
        assert bp_hit is not None
        assert bp_hit > 3 * grad_hit

    def test_queues_never_negative(self, figure1_ext):
        """Run a short horizon and check the record's total queue is sane."""
        config = BackpressureConfig(max_iterations=500, record_every=50)
        result = BackpressureAlgorithm(figure1_ext, config).run()
        for record in result.history:
            assert record.total_queue >= 0.0

    def test_source_buffers_respect_cap(self, diamond_ext):
        """Total queue mass is bounded by cap * (nodes x commodities)."""
        cap = 50.0
        config = BackpressureConfig(
            max_iterations=3000, record_every=100, buffer_cap=cap
        )
        result = BackpressureAlgorithm(diamond_ext, config).run()
        bound = cap * diamond_ext.num_nodes * diamond_ext.num_commodities
        for record in result.history:
            assert record.total_queue <= bound * 2.0  # gains may inflate interiors

    def test_messages_per_iteration_constant(self, figure1_ext):
        algo = BackpressureAlgorithm(figure1_ext)
        # one buffer-level exchange per directed neighbour pair, both ways
        assert algo.messages_per_iteration > 0
        assert algo.messages_per_iteration == 2 * len(
            {
                (int(t), int(h))
                for t, h in zip(algo.pair_tail, algo.pair_head)
            }
        )

    def test_deterministic(self, diamond_ext):
        config = BackpressureConfig(max_iterations=1000, record_every=100)
        r1 = BackpressureAlgorithm(diamond_ext, config).run()
        r2 = BackpressureAlgorithm(diamond_ext, config).run()
        np.testing.assert_array_equal(r1.utilities, r2.utilities)

    def test_respects_node_capacity_per_slot(self):
        """Heavily overloaded single-path net: per-slot served flow at the
        bottleneck cannot exceed its budget, so the delivered rate is capped
        by capacity/cost."""
        net = diamond_network(
            top_capacity=4.0,
            bottom_capacity=4.0,
            source_capacity=1000.0,
            max_rate=100.0,
            cost=2.0,
        )
        ext = build_extended_network(net)
        config = BackpressureConfig(max_iterations=20000, record_every=1000)
        result = BackpressureAlgorithm(ext, config).run()
        # mid nodes forward at most 4/2 = 2 each => delivered <= 4; the
        # source processes at most 1000/2 = 500, irrelevant
        assert result.average_rates[0] <= 4.0 + 1e-6


class TestResultObject:
    def test_history_shapes(self, diamond_ext):
        config = BackpressureConfig(max_iterations=1000, record_every=250)
        result = BackpressureAlgorithm(diamond_ext, config).run()
        assert isinstance(result, BackpressureResult)
        assert result.recorded_iterations[-1] == 1000
        assert len(result.utilities) == len(result.history)
        assert result.iterations == 1000
