"""Tests for the cost model and marginal-cost recursions (eqs. (8)-(13)).

The decisive check is numerical: the analytic gradient ``dA/dphi`` (eq. (10),
built from eqs. (9) and (11)) must match central finite differences of the
total cost ``A(phi)`` -- this exercises the whole derivative chain including
gains, penalty derivatives, and the dummy-link utility-loss derivative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import (
    CostModel,
    all_marginal_costs,
    edge_marginals,
    evaluate_cost,
    link_cost_derivative,
    marginal_cost_to_destination,
    optimality_residual,
    phi_gradient,
)
from repro.core.penalty import InverseBarrier
from repro.core.routing import (
    initial_routing,
    resource_usage,
    solve_traffic,
    uniform_routing,
    validate_routing,
)
from repro.core.utility import LogUtility
from repro.scenarios import diamond_network, figure1_network


def interior_routing(ext, seed=0):
    """A strictly interior random routing (all allowed fractions positive)."""
    rng = np.random.default_rng(seed)
    routing = uniform_routing(ext)
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            weights = rng.random(len(out)) + 0.2
            routing.phi[j, out] = weights / weights.sum()
    validate_routing(ext, routing)
    return routing


class TestEvaluateCost:
    def test_shed_everything_cost_is_full_utility_loss(self, diamond_ext, cost_model):
        routing = initial_routing(diamond_ext)
        breakdown = evaluate_cost(diamond_ext, routing, cost_model)
        view = diamond_ext.commodities[0]
        expected_loss = float(
            view.utility.value(view.max_rate) - view.utility.value(0.0)
        )
        assert breakdown.utility_loss == pytest.approx(expected_loss)
        assert breakdown.utility == pytest.approx(0.0)
        assert breakdown.penalty == pytest.approx(0.0)  # nothing uses resources
        assert breakdown.total == pytest.approx(expected_loss)

    def test_utility_plus_loss_is_constant(self, figure1_ext, cost_model):
        """Y + U == sum_j U_j(lambda_j) for any routing (eq. (1) rearranged)."""
        offered = sum(
            float(v.utility.value(v.max_rate)) for v in figure1_ext.commodities
        )
        for seed in range(3):
            routing = interior_routing(figure1_ext, seed)
            breakdown = evaluate_cost(figure1_ext, routing, cost_model)
            assert breakdown.utility + breakdown.utility_loss == pytest.approx(
                offered, rel=1e-9
            )

    def test_admitted_and_shed_sum_to_offered(self, figure1_ext, cost_model):
        routing = interior_routing(figure1_ext, 1)
        breakdown = evaluate_cost(figure1_ext, routing, cost_model)
        np.testing.assert_allclose(
            breakdown.admitted + breakdown.shed, figure1_ext.lam, rtol=1e-9
        )


class TestLinkCostDerivative:
    def test_difference_edge_uses_marginal_utility(self, diamond_ext, cost_model):
        routing = interior_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        edge_usage, node_usage = resource_usage(diamond_ext, routing, traffic)
        dadf = link_cost_derivative(diamond_ext, cost_model, edge_usage, node_usage)
        view = diamond_ext.commodities[0]
        shed = edge_usage[view.difference_edge]
        expected = float(view.utility.derivative(view.max_rate - shed))
        assert dadf[view.difference_edge] == pytest.approx(expected)

    def test_regular_edges_use_penalty_derivative(self, diamond_ext, cost_model):
        routing = interior_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        edge_usage, node_usage = resource_usage(diamond_ext, routing, traffic)
        dadf = link_cost_derivative(diamond_ext, cost_model, edge_usage, node_usage)
        barrier = InverseBarrier()
        for edge in diamond_ext.edges:
            if diamond_ext.is_difference_edge[edge.index]:
                continue
            tail_cap = diamond_ext.capacity[edge.tail]
            expected = cost_model.eps * float(
                barrier.derivative(node_usage[edge.tail], tail_cap)
            )
            assert dadf[edge.index] == pytest.approx(expected)

    def test_dummy_input_edge_is_free(self, diamond_ext, cost_model):
        routing = interior_routing(diamond_ext)
        traffic = solve_traffic(diamond_ext, routing)
        edge_usage, node_usage = resource_usage(diamond_ext, routing, traffic)
        dadf = link_cost_derivative(diamond_ext, cost_model, edge_usage, node_usage)
        view = diamond_ext.commodities[0]
        assert dadf[view.input_edge] == 0.0


class TestMarginalCostRecursion:
    def test_sink_boundary_condition(self, figure1_ext, cost_model):
        routing = interior_routing(figure1_ext)
        traffic = solve_traffic(figure1_ext, routing)
        edge_usage, node_usage = resource_usage(figure1_ext, routing, traffic)
        dadf = link_cost_derivative(figure1_ext, cost_model, edge_usage, node_usage)
        for view in figure1_ext.commodities:
            dadr = marginal_cost_to_destination(
                figure1_ext, view.index, routing, dadf
            )
            assert dadr[view.sink] == 0.0

    def test_dadr_is_phi_average_of_edge_marginals(self, figure1_ext, cost_model):
        routing = interior_routing(figure1_ext)
        traffic = solve_traffic(figure1_ext, routing)
        edge_usage, node_usage = resource_usage(figure1_ext, routing, traffic)
        dadf = link_cost_derivative(figure1_ext, cost_model, edge_usage, node_usage)
        for view in figure1_ext.commodities:
            j = view.index
            dadr = marginal_cost_to_destination(figure1_ext, j, routing, dadf)
            delta = edge_marginals(figure1_ext, j, dadf, dadr)
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = figure1_ext.commodity_out_edges[j][node]
                expected = sum(routing.phi[j, e] * delta[e] for e in out)
                assert dadr[node] == pytest.approx(expected, rel=1e-9)

    def test_all_marginal_costs_shape(self, figure1_ext, cost_model):
        routing = interior_routing(figure1_ext)
        traffic = solve_traffic(figure1_ext, routing)
        edge_usage, node_usage = resource_usage(figure1_ext, routing, traffic)
        dadf = link_cost_derivative(figure1_ext, cost_model, edge_usage, node_usage)
        dadr = all_marginal_costs(figure1_ext, routing, dadf)
        assert dadr.shape == (figure1_ext.num_commodities, figure1_ext.num_nodes)


class TestGradientAgainstFiniteDifferences:
    """Eq. (10) must match numerical differentiation of A(phi)."""

    @pytest.mark.parametrize("factory,seed", [
        (diamond_network, 0),
        (diamond_network, 3),
        (figure1_network, 1),
    ])
    def test_phi_gradient_matches_fd(self, factory, seed):
        ext = build_extended_network(factory())
        cost_model = CostModel(eps=0.2)
        routing = interior_routing(ext, seed)
        analytic = phi_gradient(ext, routing, cost_model=cost_model)

        def cost_at(phi):
            from repro.core.routing import RoutingState

            return evaluate_cost(ext, RoutingState(phi), cost_model).total

        rng = np.random.default_rng(seed)
        checked = 0
        h = 1e-6
        for view in ext.commodities:
            j = view.index
            candidates = [e for e in view.edge_indices]
            rng.shuffle(candidates)
            for e in candidates[:6]:
                # perturb phi[j, e] holding other fractions fixed; the
                # analytic partial derivative treats coordinates as free
                plus = routing.phi.copy()
                plus[j, e] += h
                minus = routing.phi.copy()
                minus[j, e] -= h
                fd = (cost_at(plus) - cost_at(minus)) / (2 * h)
                scale = max(1.0, abs(fd))
                assert analytic[j, e] == pytest.approx(fd, abs=2e-4 * scale), (
                    f"commodity {j}, edge {e}"
                )
                checked += 1
        assert checked > 0


class TestOptimalityResidual:
    def test_small_at_converged_solution(self, diamond_ext):
        config = GradientConfig(eta=0.05, max_iterations=4000)
        result = GradientAlgorithm(diamond_ext, config).run()
        report = optimality_residual(
            diamond_ext, result.solution.routing, config.cost_model
        )
        assert report.sufficient_residual <= 1e-4
        assert report.equal_residual <= 0.01

    def test_large_at_bad_routing(self):
        # Route everything through one saturated path while the other is idle:
        # the marginal-cost spread must be visible in the residual.
        net = diamond_network(top_capacity=2.0, bottom_capacity=100.0,
                              max_rate=20.0)
        ext = build_extended_network(net)
        routing = uniform_routing(ext)
        view = ext.commodities[0]
        routing.phi[0, view.input_edge] = 0.9
        routing.phi[0, view.difference_edge] = 0.1
        src = view.source
        for e in ext.commodity_out_edges[0][src]:
            head_name = ext.nodes[ext.edge_head[e]].name
            routing.phi[0, e] = 0.95 if "top" in head_name else 0.05
        report = optimality_residual(ext, routing)
        assert report.equal_residual > 0.1

    def test_satisfied_helper(self, diamond_ext):
        config = GradientConfig(eta=0.05, max_iterations=4000)
        result = GradientAlgorithm(diamond_ext, config).run()
        report = optimality_residual(
            diamond_ext, result.solution.routing, config.cost_model
        )
        assert report.satisfied(tol=0.05)


class TestNonlinearUtilities:
    def test_log_utility_cost_chain(self):
        net = diamond_network(utility=LogUtility(weight=5.0), max_rate=10.0,
                              top_capacity=100.0, bottom_capacity=100.0)
        ext = build_extended_network(net)
        cost_model = CostModel(eps=0.1)
        routing = interior_routing(ext, 2)
        analytic = phi_gradient(ext, routing, cost_model=cost_model)
        view = ext.commodities[0]
        # derivative along the difference edge must reflect U'(lam - shed)
        traffic = solve_traffic(ext, routing)
        edge_usage, node_usage = resource_usage(ext, routing, traffic)
        dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
        shed = edge_usage[view.difference_edge]
        assert dadf[view.difference_edge] == pytest.approx(
            5.0 / (1.0 + (view.max_rate - shed))
        )
        assert np.all(np.isfinite(analytic))
