"""Tests for the epoch-versioned delta core (:mod:`repro.core.delta`).

The contract under test: applying a compiled delta is **bit-identical** to
rebuilding the extended network from scratch (down to every vectorization
plan), epochs advance by exactly one per event, and the parallel backend
survives an epoch refresh without recreating its worker pool.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import build_extended_network
from repro.core.commodity import Commodity
from repro.core.delta import (
    apply_delta,
    apply_scalar_patch,
    build_index_maps,
    carry_routing,
    compile_event,
    diff_extended_networks,
)
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.routing import initial_routing, validate_routing
from repro.exceptions import ModelError
from repro.online import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NodeFailure,
    apply_event,
)
from repro.online import rebuild as rebuild_module
from repro.parallel.backend import ParallelBackend
from repro.validate import DifferentialOracle
from repro.validate.strategies import event_sequences
from repro.scenarios import ChurnSpec, churn_network, churn_trace, figure1_network


def _interior_node(network):
    sources = {c.source for c in network.commodities}
    sinks = {c.sink for c in network.commodities}
    nodes = sorted(
        {n for c in network.commodities for n in c.potentials} - sources - sinks
    )
    return nodes[0]


def _one_event(kind):
    """``(network, [event])`` exercising exactly one event class."""
    net = churn_network(num_nodes=20, num_commodities=3, seed=5)
    first = net.commodities[0]
    if kind == "demand":
        return net, [DemandChange(5, commodity=first.name,
                                  new_rate=first.max_rate * 1.3)]
    if kind == "capacity":
        node = net.physical.processing_nodes()[0]
        return net, [CapacityChange(5, node=node.name,
                                    new_capacity=node.capacity * 0.8)]
    if kind == "link_failure":
        return net, [LinkFailure(5, link=first.edges[len(first.edges) // 2])]
    if kind == "node_failure":
        return net, [NodeFailure(5, node=_interior_node(net))]
    if kind == "departure":
        return net, [CommodityDeparture(5, commodity=first.name)]
    if kind == "arrival":
        # depart first, then bring the same session back
        base = apply_event(net, CommodityDeparture(1, commodity=first.name)).network
        return base, [CommodityArrival(5, commodity=first)]
    raise AssertionError(kind)


EVENT_KINDS = [
    "demand", "capacity", "link_failure", "node_failure", "departure", "arrival",
]


class TestEpochSemantics:
    def test_fresh_build_starts_at_epoch_zero(self):
        assert build_extended_network(figure1_network()).epoch == 0

    def test_scalar_delta_mutates_in_place(self):
        net = figure1_network()
        ext = build_extended_network(net)
        plans = ext.flow_plans  # force the lazy plans
        delta = compile_event(ext, DemandChange(1, commodity="S1", new_rate=20.0))
        assert not delta.structural
        applied = apply_delta(ext, delta)
        assert applied.ext is ext
        assert ext.epoch == 1
        assert applied.maps.identity
        # the vectorization plans survive untouched
        assert ext.flow_plans is plans
        j = ext.commodity_view("S1").index
        assert ext.lam[j] == pytest.approx(20.0)

    def test_structural_delta_leaves_base_epoch_usable(self):
        net = figure1_network()
        ext = build_extended_network(net)
        delta = compile_event(ext, LinkFailure(1, link=("server2", "server4")))
        assert delta.structural
        applied = apply_delta(ext, delta)
        assert applied.ext is not ext
        assert ext.epoch == 0  # base epoch untouched
        assert applied.ext.epoch == 1
        # the old epoch still validates its own routings
        validate_routing(ext, initial_routing(ext))

    def test_stale_delta_rejected(self):
        ext = build_extended_network(figure1_network())
        delta = compile_event(ext, DemandChange(1, commodity="S1", new_rate=20.0))
        apply_delta(ext, delta)  # epoch is now 1
        with pytest.raises(ModelError, match="stale delta"):
            apply_delta(ext, delta)

    def test_scalar_patch_is_idempotent(self):
        ext = build_extended_network(figure1_network())
        delta = compile_event(ext, CapacityChange(1, node="server3",
                                                  new_capacity=7.0))
        assert delta.scalar is not None
        apply_scalar_patch(ext, delta.scalar)
        snapshot = ext.capacity.copy()
        apply_scalar_patch(ext, delta.scalar)
        np.testing.assert_array_equal(ext.capacity, snapshot)
        assert ext.epoch == 2  # epochs still advance per application


class TestBitIdentityPerEvent:
    """Acceptance bar: delta apply == from-scratch rebuild, per event class."""

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_compare_rebuild_agrees(self, kind):
        network, events = _one_event(kind)
        report = DifferentialOracle().compare_rebuild(
            network, events, gradient_steps=3
        )
        assert report.passed, report.summary()
        (step,) = report.steps
        assert step.epoch == 1
        assert step.routing_identical and step.routing_valid

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_diff_is_empty_including_plans(self, kind):
        network, events = _one_event(kind)
        ext = build_extended_network(network)
        applied = apply_delta(ext, compile_event(ext, events[0]))
        reference = build_extended_network(
            apply_event(network, events[0]).network, require_connected=False
        )
        diffs = diff_extended_networks(applied.ext, reference, compare_plans=True)
        assert diffs == [], diffs


class TestCarryRouting:
    def test_scalar_delta_carries_verbatim(self):
        net = figure1_network()
        ext = build_extended_network(net)
        routing = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=200)
        ).run().solution.routing
        delta = compile_event(ext, DemandChange(1, commodity="S1", new_rate=20.0))
        applied = apply_delta(ext, delta)
        carried = carry_routing(ext, routing, applied.ext, applied.maps)
        np.testing.assert_array_equal(carried.phi, routing.phi)

    def test_structural_delta_yields_valid_routing(self):
        net = churn_network(num_nodes=20, num_commodities=3, seed=5)
        ext = build_extended_network(net)
        routing = initial_routing(ext)
        delta = compile_event(ext, NodeFailure(1, node=_interior_node(net)))
        applied = apply_delta(ext, delta)
        carried = carry_routing(ext, routing, applied.ext, applied.maps)
        validate_routing(applied.ext, carried)


class TestChurnSoak:
    """Satellite 4: a long mixed timeline, checked step by step."""

    def test_soak_fifty_mixed_events(self):
        net = churn_network(num_nodes=24, num_commodities=4, seed=3)
        events = churn_trace(net, ChurnSpec(num_events=50), seed=11)
        assert len(events) == 50
        assert len({type(e).__name__ for e in events}) >= 4  # genuinely mixed

        ext = build_extended_network(net)
        routing = initial_routing(ext)
        epochs = [ext.epoch]
        for event in events:
            delta = compile_event(ext, event)
            applied = apply_delta(ext, delta)
            routing = carry_routing(ext, routing, applied.ext, applied.maps)
            validate_routing(applied.ext, routing)  # feasible at every epoch
            ext = applied.ext
            epochs.append(ext.epoch)
        assert epochs == list(range(51))  # strictly monotone, +1 per event

        # and the oracle agrees the whole trace is bit-identical
        report = DifferentialOracle().compare_rebuild(net, events)
        assert report.passed, report.summary()


class TestEventSequenceProperty:
    @settings(max_examples=10, deadline=None)
    @given(pair=event_sequences(max_events=4))
    def test_rebuild_oracle_agrees_on_random_sequences(self, pair):
        network, events = pair
        report = DifferentialOracle().compare_rebuild(network, events)
        assert report.passed, report.summary()


class TestPoolSurvival:
    """Acceptance bar: an event does not tear down the worker pool."""

    def test_refresh_keeps_pool_and_matches_serial(self):
        net = churn_network(num_nodes=20, num_commodities=3, seed=5)
        events = [
            DemandChange(1, commodity=net.commodities[0].name, new_rate=25.0),
            LinkFailure(2, link=net.commodities[1].edges[1]),
            CommodityDeparture(3, commodity=net.commodities[2].name),
        ]
        config = GradientConfig(eta=0.02)
        ext_p = build_extended_network(net)
        ext_s = build_extended_network(net)
        with ParallelBackend(workers=2) as backend:
            algo_p = GradientAlgorithm(ext_p, config, backend=backend)
            algo_s = GradientAlgorithm(ext_s, config)
            rp, rs = initial_routing(ext_p), initial_routing(ext_s)
            for _ in range(3):  # force the pool to start
                rp, rs = algo_p.step(rp), algo_s.step(rs)
            pool = backend._pool
            assert pool is not None
            pids = {p.pid for p in pool._processes.values()}
            scalar_specs = dict(backend._shm.specs)

            for event in events:
                delta_p = compile_event(ext_p, event)
                applied_p = apply_delta(ext_p, delta_p)
                rp = carry_routing(ext_p, rp, applied_p.ext, applied_p.maps)
                algo_p.refresh(applied_p)
                ext_p = applied_p.ext

                delta_s = compile_event(ext_s, event)
                applied_s = apply_delta(ext_s, delta_s)
                rs = carry_routing(ext_s, rs, applied_s.ext, applied_s.maps)
                algo_s.refresh(applied_s)
                ext_s = applied_s.ext

                for _ in range(2):
                    rp, rs = algo_p.step(rp), algo_s.step(rs)
                # parallel iterates stay bit-identical to serial across epochs
                np.testing.assert_array_equal(rp.phi, rs.phi)

                assert backend._pool is pool  # never torn down
                assert {p.pid for p in pool._processes.values()} == pids

    def test_scalar_refresh_republishes_no_segments(self):
        net = churn_network(num_nodes=20, num_commodities=3, seed=5)
        ext = build_extended_network(net)
        with ParallelBackend(workers=2) as backend:
            algo = GradientAlgorithm(ext, GradientConfig(eta=0.02), backend=backend)
            routing = algo.step(initial_routing(ext))
            specs_before = dict(backend._shm.specs)
            delta = compile_event(
                ext, DemandChange(1, commodity=net.commodities[0].name,
                                  new_rate=30.0)
            )
            applied = apply_delta(ext, delta)
            algo.refresh(applied)
            # a scalar epoch ships a few-byte patch: every shm block survives
            assert dict(backend._shm.specs) == specs_before
            algo.step(routing)  # and the pool still computes on the new epoch


class TestRebuildErrorHandling:
    """Satellites 1+2: only expected errors are swallowed."""

    def test_unexpected_error_propagates(self, monkeypatch):
        net = figure1_network()

        def boom(*args, **kwargs):
            raise RuntimeError("not a validation problem")

        monkeypatch.setattr(rebuild_module.Commodity, "from_subgraph", boom)
        with pytest.raises(RuntimeError, match="not a validation problem"):
            apply_event(net, LinkFailure(1, link=("server2", "server4")))

    def test_unservable_demand_change_is_model_error(self, monkeypatch):
        net = figure1_network()
        monkeypatch.setattr(
            rebuild_module, "_rebuild_commodity", lambda *a, **k: None
        )
        with pytest.raises(ModelError, match="unservable"):
            apply_event(net, DemandChange(1, commodity="S1", new_rate=9.0))


class TestSharing:
    """Satellite 3: untouched commodities are carried as the same objects."""

    def test_demand_change_shares_other_commodities(self):
        net = figure1_network()
        result = apply_event(
            net, DemandChange(1, commodity="S1", new_rate=20.0)
        )
        assert result.network.commodity("S2") is net.commodity("S2")
        assert result.network.commodity("S1") is not net.commodity("S1")

    def test_capacity_change_shares_every_commodity(self):
        net = figure1_network()
        result = apply_event(
            net, CapacityChange(1, node="server3", new_capacity=9.0)
        )
        for old, new in zip(net.commodities, result.network.commodities):
            assert new is old

    def test_failure_rebuilds_only_touched(self):
        net = figure1_network()
        # server2 is on S1's subgraph only
        result = apply_event(net, NodeFailure(1, node="server2"))
        assert result.network.commodity("S2") is net.commodity("S2")
        assert result.network.commodity("S1") is not net.commodity("S1")

    def test_splice_carries_clean_plans_by_reference(self):
        # the structural fast path must *remap* clean commodities' plans,
        # not rebuild them: the index-free plan arrays (gains, valid) are
        # shared with the old epoch's plans.  Pins the fast path actually
        # firing -- a silently broken index map degrades every splice to
        # full re-derivation (correct but O(problem), see _splice_maps).
        net = churn_network(num_nodes=20, num_commodities=3, seed=5)
        ext = build_extended_network(net)
        ext.flow_plans
        ext.gamma_plans
        gone = net.commodities[-1].name
        applied = apply_delta(
            ext, compile_event(ext, CommodityDeparture(1, commodity=gone))
        )
        assert applied.ext._flow_plans is not None
        assert applied.ext._gamma_plans is not None
        for view in applied.ext.commodities:
            jo = ext.commodity_view(view.name).index
            assert applied.ext._flow_plans[view.index].gains is (
                ext._flow_plans[jo].gains
            )
            assert applied.ext._gamma_plans[view.index].valid is (
                ext._gamma_plans[jo].valid
            )


class TestIndexMaps:
    def test_identity_between_equal_builds(self):
        net = figure1_network()
        a, b = build_extended_network(net), build_extended_network(net)
        assert build_index_maps(a, b).identity

    def test_departed_commodity_maps_to_minus_one(self):
        net = churn_network(num_nodes=20, num_commodities=3, seed=5)
        ext = build_extended_network(net)
        gone = net.commodities[1].name
        applied = apply_delta(
            ext, compile_event(ext, CommodityDeparture(1, commodity=gone))
        )
        j = ext.commodity_view(gone).index
        assert applied.maps.commodity_map[j] == -1
        survivors = np.delete(np.arange(ext.num_commodities), j)
        assert np.all(applied.maps.commodity_map[survivors] >= 0)
