"""Unit and property tests for the utility-function library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import (
    AlphaFairUtility,
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    SqrtUtility,
    check_concave_increasing,
)
from repro.exceptions import ValidationError

ALL_UTILITIES = [
    LinearUtility(weight=2.5),
    LogUtility(weight=3.0, offset=1.0),
    AlphaFairUtility(alpha=0.5, weight=2.0),
    AlphaFairUtility(alpha=1.0, weight=1.5),
    AlphaFairUtility(alpha=2.0, weight=1.0, offset=1.0),
    SqrtUtility(weight=4.0),
    CappedLinearUtility(cap=10.0, weight=2.0),
]


class TestLinearUtility:
    def test_value_is_weighted_rate(self):
        u = LinearUtility(weight=3.0)
        assert u.value(4.0) == pytest.approx(12.0)

    def test_derivative_is_weight(self):
        u = LinearUtility(weight=3.0)
        assert u.derivative(100.0) == pytest.approx(3.0)

    def test_vectorised(self):
        u = LinearUtility(weight=2.0)
        np.testing.assert_allclose(u.value(np.array([1.0, 2.0])), [2.0, 4.0])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValidationError):
            LinearUtility(weight=0.0)

    def test_call_alias(self):
        u = LinearUtility()
        assert u(5.0) == u.value(5.0)


class TestLogUtility:
    def test_value(self):
        u = LogUtility(weight=1.0, offset=1.0)
        assert u.value(np.e - 1.0) == pytest.approx(1.0)

    def test_derivative(self):
        u = LogUtility(weight=2.0, offset=1.0)
        assert u.derivative(1.0) == pytest.approx(1.0)

    def test_finite_at_zero(self):
        u = LogUtility()
        assert np.isfinite(u.value(0.0))
        assert np.isfinite(u.derivative(0.0))

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            LogUtility(weight=-1.0)
        with pytest.raises(ValidationError):
            LogUtility(offset=0.0)


class TestAlphaFair:
    def test_alpha_zero_matches_linear(self):
        u = AlphaFairUtility(alpha=0.0, weight=2.0, offset=0.0)
        assert u.value(5.0) == pytest.approx(10.0)
        assert u.derivative(5.0) == pytest.approx(2.0)

    def test_alpha_one_delegates_to_log(self):
        u = AlphaFairUtility(alpha=1.0, weight=2.0, offset=1.0)
        log = LogUtility(weight=2.0, offset=1.0)
        assert u.value(3.0) == pytest.approx(log.value(3.0))
        assert u.derivative(3.0) == pytest.approx(log.derivative(3.0))

    def test_alpha_two(self):
        u = AlphaFairUtility(alpha=2.0, weight=1.0, offset=1.0)
        # U(a) = -(1+a)^{-1}; U'(a) = (1+a)^{-2}
        assert u.value(1.0) == pytest.approx(-0.5)
        assert u.derivative(1.0) == pytest.approx(0.25)

    def test_rejects_zero_offset_with_large_alpha(self):
        with pytest.raises(ValidationError):
            AlphaFairUtility(alpha=1.5, offset=0.0)


class TestCappedLinear:
    def test_below_cap_nearly_linear(self):
        u = CappedLinearUtility(cap=10.0, weight=2.0, softness=0.05)
        assert u.value(5.0) == pytest.approx(10.0, rel=1e-3)
        assert u.derivative(5.0) == pytest.approx(2.0, rel=1e-3)

    def test_above_cap_nearly_flat(self):
        u = CappedLinearUtility(cap=10.0, weight=2.0, softness=0.05)
        assert u.derivative(15.0) == pytest.approx(0.0, abs=1e-6)

    def test_large_argument_stable(self):
        u = CappedLinearUtility(cap=10.0)
        assert np.isfinite(u.value(1e6))
        assert np.isfinite(u.derivative(1e6))

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            CappedLinearUtility(cap=-1.0)
        with pytest.raises(ValidationError):
            CappedLinearUtility(cap=1.0, softness=0.0)


class TestLossSemantics:
    """Eq. (1): Y(x) = U(lam) - U(lam - x)."""

    @pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: repr(u))
    def test_loss_zero_at_zero_shed(self, utility):
        assert utility.loss(10.0, 0.0) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: repr(u))
    def test_loss_full_shed_equals_utility_span(self, utility):
        lam = 8.0
        expected = utility.value(lam) - utility.value(0.0)
        assert utility.loss(lam, lam) == pytest.approx(float(expected))

    @pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: repr(u))
    def test_loss_derivative_matches_definition(self, utility):
        lam, x = 10.0, 3.0
        assert utility.loss_derivative(lam, x) == pytest.approx(
            float(utility.derivative(lam - x))
        )

    @pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: repr(u))
    def test_loss_is_convex_increasing_in_shed(self, utility):
        lam = 12.0
        xs = np.linspace(0.0, lam, 101)
        losses = np.asarray(utility.loss(lam, xs), dtype=float)
        assert np.all(np.diff(losses) >= -1e-9)
        assert np.all(np.diff(np.diff(losses)) >= -1e-7)


class TestConcavityChecker:
    @pytest.mark.parametrize("utility", ALL_UTILITIES, ids=lambda u: repr(u))
    def test_accepts_all_library_utilities(self, utility):
        check_concave_increasing(utility, lo=0.0, hi=50.0)

    def test_rejects_convex_function(self):
        class Convex(LinearUtility):
            def value(self, a):
                return np.asarray(a, dtype=float) ** 2

            def derivative(self, a):
                return 2.0 * np.asarray(a, dtype=float)

        with pytest.raises(ValidationError):
            check_concave_increasing(Convex())

    def test_rejects_decreasing_function(self):
        class Decreasing(LinearUtility):
            def value(self, a):
                return -np.asarray(a, dtype=float)

            def derivative(self, a):
                return np.full_like(np.asarray(a, dtype=float), -1.0)

        with pytest.raises(ValidationError):
            check_concave_increasing(Decreasing())

    def test_rejects_inconsistent_derivative(self):
        class Lying(LinearUtility):
            def derivative(self, a):
                return np.full_like(np.asarray(a, dtype=float), 42.0)

        with pytest.raises(ValidationError):
            check_concave_increasing(Lying())


@st.composite
def utility_and_points(draw):
    kind = draw(st.sampled_from(["linear", "log", "alpha", "sqrt", "capped"]))
    weight = draw(st.floats(0.1, 10.0))
    if kind == "linear":
        utility = LinearUtility(weight)
    elif kind == "log":
        utility = LogUtility(weight, offset=draw(st.floats(0.1, 5.0)))
    elif kind == "alpha":
        utility = AlphaFairUtility(
            alpha=draw(st.floats(0.0, 3.0)), weight=weight, offset=draw(st.floats(0.5, 5.0))
        )
    elif kind == "sqrt":
        utility = SqrtUtility(weight, offset=draw(st.floats(0.1, 5.0)))
    else:
        utility = CappedLinearUtility(
            cap=draw(st.floats(1.0, 50.0)), weight=weight, softness=draw(st.floats(0.05, 1.0))
        )
    a = draw(st.floats(0.0, 100.0))
    b = draw(st.floats(0.0, 100.0))
    return utility, min(a, b), max(a, b)


class TestUtilityProperties:
    @given(utility_and_points())
    @settings(max_examples=150, deadline=None)
    def test_monotone_increasing(self, case):
        utility, lo, hi = case
        assert float(utility.value(hi)) >= float(utility.value(lo)) - 1e-9

    @given(utility_and_points())
    @settings(max_examples=150, deadline=None)
    def test_derivative_nonnegative_and_nonincreasing(self, case):
        utility, lo, hi = case
        d_lo = float(utility.derivative(lo))
        d_hi = float(utility.derivative(hi))
        assert d_lo >= -1e-12
        assert d_hi <= d_lo + 1e-9

    @given(utility_and_points())
    @settings(max_examples=100, deadline=None)
    def test_derivative_matches_finite_difference(self, case):
        utility, lo, __ = case
        h = 1e-5
        fd = (float(utility.value(lo + h)) - float(utility.value(lo))) / h
        mid = float(utility.derivative(lo + h / 2))
        assert fd == pytest.approx(mid, rel=1e-2, abs=1e-6)
