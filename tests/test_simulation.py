"""Tests for the message-passing simulation substrate and its equivalence to
the synchronous engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.routing import initial_routing
from repro.exceptions import ProtocolError, SimulationError
from repro.simulation import (
    DistributedGradientRun,
    EventEngine,
    MarginalCostMessage,
    NodeAgent,
)
from repro.scenarios import (
    diamond_network,
    figure1_network,
    sensor_fusion_network,
    tandem_network,
)


class TestEventEngine:
    class Echo:
        def __init__(self):
            self.seen = []

        def on_message(self, message, engine):
            self.seen.append((engine.now, message))

    def test_delivery_order_is_deterministic(self):
        engine = EventEngine()
        echo = self.Echo()
        engine.register(0, echo)
        m1 = MarginalCostMessage(sender=1, commodity=0, value=1.0, tagged=False)
        m2 = MarginalCostMessage(sender=2, commodity=0, value=2.0, tagged=False)
        engine.send(0, m1, delay=2)
        engine.send(0, m2, delay=1)
        engine.run_until_idle()
        assert [m.sender for __, m in echo.seen] == [2, 1]

    def test_elapsed_ticks_reflect_chain_depth(self):
        engine = EventEngine()

        class Relay:
            def __init__(self, node, limit):
                self.node = node
                self.limit = limit

            def on_message(self, message, eng):
                if self.node < self.limit:
                    eng.send(self.node + 1, message)

        for n in range(5):
            engine.register(n, Relay(n, 4))
        engine.send(0, MarginalCostMessage(sender=9, commodity=0, value=0, tagged=False))
        elapsed = engine.run_until_idle()
        assert elapsed == 5  # 5 hops at unit latency

    def test_unknown_target_rejected(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.send(3, MarginalCostMessage(sender=0, commodity=0, value=0, tagged=False))

    def test_duplicate_registration_rejected(self):
        engine = EventEngine()
        echo = self.Echo()
        engine.register(0, echo)
        with pytest.raises(SimulationError):
            engine.register(0, echo)

    def test_reset_clock_requires_idle(self):
        engine = EventEngine()
        engine.register(0, self.Echo())
        engine.send(0, MarginalCostMessage(sender=1, commodity=0, value=0, tagged=False))
        with pytest.raises(SimulationError):
            engine.reset_clock()
        engine.run_until_idle()
        engine.reset_clock()
        assert engine.now == 0

    def test_metrics_count_messages_and_bytes(self):
        engine = EventEngine()
        engine.register(0, self.Echo())
        msg = MarginalCostMessage(sender=1, commodity=0, value=0.5, tagged=True)
        engine.send(0, msg)
        assert engine.metrics.messages_total == 1
        assert engine.metrics.bytes_total == msg.size_bytes
        assert engine.metrics.by_type["MarginalCostMessage"] == 1


@pytest.mark.parametrize(
    "factory",
    [diamond_network, figure1_network, sensor_fusion_network],
    ids=["diamond", "figure1", "sensor-fusion"],
)
class TestEquivalenceWithSynchronousEngine:
    def test_iterates_bit_identical(self, factory):
        ext = build_extended_network(factory())
        config = GradientConfig(eta=0.05)
        sync = GradientAlgorithm(ext, config)
        routing = initial_routing(ext)

        dist = DistributedGradientRun(ext, config)
        dist.load_routing(routing)
        dist.forecast_phase()

        current = routing.copy()
        for __ in range(25):
            current = sync.step(current)
            dist.iterate(0)
            distributed = dist.export_routing()
            np.testing.assert_array_equal(current.phi, distributed.phi)


class TestDistributedRun:
    def test_run_matches_synchronous_full_run(self):
        ext = build_extended_network(figure1_network())
        config = GradientConfig(eta=0.05)
        iterations = 40

        sync = GradientAlgorithm(ext, config)
        routing = initial_routing(ext)
        for __ in range(iterations):
            routing = sync.step(routing)

        result = DistributedGradientRun(ext, config).run(iterations=iterations)
        np.testing.assert_array_equal(result.solution.routing.phi, routing.phi)
        assert result.iterations == iterations

    def test_utilities_recorded(self):
        ext = build_extended_network(diamond_network())
        result = DistributedGradientRun(ext, GradientConfig(eta=0.05)).run(
            iterations=20, record_every=5
        )
        assert len(result.utilities) == 4
        assert result.utilities[-1] > 0

    def test_rejects_zero_iterations(self):
        ext = build_extended_network(diamond_network())
        with pytest.raises(SimulationError):
            DistributedGradientRun(ext).run(iterations=0)


class TestComplexityScaling:
    """Paper, Section 6: a gradient iteration takes O(L) message rounds."""

    def test_rounds_grow_linearly_with_depth(self):
        rounds = {}
        for depth in (2, 4, 8):
            ext = build_extended_network(tandem_network(depth))
            run = DistributedGradientRun(ext, GradientConfig(eta=0.05))
            run.load_routing(initial_routing(ext))
            run.forecast_phase()
            metrics = run.iterate(1)
            marginal = next(p for p in metrics.phases if p.name == "marginal")
            rounds[depth] = marginal.rounds
        assert rounds[4] > rounds[2]
        assert rounds[8] > rounds[4]
        # linear growth: doubling the depth roughly doubles the wave depth
        growth = (rounds[8] - rounds[4]) / (rounds[4] - rounds[2])
        assert 1.5 <= growth <= 3.0

    def test_update_phase_is_message_free(self):
        ext = build_extended_network(diamond_network())
        run = DistributedGradientRun(ext, GradientConfig(eta=0.05))
        run.load_routing(initial_routing(ext))
        run.forecast_phase()
        metrics = run.iterate(1)
        update = next(p for p in metrics.phases if p.name == "update")
        assert update.messages == 0
        assert update.rounds == 0

    def test_message_counts_stable_across_iterations(self):
        ext = build_extended_network(figure1_network())
        run = DistributedGradientRun(ext, GradientConfig(eta=0.05))
        run.load_routing(initial_routing(ext))
        run.forecast_phase()
        first = run.iterate(1).messages
        for i in range(5):
            last = run.iterate(2 + i).messages
        # marginal-phase messages are topology-determined; forecast messages
        # vary only with the number of active edges
        assert last <= first * 1.5
        assert last >= first * 0.5


class TestProtocolErrors:
    def test_agent_rejects_unknown_commodity(self):
        ext = build_extended_network(diamond_network())
        from repro.core.marginals import CostModel

        agent = NodeAgent(ext, node=0, cost_model=CostModel(), eta=0.04,
                          traffic_tol=1e-12)
        engine = EventEngine()
        with pytest.raises(ProtocolError):
            agent.on_message(
                MarginalCostMessage(sender=1, commodity=99, value=0.0, tagged=False),
                engine,
            )

    def test_agent_rejects_non_neighbour_marginal(self):
        ext = build_extended_network(diamond_network())
        from repro.core.marginals import CostModel

        view = ext.commodities[0]
        agent = NodeAgent(ext, node=view.source, cost_model=CostModel(),
                          eta=0.04, traffic_tol=1e-12)
        engine = EventEngine()
        with pytest.raises(ProtocolError):
            agent.on_message(
                MarginalCostMessage(
                    sender=view.dummy, commodity=0, value=0.0, tagged=False
                ),
                engine,
            )

    def test_update_before_wave_completes_rejected(self):
        ext = build_extended_network(diamond_network())
        run = DistributedGradientRun(ext, GradientConfig(eta=0.05))
        run.load_routing(initial_routing(ext))
        run.forecast_phase()
        with pytest.raises(ProtocolError):
            run.update_phase()
