"""Cross-module property-based tests (hypothesis).

These encode the structural invariants the whole system rests on, checked
over randomised routings, workloads, and events rather than hand-picked
cases.  The generators live in :mod:`repro.validate.strategies` so the CI
fuzz sweep and the differential oracle draw from the same distribution;
example counts are governed by the profiles registered in ``conftest.py``
(``HYPOTHESIS_PROFILE=ci`` for the thorough sweep).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import CostModel, evaluate_cost
from repro.core.routing import (
    admitted_rates,
    commodity_edge_flows,
    feasibility_report,
    resource_usage,
    solve_traffic,
    validate_routing,
)
from repro.io import network_to_dict
from repro.online import LinkFailure, apply_event, emergency_shed, remap_routing
from repro.validate.strategies import (
    named_extended_network,
    network_names,
    random_routing,
    seeds,
    small_random_spec,
)
from repro.scenarios import diamond_network, figure1_network, random_stream_network


class TestFlowConservation:
    """Eq. (7): gain-aware conservation at every interior node, for any phi."""

    @given(seed=seeds(), name=network_names())
    def test_conservation_holds(self, seed, name):
        ext = named_extended_network(name)
        routing = random_routing(ext, seed)
        traffic = solve_traffic(ext, routing)
        flows = commodity_edge_flows(ext, routing, traffic)
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                outflow = sum(
                    flows[j, e] for e in ext.commodity_out_edges[j][node]
                )
                inflow = sum(
                    ext.gain[j, e] * flows[j, e]
                    for e in ext.in_edges[node]
                    if ext.allowed[j, e]
                )
                external = view.max_rate if node == view.dummy else 0.0
                assert outflow == pytest.approx(inflow + external, abs=1e-9)

    @given(seed=seeds())
    def test_traffic_scales_linearly_with_phi_split(self, seed):
        """Admitted rate equals lambda times the input fraction."""
        ext = named_extended_network("figure1")
        routing = random_routing(ext, seed)
        admitted = admitted_rates(ext, routing)
        for view in ext.commodities:
            expected = view.max_rate * routing.phi[view.index, view.input_edge]
            assert admitted[view.index] == pytest.approx(expected, abs=1e-9)


class TestObjectiveIdentities:
    @given(seed=seeds(), eps=st.floats(0.01, 1.0))
    def test_utility_plus_loss_is_offered_value(self, seed, eps):
        ext = named_extended_network("figure1")
        routing = random_routing(ext, seed)
        breakdown = evaluate_cost(ext, routing, CostModel(eps=eps))
        offered = sum(
            float(v.utility.value(v.max_rate)) for v in ext.commodities
        )
        assert breakdown.utility + breakdown.utility_loss == pytest.approx(
            offered, rel=1e-9
        )

    @given(seed=seeds())
    def test_cost_nonnegative_and_finite(self, seed):
        ext = named_extended_network("diamond")
        routing = random_routing(ext, seed)
        breakdown = evaluate_cost(ext, routing, CostModel(eps=0.2))
        assert np.isfinite(breakdown.total)
        assert breakdown.utility_loss >= -1e-9
        assert breakdown.penalty >= -1e-9


class TestGammaInvariants:
    @given(seed=seeds(), eta=st.floats(0.001, 0.3))
    def test_step_preserves_validity_and_boundedness(self, seed, eta):
        ext = named_extended_network("diamond")
        algo = GradientAlgorithm(ext, GradientConfig(eta=eta))
        routing = random_routing(ext, seed)
        for __ in range(3):
            routing = algo.step(routing)
            validate_routing(ext, routing)
            admitted = admitted_rates(ext, routing)
            assert np.all(admitted <= ext.lam + 1e-9)
            assert np.all(admitted >= -1e-9)


class TestOnlineInvariants:
    @given(
        seed=seeds(),
        link_index=st.integers(0, 13),
    )
    def test_remap_after_any_single_link_failure_is_valid(self, seed, link_index):
        network = figure1_network()
        links = sorted(network.physical.links)
        link = links[link_index % len(links)]
        ext = named_extended_network("figure1")
        routing = random_routing(ext, seed)
        try:
            rebuilt = apply_event(network, LinkFailure(at_iteration=1, link=link))
        except Exception:
            return  # event stranded everything; nothing to check
        new_ext = build_extended_network(rebuilt.network, require_connected=False)
        carried = remap_routing(ext, routing, new_ext)
        validate_routing(new_ext, carried)

    @given(seed=seeds(), target=st.floats(0.3, 1.0))
    def test_emergency_shed_meets_any_target(self, seed, target):
        ext = build_extended_network(
            diamond_network(top_capacity=3.0, bottom_capacity=3.0,
                            source_capacity=100.0, max_rate=30.0)
        )
        routing = random_routing(ext, seed)
        shed = emergency_shed(ext, routing, utilization_target=target)
        report = feasibility_report(ext, shed)
        assert report.max_utilization <= target * (1 + 1e-6) + 1e-9
        validate_routing(ext, shed)


class TestUsageMonotonicity:
    @given(seed=seeds(), bump=st.floats(0.01, 0.5))
    def test_admitting_more_never_reduces_usage(self, seed, bump):
        """Shifting dummy mass from the difference link to the input link
        weakly increases resource usage at every node."""
        ext = named_extended_network("diamond")
        routing = random_routing(ext, seed)
        view = ext.commodities[0]
        phi_in = routing.phi[0, view.input_edge]
        room = 1.0 - phi_in
        more = routing.copy()
        more.phi[0, view.input_edge] = phi_in + bump * room
        more.phi[0, view.difference_edge] = 1.0 - (phi_in + bump * room)
        __, base_usage = resource_usage(ext, routing)
        __, more_usage = resource_usage(ext, more)
        finite = np.isfinite(ext.capacity)
        assert np.all(more_usage[finite] >= base_usage[finite] - 1e-9)


class TestSeedDeterminism:
    """``random_stream_network`` is a pure function of (spec, seed)."""

    @given(seed=st.integers(0, 10**4))
    def test_same_seed_same_network(self, seed):
        spec = small_random_spec()
        a = random_stream_network(spec, seed=seed)
        b = random_stream_network(spec, seed=seed)
        assert network_to_dict(a) == network_to_dict(b)

    def test_different_seeds_differ(self):
        spec = small_random_spec()
        docs = {
            str(network_to_dict(random_stream_network(spec, seed=s)))
            for s in range(8)
        }
        assert len(docs) > 1
