"""Cross-module property-based tests (hypothesis).

These encode the structural invariants the whole system rests on, checked
over randomised routings, workloads, and events rather than hand-picked
cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import CostModel, evaluate_cost
from repro.core.routing import (
    admitted_rates,
    commodity_edge_flows,
    feasibility_report,
    resource_usage,
    solve_traffic,
    uniform_routing,
    validate_routing,
)
from repro.online import LinkFailure, apply_event, emergency_shed, remap_routing
from repro.workloads import diamond_network, figure1_network

EXTS = {}


def get_ext(name):
    if name not in EXTS:
        factory = {"diamond": diamond_network, "figure1": figure1_network}[name]
        EXTS[name] = build_extended_network(factory())
    return EXTS[name]


def random_routing(ext, seed, interior=True):
    rng = np.random.default_rng(seed)
    routing = uniform_routing(ext)
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            weights = rng.random(len(out)) + (0.05 if interior else 0.0)
            if weights.sum() == 0:
                weights[0] = 1.0
            routing.phi[j, out] = weights / weights.sum()
    validate_routing(ext, routing)
    return routing


class TestFlowConservation:
    """Eq. (7): gain-aware conservation at every interior node, for any phi."""

    @given(seed=st.integers(0, 10**6), name=st.sampled_from(["diamond", "figure1"]))
    @settings(max_examples=60, deadline=None)
    def test_conservation_holds(self, seed, name):
        ext = get_ext(name)
        routing = random_routing(ext, seed)
        traffic = solve_traffic(ext, routing)
        flows = commodity_edge_flows(ext, routing, traffic)
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                outflow = sum(
                    flows[j, e] for e in ext.commodity_out_edges[j][node]
                )
                inflow = sum(
                    ext.gain[j, e] * flows[j, e]
                    for e in ext.in_edges[node]
                    if ext.allowed[j, e]
                )
                external = view.max_rate if node == view.dummy else 0.0
                assert outflow == pytest.approx(inflow + external, abs=1e-9)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_traffic_scales_linearly_with_phi_split(self, seed):
        """Admitted rate equals lambda times the input fraction."""
        ext = get_ext("figure1")
        routing = random_routing(ext, seed)
        admitted = admitted_rates(ext, routing)
        for view in ext.commodities:
            expected = view.max_rate * routing.phi[view.index, view.input_edge]
            assert admitted[view.index] == pytest.approx(expected, abs=1e-9)


class TestObjectiveIdentities:
    @given(seed=st.integers(0, 10**6), eps=st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_utility_plus_loss_is_offered_value(self, seed, eps):
        ext = get_ext("figure1")
        routing = random_routing(ext, seed)
        breakdown = evaluate_cost(ext, routing, CostModel(eps=eps))
        offered = sum(
            float(v.utility.value(v.max_rate)) for v in ext.commodities
        )
        assert breakdown.utility + breakdown.utility_loss == pytest.approx(
            offered, rel=1e-9
        )

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_cost_nonnegative_and_finite(self, seed):
        ext = get_ext("diamond")
        routing = random_routing(ext, seed)
        breakdown = evaluate_cost(ext, routing, CostModel(eps=0.2))
        assert np.isfinite(breakdown.total)
        assert breakdown.utility_loss >= -1e-9
        assert breakdown.penalty >= -1e-9


class TestGammaInvariants:
    @given(seed=st.integers(0, 10**6), eta=st.floats(0.001, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_step_preserves_validity_and_boundedness(self, seed, eta):
        ext = get_ext("diamond")
        algo = GradientAlgorithm(ext, GradientConfig(eta=eta))
        routing = random_routing(ext, seed)
        for __ in range(3):
            routing = algo.step(routing)
            validate_routing(ext, routing)
            admitted = admitted_rates(ext, routing)
            assert np.all(admitted <= ext.lam + 1e-9)
            assert np.all(admitted >= -1e-9)


class TestOnlineInvariants:
    @given(
        seed=st.integers(0, 10**6),
        link_index=st.integers(0, 13),
    )
    @settings(max_examples=30, deadline=None)
    def test_remap_after_any_single_link_failure_is_valid(self, seed, link_index):
        network = figure1_network()
        links = sorted(network.physical.links)
        link = links[link_index % len(links)]
        ext = get_ext("figure1")
        routing = random_routing(ext, seed)
        try:
            rebuilt = apply_event(network, LinkFailure(at_iteration=1, link=link))
        except Exception:
            return  # event stranded everything; nothing to check
        new_ext = build_extended_network(rebuilt.network, require_connected=False)
        carried = remap_routing(ext, routing, new_ext)
        validate_routing(new_ext, carried)

    @given(seed=st.integers(0, 10**6), target=st.floats(0.3, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_emergency_shed_meets_any_target(self, seed, target):
        ext = build_extended_network(
            diamond_network(top_capacity=3.0, bottom_capacity=3.0,
                            source_capacity=100.0, max_rate=30.0)
        )
        routing = random_routing(ext, seed)
        shed = emergency_shed(ext, routing, utilization_target=target)
        report = feasibility_report(ext, shed)
        assert report.max_utilization <= target * (1 + 1e-6) + 1e-9
        validate_routing(ext, shed)


class TestUsageMonotonicity:
    @given(seed=st.integers(0, 10**6), bump=st.floats(0.01, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_admitting_more_never_reduces_usage(self, seed, bump):
        """Shifting dummy mass from the difference link to the input link
        weakly increases resource usage at every node."""
        ext = get_ext("diamond")
        routing = random_routing(ext, seed)
        view = ext.commodities[0]
        phi_in = routing.phi[0, view.input_edge]
        room = 1.0 - phi_in
        more = routing.copy()
        more.phi[0, view.input_edge] = phi_in + bump * room
        more.phi[0, view.difference_edge] = 1.0 - (phi_in + bump * room)
        __, base_usage = resource_usage(ext, routing)
        __, more_usage = resource_usage(ext, more)
        finite = np.isfinite(ext.capacity)
        assert np.all(more_usage[finite] >= base_usage[finite] - 1e-9)
