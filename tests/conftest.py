"""Shared fixtures for the test suite, plus the hypothesis profiles.

Property tests run under one of two registered profiles, selected by the
``HYPOTHESIS_PROFILE`` environment variable (CI exports ``ci``):

``dev`` (default)
    20 examples per property, for fast local iteration.
``ci``
    100 examples per property, for the thorough sweep.

Both disable the per-example deadline: a single flow solve on a slow
shared runner can blow a wall-clock budget without anything being wrong.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import build_extended_network

settings.register_profile("ci", max_examples=100, deadline=None)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
from repro.core.gradient import GradientConfig
from repro.core.marginals import CostModel
from repro.scenarios import (
    diamond_network,
    figure1_network,
    paper_figure4_network,
    random_stream_network,
)
from repro.scenarios import RandomNetworkSpec


@pytest.fixture(scope="session")
def diamond_ext():
    """Extended network of the 4-node diamond (hand-checkable optimum of 20)."""
    return build_extended_network(diamond_network())


@pytest.fixture(scope="session")
def figure1_ext():
    """Extended network of the paper's Figure-1 example."""
    return build_extended_network(figure1_network())


@pytest.fixture(scope="session")
def small_random_ext():
    """A small random instance (fast for marginal/optimality checks)."""
    spec = RandomNetworkSpec(
        num_nodes=14,
        num_commodities=2,
        depth_range=(3, 3),
        layer_width_range=(2, 3),
    )
    return build_extended_network(random_stream_network(spec, seed=3))


@pytest.fixture(scope="session")
def figure4_ext():
    """The paper's Figure-4 workload (40 nodes, 3 commodities)."""
    return build_extended_network(paper_figure4_network(seed=7))


@pytest.fixture
def cost_model():
    return CostModel(eps=0.2)


@pytest.fixture
def fast_config():
    return GradientConfig(eta=0.05, max_iterations=2000)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
