"""The validation subsystem: invariant checks, fault injection, the oracle.

Three angles, mirroring docs/validation.md:

* clean solutions from every method pass the whole catalog (and the
  duality-gap certificate is ~0 at the LP optimum);
* every injected fault class is caught by exactly the intended check
  (the matrix in :mod:`repro.validate.faults`);
* the wiring is free when off (``validate=False`` adds no flow solves,
  pinned the same way ``tests/test_obs.py`` pins instrumentation) and
  read-only when on (bit-identical iterates).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    GradientAlgorithm,
    GradientConfig,
    Instrumentation,
    ValidationError,
    build_extended_network,
    solve,
)
from repro.core.optimal import solve_lp
from repro.core.result import OptimalResult
from repro.io import result_to_dict
from repro.validate import (
    CHECK_NAMES,
    FAULT_NAMES,
    AlgorithmSpec,
    DifferentialOracle,
    InvariantChecker,
    Tolerances,
    attach_validation,
    calibrated_gradient_config,
    inject_fault,
    run_self_test,
)
from repro.validate.strategies import random_extended_network
from repro.scenarios import diamond_network, figure1_network

FAST_GRADIENT = GradientConfig(eta=0.04, max_iterations=1500, record_every=50)


# -- clean solutions pass the catalog ---------------------------------------------


class TestCleanSolutionsPass:
    @pytest.mark.parametrize("make_net", [figure1_network, diamond_network])
    def test_gradient_passes_all_checks(self, make_net):
        ext = build_extended_network(make_net())
        result = GradientAlgorithm(ext, FAST_GRADIENT).run()
        report = InvariantChecker(ext).check_result(result)
        assert report.passed, report.summary()
        # every named check was exercised (no silent skips besides none)
        assert tuple(c.name for c in report.checks) == CHECK_NAMES
        assert not any(c.skipped for c in report.checks)

    @pytest.mark.parametrize("make_net", [figure1_network, diamond_network])
    def test_lp_passes_with_tight_duality_gap(self, make_net):
        ext = build_extended_network(make_net())
        report = InvariantChecker(ext).check_result(
            OptimalResult(solution=solve_lp(ext))
        )
        assert report.passed, report.summary()
        gap = report.check("duality_gap")
        assert not gap.skipped
        assert gap.residual <= 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_lp_passes_on_random_instances(self, seed):
        ext = random_extended_network(seed)
        report = InvariantChecker(ext).check_result(
            OptimalResult(solution=solve_lp(ext))
        )
        assert report.passed, report.summary()
        assert report.check("duality_gap").residual <= 1e-6

    def test_backpressure_flow_checks_skip_but_rest_run(self, figure1_ext):
        from repro.core.backpressure import BackpressureAlgorithm, BackpressureConfig

        result = BackpressureAlgorithm(
            figure1_ext, BackpressureConfig(max_iterations=2000, record_every=200)
        ).run()
        report = InvariantChecker(figure1_ext).check_result(result)
        assert report.passed, report.summary()
        # no routing state: flow-level checks skip, rate-level checks run
        for name in ("routing", "conservation", "capacity", "dummy"):
            assert report.check(name).skipped
        for name in ("admission", "monotonicity"):
            assert not report.check(name).skipped


# -- fault injection: caught, and caught by the right check -----------------------


@pytest.fixture(scope="module")
def self_test_records():
    return {r.fault: r for r in run_self_test()}


class TestFaultMatrix:
    def test_covers_every_fault_class(self, self_test_records):
        assert set(self_test_records) == set(FAULT_NAMES)

    @pytest.mark.parametrize("fault", FAULT_NAMES)
    def test_fault_is_caught(self, self_test_records, fault):
        record = self_test_records[fault]
        assert record.caught, (
            f"{fault}: expected {record.expected_check}, flagged {record.flagged}"
        )

    @pytest.mark.parametrize("fault", FAULT_NAMES)
    def test_fault_is_isolated(self, self_test_records, fault):
        """Only the intended check fires: the catalog partition holds."""
        record = self_test_records[fault]
        assert record.isolated, (
            f"{fault}: flagged {record.flagged}, wanted only "
            f"({record.expected_check},)"
        )

    def test_inject_fault_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="unknown fault"):
            inject_fault("nope")


# -- strict mode ------------------------------------------------------------------


class TestStrictMode:
    def test_strict_raises_on_faulty_result(self):
        ext, result, expected = inject_fault("over_admission")
        with pytest.raises(ValidationError, match=expected):
            attach_validation(result, ext, mode="strict")
        # the report is still attached for post-mortem inspection
        assert result.validation is not None
        assert expected in result.validation.failed_names

    def test_strict_is_silent_on_clean_solve(self):
        result = solve(
            diamond_network(), method="optimal", full_result=True, validate="strict"
        )
        assert result.validation.passed

    def test_invalid_mode_rejected(self):
        ext, result, _ = inject_fault("over_admission")
        with pytest.raises(ValueError, match="validate="):
            attach_validation(result, ext, mode="loud")


# -- wiring through solve() and serialization -------------------------------------


class TestSolveWiring:
    def test_default_attaches_nothing(self, figure1_ext):
        result = solve(figure1_network(), config=FAST_GRADIENT, full_result=True)
        assert result.validation is None
        assert "validation" not in result_to_dict(result)

    @pytest.mark.parametrize("method", ["gradient", "optimal", "backpressure"])
    def test_validate_true_attaches_report(self, method):
        kwargs = {}
        if method == "gradient":
            kwargs["config"] = FAST_GRADIENT
        elif method == "backpressure":
            from repro import BackpressureConfig

            kwargs["config"] = BackpressureConfig(
                max_iterations=2000, record_every=200
            )
        result = solve(
            figure1_network(), method=method, full_result=True,
            validate=True, **kwargs
        )
        assert result.validation is not None
        assert result.validation.passed, result.validation.summary()
        assert result.solution.extras["validation"] is result.validation

    def test_report_round_trips_through_result_to_dict(self):
        result = solve(
            diamond_network(), method="optimal", full_result=True, validate=True
        )
        doc = result_to_dict(result, model="diamond")
        payload = json.loads(json.dumps(doc))  # must be JSON-safe end to end
        report = payload["validation"]
        assert report["schema"] == "repro.validation/1"
        assert report["passed"] is True
        assert report["method"] == result.solution.method
        assert [c["name"] for c in report["checks"]] == list(CHECK_NAMES)
        for check in report["checks"]:
            # residual/tolerance are floats or null (non-finite mapped out)
            for key in ("residual", "tolerance"):
                assert check[key] is None or isinstance(check[key], float)

    def test_validate_false_adds_no_flow_solves(self, monkeypatch, figure1_ext):
        import repro.core.context as context_mod
        import repro.core.routing as routing_mod
        import repro.core.solution as solution_mod

        calls = {"n": 0}
        real = routing_mod.solve_traffic

        def counting(ext, routing):
            calls["n"] += 1
            return real(ext, routing)

        monkeypatch.setattr(context_mod, "solve_traffic", counting)
        monkeypatch.setattr(solution_mod, "solve_traffic", counting)
        monkeypatch.setattr(routing_mod, "solve_traffic", counting)

        config = GradientConfig(eta=0.04, max_iterations=25, record_every=5)
        GradientAlgorithm(figure1_ext, config).run()
        bare = calls["n"]

        calls["n"] = 0
        GradientAlgorithm(figure1_ext, config).run(validate=False)
        assert calls["n"] == bare

    def test_validation_is_read_only(self, figure1_ext):
        """validate=True audits claimed quantities; the iterates are untouched."""
        config = GradientConfig(eta=0.04, max_iterations=200, record_every=20)
        bare = GradientAlgorithm(figure1_ext, config).run()
        audited = GradientAlgorithm(figure1_ext, config).run(validate=True)
        assert np.array_equal(
            bare.solution.routing.phi, audited.solution.routing.phi
        )
        assert bare.solution.utility == audited.solution.utility


# -- metrics counters -------------------------------------------------------------


class TestCounters:
    def test_checks_run_and_failed_counters(self):
        inst = Instrumentation()
        result = solve(
            diamond_network(), method="optimal", full_result=True,
            validate=True, instrumentation=inst,
        )
        assert result.validation.passed
        counters = inst.registry.as_dict()["counters"]
        assert counters["validate.checks_run"] > 0
        assert counters["validate.checks_failed"] == 0

    def test_failed_counter_increments_on_fault(self):
        ext, result, _ = inject_fault("over_admission")
        inst = Instrumentation()
        attach_validation(result, ext, mode=True, instrumentation=inst)
        counters = inst.registry.as_dict()["counters"]
        assert counters["validate.checks_failed"] >= 1


# -- checker configuration --------------------------------------------------------


class TestCheckerConfig:
    def test_unknown_check_name_rejected(self, diamond_ext):
        with pytest.raises(ValueError, match="unknown check"):
            InvariantChecker(diamond_ext, checks=["conservation", "vibes"])

    def test_check_subset_runs_only_those(self, diamond_ext):
        result = solve(diamond_network(), method="optimal", full_result=True)
        checker = InvariantChecker(diamond_ext, checks=["admission", "capacity"])
        report = checker.check_result(result)
        assert tuple(c.name for c in report.checks) == ("admission", "capacity")

    def test_duality_gap_informational_for_iterative_methods(self):
        tol = Tolerances()
        assert tol.for_check("duality_gap", "lp") == tol.duality_gap
        assert tol.for_check("duality_gap", "gradient") == float("inf")

    def test_report_check_lookup_rejects_unknown(self, diamond_ext):
        result = solve(diamond_network(), method="optimal", full_result=True)
        report = InvariantChecker(diamond_ext).check_result(result)
        with pytest.raises(KeyError):
            report.check("vibes")


# -- the differential oracle ------------------------------------------------------


class TestDifferentialOracle:
    def test_gradient_agrees_with_optimal(self):
        report = DifferentialOracle().compare(
            diamond_network(),
            AlgorithmSpec(
                method="gradient",
                config=calibrated_gradient_config(max_iterations=1500),
            ),
            AlgorithmSpec(method="optimal"),
        )
        assert report.passed, report.summary()
        assert report.utility_rel_diff <= 0.1

    def test_serial_vs_parallel_bit_identical(self):
        report = DifferentialOracle().compare_backends(
            diamond_network(),
            workers=2,
            config=calibrated_gradient_config(max_iterations=300),
        )
        assert report.passed, report.summary()
        assert report.bit_identical
        assert report.utility_rel_diff == 0.0
        assert report.admitted_max_diff == 0.0

    def test_oracle_report_serializes(self):
        report = DifferentialOracle().compare_backends(
            diamond_network(),
            workers=2,
            config=calibrated_gradient_config(max_iterations=100),
        )
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == "repro.oracle/1"
        assert doc["passed"] is True
