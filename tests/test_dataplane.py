"""Tests for the fluid data-plane simulator."""

from __future__ import annotations

import pytest

from repro import AdmissionController, build_extended_network
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.dataplane import FluidDataPlane
from repro.exceptions import SimulationError
from repro.scenarios import (
    constant_trace,
    diamond_network,
    figure1_network,
    onoff_trace,
    tandem_network,
)


@pytest.fixture(scope="module")
def diamond_solved():
    ext = build_extended_network(diamond_network())
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.05, max_iterations=3000)
    ).run()
    return ext, result.solution


class TestMechanics:
    def test_rejects_bad_inputs(self, diamond_solved):
        ext, solution = diamond_solved
        plane = FluidDataPlane(ext, solution.routing)
        with pytest.raises(SimulationError):
            plane.run({})
        with pytest.raises(SimulationError):
            plane.run({"nope": [1.0]})
        with pytest.raises(SimulationError):
            plane.run({"diamond": [-1.0]})
        with pytest.raises(SimulationError):
            FluidDataPlane(ext, solution.routing, slot_length=0.0)

    def test_mass_conservation(self, diamond_solved):
        """Offered = delivered + still queued (source units; no losses)."""
        ext, solution = diamond_solved
        plane = FluidDataPlane(ext, solution.routing)
        rate = float(solution.admitted[0])
        result = plane.run({"diamond": constant_trace(rate, 400)})
        # convert the remaining queue back to source units via potentials
        queued_src = 0.0
        # (single commodity: inspect final per-commodity queue directly)
        # final_queue_by_commodity is in node-local units; on the diamond all
        # potentials are 1, so the comparison is exact.
        queued_src = result.final_queue_by_commodity["diamond"]
        assert result.delivered["diamond"] + queued_src == pytest.approx(
            result.offered["diamond"], rel=1e-9
        )

    def test_gain_scaling_delivery_in_source_units(self):
        """A 2x-expanding tandem must deliver in *source* units, not wire units."""
        net = tandem_network(depth=3, gain=2.0, node_capacity=1000.0,
                             bandwidth=1000.0, max_rate=10.0)
        ext = build_extended_network(net)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=2000)
        ).run()
        plane = FluidDataPlane(ext, result.solution.routing)
        outcome = plane.run({"tandem": constant_trace(5.0, 200)})
        assert outcome.delivered_rates["tandem"] == pytest.approx(5.0, rel=0.05)


class TestStability:
    def test_stable_at_admitted_rates(self, diamond_solved):
        """The paper's criterion: injecting at a_j keeps queues bounded and
        delivers at a_j in the long run."""
        ext, solution = diamond_solved
        plane = FluidDataPlane(ext, solution.routing)
        rate = float(solution.admitted[0])
        result = plane.run({"diamond": constant_trace(rate, 2000)})
        assert result.is_stable()
        assert result.delivered_rates["diamond"] == pytest.approx(rate, rel=0.02)

    def test_unstable_beyond_capacity(self, diamond_solved):
        """Injecting well beyond the admitted rate grows queues linearly."""
        ext, solution = diamond_solved
        plane = FluidDataPlane(ext, solution.routing)
        rate = float(solution.admitted[0])
        result = plane.run({"diamond": constant_trace(2.5 * rate, 2000)})
        assert not result.is_stable()
        assert result.queue_growth_rate() > 0
        # delivery saturates near the admitted rate despite the overload
        assert result.delivered_rates["diamond"] <= 1.2 * rate

    def test_admission_controller_restores_stability(self, diamond_solved):
        """Shaped bursty traffic through the token bucket stays stable even
        when its raw peak far exceeds the admitted rate."""
        ext, solution = diamond_solved
        controller = AdmissionController(solution, burst_seconds=2.0)
        rate = float(solution.admitted[0])
        raw = onoff_trace(peak_rate=4.0 * rate, num_slots=2000,
                          on_probability=0.5, seed=3)
        shaped = controller.shape("diamond", raw)
        plane = FluidDataPlane(ext, solution.routing)
        unshaped_run = plane.run({"diamond": raw})
        shaped_run = plane.run({"diamond": shaped.admitted})
        assert shaped_run.is_stable(growth_ratio_tolerance=0.2)
        assert shaped_run.queue_growth_rate() < unshaped_run.queue_growth_rate()

    def test_multicommodity_stability(self):
        net = figure1_network()
        ext = build_extended_network(net)
        solution = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=3000)
        ).run().solution
        plane = FluidDataPlane(ext, solution.routing)
        traces = {
            view.name: constant_trace(float(solution.admitted[view.index]), 1500)
            for view in ext.commodities
        }
        result = plane.run(traces)
        assert result.is_stable()
        for view in ext.commodities:
            assert result.delivered_rates[view.name] == pytest.approx(
                float(solution.admitted[view.index]), rel=0.03
            )
