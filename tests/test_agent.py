"""Direct unit tests for the node agent (repro.simulation.agent).

test_simulation.py pins the agent's protocol behaviour end to end
(bit-identity with the synchronous engine); these tests pin the
node-local pieces in isolation: port wiring and resets, routing
import/export, the eq. (11) link-cost derivative branches, and the
``PORT_CLS`` extension hook the async agent builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core import GradientConfig
from repro.exceptions import ProtocolError
from repro.simulation import DistributedGradientRun, NodeAgent
from repro.simulation.agent import CommodityPort
from repro.simulation.messages import Message, RoutingSignalMessage
from repro.validate.strategies import named_extended_network, random_routing


def _run(name="figure1", **cfg):
    ext = named_extended_network(name)
    config = GradientConfig(max_iterations=5, tolerance=0.0, **cfg)
    return DistributedGradientRun(ext, config)


def _agent_with(run, predicate):
    for agent in run.agents:
        if predicate(agent):
            return agent
    raise AssertionError("no agent matches the predicate")


class TestPortWiring:
    def test_ports_only_for_carried_commodities(self):
        run = _run()
        ext = run.ext
        for agent in run.agents:
            for j, port in agent.ports.items():
                assert agent.node in ext.commodities[j].node_indices
                assert port.commodity == j
                for e, head in zip(port.out_edges, port.out_heads):
                    assert int(ext.edge_head[e]) == head

    def test_dummy_port_carries_rate_and_difference_edge(self):
        run = _run()
        ext = run.ext
        for view in ext.commodities:
            agent = run.agents[view.dummy]
            port = agent.ports[view.index]
            assert port.is_dummy
            assert port.max_rate == view.max_rate
            assert port.difference_edge == view.difference_edge

    def test_reset_marginal_phase_clears_scratch(self):
        port = CommodityPort(commodity=0, is_sink=False, is_dummy=False,
                             max_rate=0.0)
        port.received_dadr[3] = 1.0
        port.received_tag[3] = True
        port.delta[7] = 0.5
        port.dadr, port.tag = 2.0, True
        port.reset_marginal_phase()
        assert not port.received_dadr and not port.received_tag
        assert not port.delta
        assert port.dadr == 0.0 and port.tag is False

    def test_reset_forecast_phase_clears_counters(self):
        port = CommodityPort(commodity=0, is_sink=False, is_dummy=False,
                             max_rate=0.0)
        port.signals_received = 2
        port.active_upstreams = 1
        port.forecasts_received = 1
        port.inflow = 3.5
        port.forecast_done = True
        port.reset_forecast_phase()
        assert port.signals_received == 0
        assert port.active_upstreams == 0
        assert port.forecasts_received == 0
        assert port.inflow == 0.0
        assert port.forecast_done is False


class TestRoutingImportExport:
    def test_round_trip_preserves_out_edge_rows(self):
        run = _run()
        ext = run.ext
        routing = random_routing(ext, seed=4)
        run.load_routing(routing)
        exported = run.export_routing()
        np.testing.assert_allclose(exported.phi, routing.phi)

    def test_load_only_touches_own_out_edges(self):
        run = _run()
        ext = run.ext
        routing = random_routing(ext, seed=4)
        agent = run.agents[0]
        agent.load_routing(routing.phi)
        for j, row in agent.phi.items():
            own = set(agent.ports[j].out_edges)
            for e in range(ext.num_edges):
                expected = routing.phi[j, e] if e in own else 0.0
                assert row[e] == expected


class TestLinkCostDerivative:
    def test_difference_edge_uses_the_utility_derivative(self):
        run = _run()
        ext = run.ext
        view = ext.commodities[0]
        agent = run.agents[view.dummy]
        port = agent.ports[0]
        edge = port.difference_edge
        agent.phi[0][edge] = 0.25
        port.traffic = view.max_rate
        shed = 0.25 * port.traffic
        expected = view.utility.derivative(max(view.max_rate - shed, 0.0))
        assert agent._link_cost_derivative(port, edge) == pytest.approx(expected)

    def test_infinite_capacity_means_free_transport(self):
        # the dummy source is uncapacitated: its *non*-difference out-edge
        # (the edge into the real source) costs nothing at the margin
        run = _run()
        view = run.ext.commodities[0]
        agent = run.agents[view.dummy]
        assert not np.isfinite(agent.capacity)
        port = agent.ports[0]
        edge = next(e for e in port.out_edges if e != port.difference_edge)
        assert agent._link_cost_derivative(port, edge) == 0.0

    def test_finite_capacity_uses_the_penalty_derivative(self):
        run = _run()
        agent = _agent_with(
            run, lambda a: np.isfinite(a.capacity) and any(
                not p.is_sink and p.difference_edge is None and p.out_edges
                for p in a.ports.values()
            )
        )
        port = next(
            p for p in agent.ports.values()
            if not p.is_sink and p.difference_edge is None and p.out_edges
        )
        agent.usage = 0.5 * agent.capacity
        model = run.config.cost_model
        expected = model.eps * model.penalty.derivative(
            agent.usage, agent.capacity
        )
        assert agent._link_cost_derivative(
            port, port.out_edges[0]
        ) == pytest.approx(expected)


class TestProtocolGuards:
    def test_non_sink_port_without_out_edges_rejected(self):
        run = _run()
        agent = _agent_with(
            run,
            lambda a: any(not p.is_sink and p.out_edges
                          for p in a.ports.values()),
        )
        port = next(
            p for p in agent.ports.values() if not p.is_sink and p.out_edges
        )
        port.out_edges = []
        port.out_heads = []
        with pytest.raises(ProtocolError, match="no out-edges"):
            agent.begin_marginal_phase(run.engine)

    def test_routing_signal_from_non_upstream_rejected(self):
        run = _run()
        agent = _agent_with(
            run, lambda a: any(p.in_tails for p in a.ports.values())
        )
        j = next(j for j, p in agent.ports.items() if p.in_tails)
        stranger = max(agent.ports[j].in_tails) + 1000
        with pytest.raises(ProtocolError, match="non-upstream"):
            agent.on_message(
                RoutingSignalMessage(sender=stranger, commodity=j, active=True),
                run.engine,
            )

    def test_unknown_message_type_rejected(self):
        @dataclass(frozen=True)
        class GossipMessage(Message):
            rumor: str = ""

        run = _run()
        agent = run.agents[0]
        j = next(iter(agent.ports))
        with pytest.raises(ProtocolError, match="unknown message type"):
            agent.on_message(
                GossipMessage(sender=0, commodity=j, rumor="?"), run.engine
            )


class TestPortClassHook:
    def test_subclass_port_type_is_used_for_every_port(self):
        @dataclass
        class StampedPort(CommodityPort):
            stamps: dict = field(default_factory=dict)

        class StampedAgent(NodeAgent):
            PORT_CLS = StampedPort

        ext = named_extended_network("figure1")
        cfg = GradientConfig()
        agent = StampedAgent(
            ext, 0, cost_model=cfg.cost_model, eta=cfg.eta,
            traffic_tol=cfg.traffic_tol,
        )
        assert agent.ports  # node 0 carries at least one commodity
        assert all(isinstance(p, StampedPort) for p in agent.ports.values())
        assert all(p.stamps == {} for p in agent.ports.values())
