"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.obs import (
    NULL_INSTRUMENTATION,
    NULL_SPAN,
    EventLog,
    Instrumentation,
    MetricsRegistry,
    chrome_trace,
    metrics_document,
    write_chrome_trace,
    write_metrics_json,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("msgs").inc()
        reg.counter("msgs").inc(4)
        assert reg.counter("msgs").value == 5.0

    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("msgs").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        assert reg.gauge("u").value is None
        reg.gauge("u").set(1.0)
        reg.gauge("u").set(7.5)
        assert reg.gauge("u").value == 7.5

    def test_histogram_summary_and_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["p50"] == 3.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 5.0

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").summary() == {"count": 0}
        with pytest.raises(ValueError):
            reg.histogram("empty").percentile(50)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_as_dict_sections_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(0.5)
        doc = reg.as_dict()
        assert list(doc) == ["counters", "gauges", "histograms"]
        assert list(doc["counters"]) == ["a", "b"]
        assert doc["gauges"]["g"] == 1.0
        assert doc["histograms"]["h"]["count"] == 1


class TestEventLog:
    def test_add_and_filter(self):
        log = EventLog()
        log.add("phase", "gamma", ts=0.1, dur=0.05)
        log.add("iteration", "iteration", ts=0.2, iteration=3)
        assert len(log) == 2
        phases = log.of_kind("phase")
        assert len(phases) == 1 and phases[0].name == "gamma"
        dicts = log.as_dicts()
        assert dicts[1]["data"]["iteration"] == 3


class TestInstrumentation:
    def test_phase_span_feeds_event_and_histogram(self):
        inst = Instrumentation()
        with inst.phase("gamma", iteration=1):
            pass
        events = inst.events.of_kind("phase")
        assert len(events) == 1
        assert events[0].name == "gamma" and events[0].dur >= 0.0
        assert inst.registry.histogram("phase.gamma.seconds").count == 1

    def test_messages_accounting(self):
        inst = Instrumentation()
        inst.messages("forecast", messages=10, bytes=240, rounds=3)
        inst.messages("forecast", messages=5, bytes=120, rounds=2)
        reg = inst.registry
        assert reg.counter("messages_total").value == 15
        assert reg.counter("bytes_total").value == 360
        assert reg.counter("messages.forecast").value == 15
        assert reg.histogram("rounds.forecast").samples == [3.0, 2.0]

    def test_metrics_document_schema(self):
        inst = Instrumentation()
        inst.count("flow_solves")
        inst.gauge("final_utility", 12.5)
        with inst.phase("iteration"):
            pass
        doc = metrics_document(inst, model="m.json")
        assert doc["schema"] == "repro.metrics/1"
        assert doc["context"] == {"model": "m.json"}
        assert doc["counters"]["flow_solves"] == 1.0
        assert doc["gauges"]["final_utility"] == 12.5
        assert "events" in doc
        assert "events" not in metrics_document(inst, include_events=False)

    def test_null_instrumentation_is_inert(self):
        inst = NULL_INSTRUMENTATION
        assert inst.enabled is False
        assert inst.phase("x") is NULL_SPAN
        with inst.phase("x"):
            pass
        inst.iteration(1, cost=2.0)
        inst.messages("p", messages=1, bytes=8, rounds=1)
        inst.count("c")
        inst.gauge("g", 1.0)
        inst.event("e")
        assert inst.registry is None and inst.events is None


class TestExporters:
    def test_metrics_json_round_trips(self, tmp_path):
        inst = Instrumentation()
        inst.count("flow_solves", 3)
        inst.gauge("np_scalar", np.float64(1.5))
        path = tmp_path / "m.json"
        write_metrics_json(inst, path, run="test")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.metrics/1"
        assert doc["counters"]["flow_solves"] == 3.0

    def test_chrome_trace_structure(self, tmp_path):
        inst = Instrumentation()
        with inst.phase("flow_solve"):
            pass
        inst.iteration(0, cost=1.0, utility=np.float64(2.0))
        inst.event("milestone", detail="ok")
        doc = chrome_trace(inst)
        assert "traceEvents" in doc
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["name"] == "flow_solve"
        assert slices[0]["dur"] >= 0.0  # microseconds
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        # file form must be parseable JSON (numpy payloads coerced)
        path = tmp_path / "t.json"
        write_chrome_trace(inst, path)
        assert json.loads(path.read_text())["traceEvents"]


class TestOverheadContract:
    """Instrumentation is read-only: same work, same numbers, bit for bit."""

    def _count_solves(self, monkeypatch):
        import repro.core.context as context_mod
        import repro.core.routing as routing_mod
        import repro.core.solution as solution_mod

        calls = {"n": 0}
        real = routing_mod.solve_traffic

        def counting(ext, routing):
            calls["n"] += 1
            return real(ext, routing)

        monkeypatch.setattr(context_mod, "solve_traffic", counting)
        monkeypatch.setattr(solution_mod, "solve_traffic", counting)
        monkeypatch.setattr(routing_mod, "solve_traffic", counting)
        return calls

    def test_no_extra_flow_solves_when_enabled(self, diamond_ext, monkeypatch):
        calls = self._count_solves(monkeypatch)
        config = GradientConfig(
            eta=1e-6, max_iterations=7, tolerance=0.0, patience=10**9
        )
        GradientAlgorithm(diamond_ext, config).run()
        bare = calls["n"]

        calls["n"] = 0
        inst = Instrumentation()
        GradientAlgorithm(diamond_ext, config).run(instrumentation=inst)
        assert calls["n"] == bare
        assert inst.registry.counter("flow_solves").value == bare

    def test_iterates_bit_identical_with_instrumentation(self, diamond_ext):
        config = GradientConfig(eta=0.05, max_iterations=40)
        bare = GradientAlgorithm(diamond_ext, config).run()
        instrumented = GradientAlgorithm(diamond_ext, config).run(
            instrumentation=Instrumentation()
        )
        assert np.array_equal(
            bare.solution.routing.phi, instrumented.solution.routing.phi
        )
        assert bare.solution.utility == instrumented.solution.utility
