"""Tests for the distributed gradient algorithm (synchronous engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import (
    GradientAlgorithm,
    GradientConfig,
    apply_gamma_at_node,
)
from repro.core.marginals import CostModel, evaluate_cost
from repro.core.optimal import arc_flows_to_routing, solve_lp
from repro.core.routing import (
    initial_routing,
    feasibility_report,
    solve_traffic,
    validate_routing,
)
from repro.core.utility import LogUtility
from repro.workloads import diamond_network, figure1_network


class TestConfig:
    def test_rejects_nonpositive_eta(self):
        with pytest.raises(ValueError):
            GradientConfig(eta=0.0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            GradientConfig(max_iterations=0)

    def test_defaults_match_paper(self):
        config = GradientConfig()
        assert config.eta == pytest.approx(0.04)
        assert config.cost_model.eps == pytest.approx(0.2)


class TestGammaKernel:
    def test_preserves_simplex(self, rng):
        phi = np.zeros(6)
        out = [0, 1, 2]
        phi[out] = [0.5, 0.3, 0.2]
        delta = np.array([3.0, 1.0, 2.0, 0, 0, 0])
        apply_gamma_at_node(phi, 10.0, out, delta, None, eta=0.1, traffic_tol=1e-12)
        assert phi[out].sum() == pytest.approx(1.0)
        assert np.all(phi >= 0)

    def test_moves_mass_to_cheapest_edge(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [1 / 3, 1 / 3, 1 / 3]
        delta = np.array([5.0, 1.0, 3.0])
        apply_gamma_at_node(phi, 1.0, out, delta, None, eta=0.01, traffic_tol=1e-12)
        assert phi[1] > 1 / 3
        assert phi[0] < 1 / 3
        assert phi[2] < 1 / 3
        # more expensive edges shrink more (eq. (16): Delta proportional to a)
        assert (1 / 3 - phi[0]) > (1 / 3 - phi[2])

    def test_reduction_capped_at_current_fraction(self):
        phi = np.zeros(2)
        out = [0, 1]
        phi[out] = [0.1, 0.9]
        delta = np.array([100.0, 1.0])
        apply_gamma_at_node(phi, 0.01, out, delta, None, eta=10.0, traffic_tol=1e-12)
        assert phi[0] == pytest.approx(0.0)
        assert phi[1] == pytest.approx(1.0)

    def test_idle_node_jumps_to_best(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [0.6, 0.2, 0.2]
        delta = np.array([5.0, 1.0, 3.0])
        apply_gamma_at_node(phi, 0.0, out, delta, None, eta=0.04, traffic_tol=1e-12)
        np.testing.assert_allclose(phi[out], [0.0, 1.0, 0.0])

    def test_blocked_edges_stay_zero(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [0.5, 0.5, 0.0]
        delta = np.array([5.0, 4.0, 0.1])  # blocked edge is 'cheapest'
        blocked = np.array([False, False, True])
        apply_gamma_at_node(phi, 1.0, out, delta, blocked, eta=0.1, traffic_tol=1e-12)
        assert phi[2] == 0.0
        assert phi[1] > 0.5  # mass went to the best *eligible* edge

    def test_small_eta_small_steps(self):
        phi_small = np.zeros(2)
        phi_big = np.zeros(2)
        out = [0, 1]
        for p in (phi_small, phi_big):
            p[out] = [0.5, 0.5]
        delta = np.array([2.0, 1.0])
        apply_gamma_at_node(phi_small, 1.0, out, delta, None, 0.01, 1e-12)
        apply_gamma_at_node(phi_big, 1.0, out, delta, None, 0.2, 1e-12)
        assert (0.5 - phi_small[0]) < (0.5 - phi_big[0])


class TestConvergence:
    def test_diamond_reaches_penalized_optimum(self, diamond_ext):
        result = GradientAlgorithm(
            diamond_ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        lp = solve_lp(diamond_ext)
        assert result.converged
        # the barrier keeps headroom: expect >= 93% of the true optimum
        assert result.solution.utility >= 0.93 * lp.utility
        assert result.solution.utility <= lp.utility + 1e-6

    def test_unconstrained_instance_hits_exact_optimum(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        lp = solve_lp(figure1_ext)
        # figure-1 capacities don't bind; full admission is optimal
        assert result.solution.utility == pytest.approx(lp.utility, rel=1e-6)
        np.testing.assert_allclose(result.solution.admitted, figure1_ext.lam, rtol=1e-6)

    def test_cost_decreases_monotonically_for_small_eta(self, diamond_ext):
        config = GradientConfig(eta=0.01, max_iterations=600)
        result = GradientAlgorithm(diamond_ext, config).run()
        costs = result.costs
        assert np.all(np.diff(costs) <= 1e-9 * np.maximum(1.0, np.abs(costs[:-1])))

    def test_final_routing_is_valid_and_feasible(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=3000)
        ).run()
        validate_routing(figure1_ext, result.solution.routing)
        report = feasibility_report(figure1_ext, result.solution.routing)
        assert report.feasible

    def test_admission_never_exceeds_offered(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=500)
        ).run()
        for record in result.history:
            assert np.all(record.admitted <= figure1_ext.lam * (1 + 1e-9))
            assert np.all(record.admitted >= -1e-9)

    def test_utility_trajectory_reaches_plateau_monotonically(self, diamond_ext):
        result = GradientAlgorithm(
            diamond_ext, GradientConfig(eta=0.02, max_iterations=3000)
        ).run()
        utilities = result.utilities
        # paper: "the total throughput improves monotonically"
        slack = 1e-6 * max(1.0, float(np.max(utilities)))
        assert np.all(np.diff(utilities) >= -slack)

    def test_concave_utility_instance(self):
        net = diamond_network(utility=LogUtility(weight=10.0))
        ext = build_extended_network(net)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        assert result.solution.utility > 0
        assert result.solution.admitted[0] > 0

    def test_warm_start_from_lp_stays_near_optimal(self, diamond_ext):
        lp = solve_lp(diamond_ext, capacity_scale=0.9)
        routing = arc_flows_to_routing(diamond_ext, lp.extras["arc_flows"])
        validate_routing(diamond_ext, routing)
        config = GradientConfig(eta=0.02, max_iterations=800)
        result = GradientAlgorithm(diamond_ext, config).run(routing=routing)
        assert result.solution.utility >= 0.95 * lp.utility

    def test_without_blocking_still_converges_on_dags(self, diamond_ext):
        """Commodity subgraphs are DAGs, so blocking is a safety net, not a
        correctness requirement here."""
        result = GradientAlgorithm(
            diamond_ext,
            GradientConfig(eta=0.05, max_iterations=4000, use_blocking=False),
        ).run()
        lp = solve_lp(diamond_ext)
        assert result.solution.utility >= 0.93 * lp.utility


class TestRunMechanics:
    def test_history_records_and_callback(self, diamond_ext):
        seen = []
        config = GradientConfig(eta=0.05, max_iterations=50, record_every=10)
        GradientAlgorithm(diamond_ext, config).run(
            callback=lambda it, rec: seen.append(it)
        )
        assert seen[0] == 0
        assert all(it % 10 == 0 or it == 50 for it in seen)

    def test_step_returns_new_object(self, diamond_ext):
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05))
        routing = initial_routing(diamond_ext)
        stepped = algo.step(routing)
        assert stepped is not routing
        assert not np.array_equal(stepped.phi, routing.phi)

    def test_first_step_admits_traffic(self, diamond_ext):
        """From the shed-all start, the first Gamma application must start
        admitting (marginal utility 1 beats idle-network congestion ~0)."""
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05))
        stepped = algo.step(initial_routing(diamond_ext))
        view = diamond_ext.commodities[0]
        assert stepped.phi[0, view.input_edge] > 0

    def test_run_respects_max_iterations(self, diamond_ext):
        config = GradientConfig(eta=1e-6, max_iterations=7, tolerance=0.0, patience=10**9)
        result = GradientAlgorithm(diamond_ext, config).run()
        assert result.iterations == 7
        assert not result.converged

    def test_invalid_start_rejected(self, diamond_ext):
        from repro.core.routing import RoutingState
        from repro.exceptions import RoutingError

        bad = RoutingState(np.zeros_like(initial_routing(diamond_ext).phi))
        with pytest.raises(RoutingError):
            GradientAlgorithm(diamond_ext).run(routing=bad)

    def test_optimality_helper(self, diamond_ext):
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05, max_iterations=3000))
        result = algo.run()
        report = algo.optimality(result.solution.routing)
        assert report.sufficient_residual < 1e-3
