"""Tests for the distributed gradient algorithm (synchronous engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_extended_network
from repro.core.gradient import (
    GradientAlgorithm,
    GradientConfig,
    apply_gamma_at_node,
    apply_gamma_batch,
)
from repro.core.optimal import arc_flows_to_routing, solve_lp
from repro.core.routing import (
    initial_routing,
    feasibility_report,
    validate_routing,
)
from repro.core.utility import LogUtility
from repro.scenarios import (
    diamond_network,
    random_stream_network,
)
from repro.scenarios import RandomNetworkSpec


class TestConfig:
    def test_rejects_nonpositive_eta(self):
        with pytest.raises(ValueError):
            GradientConfig(eta=0.0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            GradientConfig(max_iterations=0)

    def test_defaults_match_paper(self):
        config = GradientConfig()
        assert config.eta == pytest.approx(0.04)
        assert config.cost_model.eps == pytest.approx(0.2)


class TestGammaKernel:
    def test_preserves_simplex(self, rng):
        phi = np.zeros(6)
        out = [0, 1, 2]
        phi[out] = [0.5, 0.3, 0.2]
        delta = np.array([3.0, 1.0, 2.0, 0, 0, 0])
        apply_gamma_at_node(phi, 10.0, out, delta, None, eta=0.1, traffic_tol=1e-12)
        assert phi[out].sum() == pytest.approx(1.0)
        assert np.all(phi >= 0)

    def test_moves_mass_to_cheapest_edge(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [1 / 3, 1 / 3, 1 / 3]
        delta = np.array([5.0, 1.0, 3.0])
        apply_gamma_at_node(phi, 1.0, out, delta, None, eta=0.01, traffic_tol=1e-12)
        assert phi[1] > 1 / 3
        assert phi[0] < 1 / 3
        assert phi[2] < 1 / 3
        # more expensive edges shrink more (eq. (16): Delta proportional to a)
        assert (1 / 3 - phi[0]) > (1 / 3 - phi[2])

    def test_reduction_capped_at_current_fraction(self):
        phi = np.zeros(2)
        out = [0, 1]
        phi[out] = [0.1, 0.9]
        delta = np.array([100.0, 1.0])
        apply_gamma_at_node(phi, 0.01, out, delta, None, eta=10.0, traffic_tol=1e-12)
        assert phi[0] == pytest.approx(0.0)
        assert phi[1] == pytest.approx(1.0)

    def test_idle_node_jumps_to_best(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [0.6, 0.2, 0.2]
        delta = np.array([5.0, 1.0, 3.0])
        apply_gamma_at_node(phi, 0.0, out, delta, None, eta=0.04, traffic_tol=1e-12)
        np.testing.assert_allclose(phi[out], [0.0, 1.0, 0.0])

    def test_blocked_edges_stay_zero(self):
        phi = np.zeros(3)
        out = [0, 1, 2]
        phi[out] = [0.5, 0.5, 0.0]
        delta = np.array([5.0, 4.0, 0.1])  # blocked edge is 'cheapest'
        blocked = np.array([False, False, True])
        apply_gamma_at_node(phi, 1.0, out, delta, blocked, eta=0.1, traffic_tol=1e-12)
        assert phi[2] == 0.0
        assert phi[1] > 0.5  # mass went to the best *eligible* edge

    def test_small_eta_small_steps(self):
        phi_small = np.zeros(2)
        phi_big = np.zeros(2)
        out = [0, 1]
        for p in (phi_small, phi_big):
            p[out] = [0.5, 0.5]
        delta = np.array([2.0, 1.0])
        apply_gamma_at_node(phi_small, 1.0, out, delta, None, 0.01, 1e-12)
        apply_gamma_at_node(phi_big, 1.0, out, delta, None, 0.2, 1e-12)
        assert (0.5 - phi_small[0]) < (0.5 - phi_big[0])

    def test_renormalization_excludes_blocked_edges(self):
        """Regression: the drift renormalization used to rescale *all*
        out-edges, including blocked ones.  Eq. (14) freezes blocked edges at
        their current value, so a blocked edge carrying residual mass (e.g.
        a fraction just under the zero tolerance) must come out untouched
        and only the eligible fractions may absorb the correction."""
        residual = 4e-3
        phi = np.zeros(3)
        out = [0, 1, 2]
        # deliberately off the simplex so the renormalization fires
        phi[out] = [0.5, 0.49, residual]
        blocked = np.array([False, False, True])
        delta = np.array([5.0, 1.0, 0.5])
        apply_gamma_at_node(phi, 1.0, out, delta, blocked, eta=0.1, traffic_tol=1e-12)
        assert phi[2] == residual  # frozen bit-exactly
        # eligible mass renormalized to exactly the remaining budget
        assert phi[0] + phi[1] == pytest.approx(1.0 - residual, abs=1e-12)
        assert phi[out].sum() == pytest.approx(1.0, abs=1e-12)


class TestConvergence:
    def test_diamond_reaches_penalized_optimum(self, diamond_ext):
        result = GradientAlgorithm(
            diamond_ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        lp = solve_lp(diamond_ext)
        assert result.converged
        # the barrier keeps headroom: expect >= 93% of the true optimum
        assert result.solution.utility >= 0.93 * lp.utility
        assert result.solution.utility <= lp.utility + 1e-6

    def test_unconstrained_instance_hits_exact_optimum(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        lp = solve_lp(figure1_ext)
        # figure-1 capacities don't bind; full admission is optimal
        assert result.solution.utility == pytest.approx(lp.utility, rel=1e-6)
        np.testing.assert_allclose(result.solution.admitted, figure1_ext.lam, rtol=1e-6)

    def test_cost_decreases_monotonically_for_small_eta(self, diamond_ext):
        config = GradientConfig(eta=0.01, max_iterations=600)
        result = GradientAlgorithm(diamond_ext, config).run()
        costs = result.costs
        assert np.all(np.diff(costs) <= 1e-9 * np.maximum(1.0, np.abs(costs[:-1])))

    def test_final_routing_is_valid_and_feasible(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=3000)
        ).run()
        validate_routing(figure1_ext, result.solution.routing)
        report = feasibility_report(figure1_ext, result.solution.routing)
        assert report.feasible

    def test_admission_never_exceeds_offered(self, figure1_ext):
        result = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, max_iterations=500)
        ).run()
        for record in result.history:
            assert np.all(record.admitted <= figure1_ext.lam * (1 + 1e-9))
            assert np.all(record.admitted >= -1e-9)

    def test_utility_trajectory_reaches_plateau_monotonically(self, diamond_ext):
        result = GradientAlgorithm(
            diamond_ext, GradientConfig(eta=0.02, max_iterations=3000)
        ).run()
        utilities = result.utilities
        # paper: "the total throughput improves monotonically"
        slack = 1e-6 * max(1.0, float(np.max(utilities)))
        assert np.all(np.diff(utilities) >= -slack)

    def test_concave_utility_instance(self):
        net = diamond_network(utility=LogUtility(weight=10.0))
        ext = build_extended_network(net)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=4000)
        ).run()
        assert result.solution.utility > 0
        assert result.solution.admitted[0] > 0

    def test_warm_start_from_lp_stays_near_optimal(self, diamond_ext):
        lp = solve_lp(diamond_ext, capacity_scale=0.9)
        routing = arc_flows_to_routing(diamond_ext, lp.extras["arc_flows"])
        validate_routing(diamond_ext, routing)
        config = GradientConfig(eta=0.02, max_iterations=800)
        result = GradientAlgorithm(diamond_ext, config).run(routing=routing)
        assert result.solution.utility >= 0.95 * lp.utility

    def test_without_blocking_still_converges_on_dags(self, diamond_ext):
        """Commodity subgraphs are DAGs, so blocking is a safety net, not a
        correctness requirement here."""
        result = GradientAlgorithm(
            diamond_ext,
            GradientConfig(eta=0.05, max_iterations=4000, use_blocking=False),
        ).run()
        lp = solve_lp(diamond_ext)
        assert result.solution.utility >= 0.93 * lp.utility


class TestRunMechanics:
    def test_history_records_and_callback(self, diamond_ext):
        seen = []
        config = GradientConfig(eta=0.05, max_iterations=50, record_every=10)
        GradientAlgorithm(diamond_ext, config).run(
            callback=lambda it, rec: seen.append(it)
        )
        assert seen[0] == 0
        assert all(it % 10 == 0 or it == 50 for it in seen)

    def test_step_returns_new_object(self, diamond_ext):
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05))
        routing = initial_routing(diamond_ext)
        stepped = algo.step(routing)
        assert stepped is not routing
        assert not np.array_equal(stepped.phi, routing.phi)

    def test_first_step_admits_traffic(self, diamond_ext):
        """From the shed-all start, the first Gamma application must start
        admitting (marginal utility 1 beats idle-network congestion ~0)."""
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05))
        stepped = algo.step(initial_routing(diamond_ext))
        view = diamond_ext.commodities[0]
        assert stepped.phi[0, view.input_edge] > 0

    def test_run_respects_max_iterations(self, diamond_ext):
        config = GradientConfig(eta=1e-6, max_iterations=7, tolerance=0.0, patience=10**9)
        result = GradientAlgorithm(diamond_ext, config).run()
        assert result.iterations == 7
        assert not result.converged

    def test_invalid_start_rejected(self, diamond_ext):
        from repro.core.routing import RoutingState
        from repro.exceptions import RoutingError

        bad = RoutingState(np.zeros_like(initial_routing(diamond_ext).phi))
        with pytest.raises(RoutingError):
            GradientAlgorithm(diamond_ext).run(routing=bad)

    def test_optimality_helper(self, diamond_ext):
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05, max_iterations=3000))
        result = algo.run()
        report = algo.optimality(result.solution.routing)
        assert report.sufficient_residual < 1e-3

    def test_optimality_accepts_cached_context(self, diamond_ext):
        algo = GradientAlgorithm(diamond_ext, GradientConfig(eta=0.05))
        routing = initial_routing(diamond_ext)
        context = algo.compute_context(routing)
        with_cache = algo.optimality(routing, context=context)
        without = algo.optimality(routing)
        assert with_cache.sufficient_residual == without.sufficient_residual
        assert with_cache.equal_residual == without.equal_residual


class TestVectorizedStep:
    """The batched step must be bit-identical to the scalar reference path
    (which is itself what the message-passing agents execute)."""

    @pytest.mark.parametrize("use_blocking", [True, False])
    def test_step_matches_reference_on_figure1(self, figure1_ext, use_blocking):
        algo = GradientAlgorithm(
            figure1_ext, GradientConfig(eta=0.05, use_blocking=use_blocking)
        )
        fast = initial_routing(figure1_ext)
        slow = initial_routing(figure1_ext)
        for _ in range(120):
            fast = algo.step(fast)
            slow = algo.step_reference(slow)
            assert np.array_equal(fast.phi, slow.phi)

    @pytest.mark.parametrize("net_seed", [2, 7, 11])
    def test_step_matches_reference_on_random_dags(self, net_seed):
        spec = RandomNetworkSpec(
            num_nodes=16,
            num_commodities=2,
            depth_range=(3, 4),
            layer_width_range=(2, 3),
        )
        ext = build_extended_network(random_stream_network(spec, seed=net_seed))
        algo = GradientAlgorithm(ext, GradientConfig(eta=0.04))
        fast = initial_routing(ext)
        slow = initial_routing(ext)
        for _ in range(80):
            fast = algo.step(fast)
            slow = algo.step_reference(slow)
            assert np.array_equal(fast.phi, slow.phi)

    def test_batch_kernel_matches_scalar_kernel(self, figure4_ext):
        """Drive the two kernels directly on identical random inputs."""
        ext = figure4_ext
        rng = np.random.default_rng(42)
        for j in range(ext.num_commodities):
            plan = ext.gamma_plans[j]
            if plan.nodes.size == 0:
                continue
            phi_batch = np.zeros(ext.num_edges)
            for node in plan.nodes:
                out = ext.commodity_out_edges[j][node]
                w = rng.random(len(out)) + 1e-9
                phi_batch[out] = w / w.sum()
            phi_scalar = phi_batch.copy()
            traffic_row = rng.random(ext.num_nodes) * 10.0
            traffic_row[plan.nodes[::3]] = 0.0  # exercise the idle branch
            delta = rng.random(ext.num_edges) * 5.0
            blocked = rng.random(ext.num_edges) < 0.15
            apply_gamma_batch(
                phi_batch, plan, traffic_row, delta, blocked, 0.08, 1e-12
            )
            for node in plan.nodes:
                apply_gamma_at_node(
                    phi_scalar,
                    traffic_row[node],
                    ext.commodity_out_edges[j][node],
                    delta,
                    blocked,
                    0.08,
                    1e-12,
                )
            assert np.array_equal(phi_batch, phi_scalar)


class TestIterationCache:
    def test_flow_balance_solved_once_per_iteration(self, diamond_ext, monkeypatch):
        """The whole point of the IterationContext: an N-iteration run solves
        eq. (3) exactly N + 1 times (once per routing state, including the
        start), no matter how many consumers read the result."""
        import repro.core.context as context_mod
        import repro.core.routing as routing_mod
        import repro.core.solution as solution_mod

        calls = {"n": 0}
        real = routing_mod.solve_traffic

        def counting(ext, routing):
            calls["n"] += 1
            return real(ext, routing)

        monkeypatch.setattr(context_mod, "solve_traffic", counting)
        monkeypatch.setattr(solution_mod, "solve_traffic", counting)
        monkeypatch.setattr(routing_mod, "solve_traffic", counting)

        iterations = 9
        config = GradientConfig(
            eta=1e-6, max_iterations=iterations, tolerance=0.0, patience=10**9
        )
        result = GradientAlgorithm(diamond_ext, config).run()
        assert result.iterations == iterations
        assert calls["n"] == iterations + 1

    def test_record_handles_zero_capacity_node(self):
        """Regression: a zero-capacity node made the trajectory record
        divide by zero (``0/0 -> nan`` silently poisoned
        ``max_utilization``).  Capacities are validated positive at model
        build time but can be zeroed afterwards to model a drained host, so
        mutate a freshly built instance, not a shared fixture."""
        import warnings

        from repro.core.routing import uniform_routing

        ext = build_extended_network(diamond_network())
        algo = GradientAlgorithm(ext, GradientConfig(eta=0.01))
        idle_ctx = algo.compute_context(initial_routing(ext))
        busy_ctx = algo.compute_context(uniform_routing(ext))
        ext.capacity[ext.node_index("top")] = 0.0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            idle_rec = algo._record(0, idle_ctx)
            busy_rec = algo._record(0, busy_ctx)
        # shed-everything routing leaves the drained node idle: no violation
        assert idle_rec.max_utilization == 0.0
        # uniform routing pushes flow through it: infinite, never nan
        assert busy_rec.max_utilization == np.inf
