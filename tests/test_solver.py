"""Tests for the in-house convex-solver substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.solver import (
    BlockSimplexProblem,
    Polytope,
    armijo_step,
    feasible_point,
    frank_wolfe,
    project_rows_to_simplex,
    project_to_simplex,
    projected_gradient,
)


class TestSimplexProjection:
    def test_already_on_simplex_unchanged(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(v), v)

    def test_uniform_shift_invariance(self):
        """Projection of v + c*1 equals projection of v."""
        v = np.array([0.1, -0.4, 2.0, 0.7])
        np.testing.assert_allclose(
            project_to_simplex(v + 3.7), project_to_simplex(v), atol=1e-12
        )

    def test_single_coordinate(self):
        np.testing.assert_allclose(project_to_simplex(np.array([-5.0])), [1.0])

    def test_radius(self):
        out = project_to_simplex(np.array([1.0, 2.0, 3.0]), radius=6.0)
        assert out.sum() == pytest.approx(6.0)
        assert np.all(out >= 0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            project_to_simplex(np.array([]))
        with pytest.raises(ValueError):
            project_to_simplex(np.array([1.0]), radius=0.0)

    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_output_is_on_simplex(self, values):
        out = project_to_simplex(np.array(values))
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(out >= -1e-12)

    @given(
        st.lists(st.floats(-20, 20), min_size=2, max_size=12),
        st.integers(0, 10_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_projection_is_closest_point(self, values, seed):
        """No random simplex point is closer than the projection."""
        v = np.array(values)
        proj = project_to_simplex(v)
        rng = np.random.default_rng(seed)
        candidate = rng.dirichlet(np.ones(v.size))
        assert np.linalg.norm(v - proj) <= np.linalg.norm(v - candidate) + 1e-9

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=15))
    @settings(max_examples=150, deadline=None)
    def test_idempotent(self, values):
        v = np.array(values)
        once = project_to_simplex(v)
        twice = project_to_simplex(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_rows_version_matches_per_row(self, rng):
        matrix = rng.normal(size=(8, 5)) * 3
        rows = project_rows_to_simplex(matrix)
        for i in range(matrix.shape[0]):
            np.testing.assert_allclose(
                rows[i], project_to_simplex(matrix[i]), atol=1e-12
            )

    def test_rows_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            project_rows_to_simplex(np.zeros(3))


class TestArmijo:
    def test_finds_full_step_on_linear(self):
        step = armijo_step(
            objective=lambda x: float(x.sum()),
            point=np.zeros(2),
            direction=np.ones(2),
            directional_derivative=2.0,
        )
        assert step == pytest.approx(1.0)

    def test_backtracks_on_overshoot(self):
        # f(x) = -(x - 0.3)^2: ascent from 0 toward +1 overshoots at step 1
        step = armijo_step(
            objective=lambda x: -float((x[0] - 0.3) ** 2),
            point=np.zeros(1),
            direction=np.ones(1),
            directional_derivative=0.6,
        )
        assert 0 < step < 1.0

    def test_non_ascent_returns_zero(self):
        step = armijo_step(
            objective=lambda x: float(x.sum()),
            point=np.zeros(2),
            direction=np.ones(2),
            directional_derivative=-1.0,
        )
        assert step == 0.0


def box_polytope(n, upper=1.0):
    return Polytope(a_ub=np.eye(n), b_ub=np.full(n, upper))


class TestPolytope:
    def test_linear_maximizer_on_box(self):
        poly = box_polytope(3, upper=2.0)
        x = poly.linear_maximizer(np.array([1.0, -1.0, 0.5]))
        np.testing.assert_allclose(x, [2.0, 0.0, 2.0], atol=1e-9)

    def test_feasible_point_is_feasible(self):
        poly = box_polytope(4)
        assert poly.contains(feasible_point(poly))

    def test_contains_rejects_violations(self):
        poly = box_polytope(2)
        assert not poly.contains(np.array([2.0, 0.0]))
        assert not poly.contains(np.array([-0.1, 0.0]))

    def test_requires_some_constraints(self):
        with pytest.raises(SolverError):
            Polytope()


class TestFrankWolfe:
    def test_concave_quadratic_on_box(self):
        """max -(x-0.3)^2 - (y-0.8)^2 over [0,1]^2 => (0.3, 0.8)."""
        target = np.array([0.3, 0.8])

        result = frank_wolfe(
            value=lambda x: -float(((x - target) ** 2).sum()),
            gradient=lambda x: -2.0 * (x - target),
            polytope=box_polytope(2),
            max_iterations=300,
            gap_tolerance=1e-7,
        )
        np.testing.assert_allclose(result.x, target, atol=1e-4)
        assert result.converged

    def test_corner_solution(self):
        result = frank_wolfe(
            value=lambda x: float(x.sum()),
            gradient=lambda x: np.ones_like(x),
            polytope=box_polytope(3),
            max_iterations=50,
        )
        np.testing.assert_allclose(result.x, np.ones(3), atol=1e-6)

    def test_gap_history_decreases(self):
        target = np.array([0.5, 0.5])
        result = frank_wolfe(
            value=lambda x: -float(((x - target) ** 2).sum()),
            gradient=lambda x: -2.0 * (x - target),
            polytope=box_polytope(2),
            max_iterations=100,
        )
        gaps = np.array(result.gap_history)
        assert gaps[-1] <= gaps[0] + 1e-12

    def test_rejects_infeasible_start(self):
        with pytest.raises(SolverError):
            frank_wolfe(
                value=lambda x: 0.0,
                gradient=lambda x: np.zeros(2),
                polytope=box_polytope(2),
                x0=np.array([5.0, 5.0]),
            )


class TestProjectedGradient:
    def test_minimizes_quadratic_over_simplex(self):
        """min |x - p|^2 over the simplex => the projection of p."""
        p = np.array([0.7, 0.1, -0.3])
        problem = BlockSimplexProblem(
            objective=lambda x: float(((x - p) ** 2).sum()),
            gradient=lambda x: 2.0 * (x - p),
            blocks=[np.arange(3)],
            num_vars=3,
        )
        result = projected_gradient(problem, x0=np.full(3, 1 / 3))
        np.testing.assert_allclose(result.x, project_to_simplex(p), atol=1e-5)
        assert result.converged

    def test_two_independent_blocks(self):
        p = np.array([2.0, 0.0, 0.0, 2.0])
        problem = BlockSimplexProblem(
            objective=lambda x: float(((x - p) ** 2).sum()),
            gradient=lambda x: 2.0 * (x - p),
            blocks=[np.array([0, 1]), np.array([2, 3])],
            num_vars=4,
        )
        result = projected_gradient(problem, x0=np.array([0.5, 0.5, 0.5, 0.5]))
        np.testing.assert_allclose(result.x, [1.0, 0.0, 0.0, 1.0], atol=1e-5)

    def test_value_history_monotone(self):
        p = np.array([0.9, 0.1])
        problem = BlockSimplexProblem(
            objective=lambda x: float(((x - p) ** 2).sum()),
            gradient=lambda x: 2.0 * (x - p),
            blocks=[np.arange(2)],
            num_vars=2,
        )
        result = projected_gradient(problem, x0=np.array([0.5, 0.5]))
        values = np.array(result.value_history)
        assert np.all(np.diff(values) <= 1e-12)
