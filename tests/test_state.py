"""The commodity-major array core: selection, kernels, blocks, bit-identity."""

import numpy as np
import pytest

from repro import GradientConfig, solve
from repro.core.context import build_iteration_context
from repro.core.marginals import CostModel, all_marginal_costs, link_cost_derivative
from repro.core.routing import (
    external_inputs,
    external_inputs_rows,
    resource_usage,
    solve_traffic,
)
from repro.core.state import (
    MODEL_CORE_ENV,
    MODEL_CORE_NAMES,
    ModelState,
    active_core,
    use_array_core,
)
from repro.validate import compare_cores


def converged_routing(ext, iterations=60):
    """A non-trivial routing state: a short gradient run's final iterate."""
    from repro.core.gradient import GradientAlgorithm

    algo = GradientAlgorithm(ext, GradientConfig(max_iterations=iterations))
    return algo.run().solution.routing


class TestCoreSelection:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv(MODEL_CORE_ENV, raising=False)
        assert active_core() == "array"
        assert use_array_core()

    def test_object_opt_out(self, monkeypatch):
        monkeypatch.setenv(MODEL_CORE_ENV, "object")
        assert active_core() == "object"
        assert not use_array_core()

    def test_unknown_core_rejected(self, monkeypatch):
        monkeypatch.setenv(MODEL_CORE_ENV, "vector")
        with pytest.raises(ValueError, match="vector"):
            active_core()

    def test_names_constant(self):
        assert MODEL_CORE_NAMES == ("array", "object")

    def test_state_cached_by_identity(self, figure4_ext):
        assert ModelState.of(figure4_ext) is ModelState.of(figure4_ext)


class TestKernelBitIdentity:
    """Array kernels vs the per-commodity object walks, bit for bit."""

    @pytest.fixture(params=["figure4_ext", "small_random_ext"])
    def ext(self, request):
        return request.getfixturevalue(request.param)

    def _reference(self, ext, monkeypatch):
        """Everything the object core computes for one routing state."""
        routing = converged_routing(ext)
        monkeypatch.setenv(MODEL_CORE_ENV, "object")
        traffic = solve_traffic(ext, routing)
        edge_usage, node_usage = resource_usage(ext, routing, traffic)
        dadf = link_cost_derivative(ext, CostModel(), edge_usage, node_usage)
        dadr = all_marginal_costs(ext, routing, dadf)
        monkeypatch.delenv(MODEL_CORE_ENV)
        return routing, traffic, edge_usage, node_usage, dadf, dadr

    def test_forward_wave(self, ext, monkeypatch):
        routing, traffic, *_ = self._reference(ext, monkeypatch)
        t = external_inputs(ext)
        ModelState.of(ext).solve_traffic_into(t.reshape(-1), routing.phi.reshape(-1))
        assert np.array_equal(t, traffic)

    def test_usage(self, ext, monkeypatch):
        routing, traffic, edge_usage, node_usage, *_ = self._reference(
            ext, monkeypatch
        )
        eu, nu = ModelState.of(ext).resource_usage(
            routing.phi.reshape(-1), traffic.reshape(-1)
        )
        assert np.array_equal(eu, edge_usage)
        assert np.array_equal(nu, node_usage)

    def test_reverse_wave(self, ext, monkeypatch):
        routing, _t, _eu, _nu, dadf, dadr = self._reference(ext, monkeypatch)
        got = ModelState.of(ext).marginal_costs(routing.phi.reshape(-1), dadf)
        assert np.array_equal(got, dadr)

    def test_block_kernels_tile_the_full_sweep(self, ext, monkeypatch):
        routing, traffic, edge_usage, _nu, dadf, dadr = self._reference(
            ext, monkeypatch
        )
        state = ModelState.of(ext)
        J = ext.num_commodities
        phi_flat = routing.phi.reshape(-1)
        # forward, one commodity at a time
        t = external_inputs(ext)
        for j in range(J):
            t[j : j + 1] = external_inputs_rows(ext, j, j + 1)
            state.solve_traffic_block(t.reshape(-1), phi_flat, j, j + 1)
        assert np.array_equal(t, traffic)
        # usage partials in ascending shard order
        mid = max(1, J // 2)
        partial = state.usage_partial_block(
            phi_flat, t.reshape(-1), 0, mid
        ) + state.usage_partial_block(phi_flat, t.reshape(-1), mid, J)
        assert np.array_equal(partial, edge_usage)
        # reverse, per-commodity rows
        got = np.zeros_like(dadr)
        for j in range(J):
            state.marginal_costs_block(got.reshape(-1), phi_flat, dadf, j, j + 1)
        assert np.array_equal(got, dadr)

    def test_context_delta_matches_on_allowed_cells(self, ext, monkeypatch):
        routing = converged_routing(ext)
        ctx_array = build_iteration_context(ext, routing, CostModel())
        monkeypatch.setenv(MODEL_CORE_ENV, "object")
        ctx_object = build_iteration_context(ext, routing, CostModel())
        assert np.array_equal(ctx_array.traffic, ctx_object.traffic)
        assert np.array_equal(ctx_array.edge_usage, ctx_object.edge_usage)
        mask = ext.allowed
        assert np.array_equal(ctx_array.delta[mask], ctx_object.delta[mask])


class TestEndToEndIdentity:
    def test_solve_is_core_independent(self, monkeypatch):
        from repro.scenarios import paper_figure4_network

        net = paper_figure4_network(seed=7)
        cfg = GradientConfig(max_iterations=120)
        monkeypatch.delenv(MODEL_CORE_ENV, raising=False)
        via_array = solve(net, config=cfg, full_result=True)
        monkeypatch.setenv(MODEL_CORE_ENV, "object")
        via_object = solve(net, config=cfg, full_result=True)
        assert np.array_equal(
            via_array.solution.routing.phi, via_object.solution.routing.phi
        )
        assert np.array_equal(via_array.utilities, via_object.utilities)

    def test_compare_cores_oracle(self):
        from repro.scenarios import paper_figure4_network

        report = compare_cores(
            paper_figure4_network(seed=7),
            config=GradientConfig(max_iterations=120),
        )
        assert report.bit_identical
        assert report.passed


class TestSparseInstanceProperties:
    """Array-core bit-identity fuzzed over the sparse large-J family."""

    def test_cores_bit_identical_across_sparse_instances(self):
        import os

        from hypothesis import given, settings

        from repro.core.transform import build_extended_network
        from repro.validate.strategies import random_routing, sparse_instances

        # the 250/400-node tiers ride only under the dev profile (20
        # examples); ci's 100-example sweep stays on the small tiers
        dev = os.environ.get("HYPOTHESIS_PROFILE", "dev") == "dev"
        strategy = sparse_instances(max_tier=None if dev else 3)

        @given(strategy)
        @settings(deadline=None)
        def check(drawn):
            network, seed, _tier = drawn
            ext = build_extended_network(network)
            routing = random_routing(ext, seed)
            ctx_array = build_iteration_context(ext, routing, CostModel())
            os.environ[MODEL_CORE_ENV] = "object"
            try:
                ctx_object = build_iteration_context(ext, routing, CostModel())
            finally:
                del os.environ[MODEL_CORE_ENV]
            assert np.array_equal(ctx_array.traffic, ctx_object.traffic)
            assert np.array_equal(ctx_array.edge_usage, ctx_object.edge_usage)
            assert np.array_equal(ctx_array.dadr, ctx_object.dadr)
            mask = ext.allowed
            assert np.array_equal(ctx_array.delta[mask], ctx_object.delta[mask])

        check()


class TestApiModule:
    def test_curated_surface_importable(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_deprecated_hot_state_warns_and_forwards(self):
        import repro.api as api
        from repro.core.routing import solve_traffic as real

        with pytest.warns(DeprecationWarning, match="solve_traffic"):
            shim = api.solve_traffic
        assert shim is real

    def test_unknown_attribute_raises(self):
        import repro.api as api

        with pytest.raises(AttributeError):
            api.does_not_exist

    def test_dir_lists_deprecated_names(self):
        import repro.api as api

        listing = dir(api)
        assert "ModelState" in listing and "resource_usage" in listing
