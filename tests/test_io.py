"""Tests for JSON model/solution serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import build_extended_network, solve_lp
from repro.core.utility import (
    AlphaFairUtility,
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    SqrtUtility,
)
from repro.exceptions import ModelError
from repro.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
    save_solution,
    solution_to_dict,
    utility_from_spec,
    utility_to_spec,
)
from repro.scenarios import (
    diamond_network,
    figure1_network,
    financial_pipeline_network,
    paper_figure4_network,
    sensor_fusion_network,
)

ALL_NETWORK_FACTORIES = [
    diamond_network,
    figure1_network,
    sensor_fusion_network,
    financial_pipeline_network,
]


class TestUtilitySpecs:
    @pytest.mark.parametrize(
        "utility",
        [
            LinearUtility(weight=2.0),
            LogUtility(weight=3.0, offset=0.5),
            AlphaFairUtility(alpha=1.5, weight=2.0, offset=1.0),
            SqrtUtility(weight=4.0, offset=2.0),
            CappedLinearUtility(cap=8.0, weight=5.0, softness=0.2),
        ],
        ids=lambda u: type(u).__name__,
    )
    def test_roundtrip(self, utility):
        restored = utility_from_spec(utility_to_spec(utility))
        assert type(restored) is type(utility)
        grid = np.linspace(0.0, 20.0, 7)
        np.testing.assert_allclose(restored.value(grid), utility.value(grid))
        np.testing.assert_allclose(
            restored.derivative(grid), utility.derivative(grid)
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            utility_from_spec({"type": "mystery"})

    def test_custom_class_rejected(self):
        class Custom(LinearUtility):
            pass

        # subclass serialises as linear (duck compatible), so use a truly
        # foreign object instead
        class Foreign:
            pass

        with pytest.raises(ModelError):
            utility_to_spec(Foreign())  # type: ignore[arg-type]


class TestNetworkRoundtrip:
    @pytest.mark.parametrize(
        "factory", ALL_NETWORK_FACTORIES, ids=lambda f: f.__name__
    )
    def test_roundtrip_preserves_structure(self, factory):
        original = factory()
        restored = network_from_dict(network_to_dict(original))
        assert restored.physical.num_nodes == original.physical.num_nodes
        assert restored.physical.num_links == original.physical.num_links
        assert restored.num_commodities == original.num_commodities
        for a, b in zip(original.commodities, restored.commodities):
            assert a.name == b.name
            assert a.edges == b.edges
            assert a.max_rate == pytest.approx(b.max_rate)
            assert a.potentials == pytest.approx(b.potentials)
            assert a.costs == pytest.approx(b.costs)

    def test_roundtrip_preserves_optimum(self):
        original = paper_figure4_network(seed=4)
        restored = network_from_dict(network_to_dict(original))
        lp_a = solve_lp(build_extended_network(original))
        lp_b = solve_lp(build_extended_network(restored))
        assert lp_a.utility == pytest.approx(lp_b.utility, rel=1e-9)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "model.json"
        save_network(figure1_network(), path)
        restored = load_network(path)
        assert restored.num_commodities == 2
        data = json.loads(path.read_text())
        assert data["format_version"] == 1

    def test_version_check(self):
        data = network_to_dict(diamond_network())
        data["format_version"] = 99
        with pytest.raises(ModelError, match="format_version"):
            network_from_dict(data)

    def test_missing_capacity_rejected(self):
        data = network_to_dict(diamond_network())
        del data["nodes"][0]["capacity"]
        with pytest.raises(ModelError, match="capacity"):
            network_from_dict(data)

    def test_unknown_kind_rejected(self):
        data = network_to_dict(diamond_network())
        data["nodes"][0]["kind"] = "quantum"
        with pytest.raises(ModelError, match="kind"):
            network_from_dict(data)


class TestSolutionExport:
    def test_solution_dict_fields(self, tmp_path):
        ext = build_extended_network(diamond_network())
        from repro.core.gradient import GradientAlgorithm, GradientConfig

        solution = GradientAlgorithm(
            ext, GradientConfig(eta=0.05, max_iterations=1500)
        ).run().solution
        data = solution_to_dict(solution)
        assert data["method"] == "gradient"
        assert data["feasible"] is True
        assert data["admitted"]["diamond"] > 0
        assert data["admitted"]["diamond"] + data["shed"]["diamond"] == (
            pytest.approx(30.0)
        )
        assert any(rate > 0 for rate in data["link_flows"].values())

        path = tmp_path / "solution.json"
        save_solution(solution, path)
        assert json.loads(path.read_text())["utility"] == pytest.approx(
            solution.utility
        )

    def test_lp_solution_export(self):
        ext = build_extended_network(diamond_network())
        data = solution_to_dict(solve_lp(ext))
        assert data["method"] == "lp"
        assert data["feasible"] is None  # LP solutions carry no routing state
