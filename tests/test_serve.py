"""The serve daemon: protocol, coalescing, staleness, failure containment.

Pins the contracts docs/serving.md promises:

* wire schema round-trips (and junk costs one ``bad_request``, not the
  server),
* a burst of scalar events coalesces into ONE ``ProblemDelta`` / one epoch
  bump, bit-equivalent to applying the run one event at a time,
* event responses are composed after their own batch publishes, so the
  answered epoch trails the live model by at most the one in-flight batch,
* an optimizer crash turns into 503-style ``unavailable`` responses -- for
  the crashing batch AND everything after it -- never a hang, while reads
  keep serving the last good epoch,
* a full request queue answers ``overloaded`` (429) immediately,
* ``shutdown`` drains: every already-accepted request is answered before
  the socket closes.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.delta import apply_delta, compile_event
from repro.core.transform import build_extended_network
from repro.exceptions import ModelError, ServeError, ServeRequestError
from repro.online.events import (
    CapacityChange,
    CommodityDeparture,
    DemandChange,
)
from repro.online.orchestrator import OnlineOrchestrator
from repro.online.rebuild import apply_event, apply_scalar_overrides
from repro.serve import (
    ServeConfig,
    ServeSession,
    ServerThread,
    merge_scalar_run,
    plan_batch,
    protocol,
)
from repro.serve.client import ServeClient, replay_trace
from repro.scenarios import ChurnSpec, churn_network, churn_trace, figure1_network


def small_network():
    return churn_network(num_nodes=16, num_commodities=3, seed=5)


def quick_config(**overrides):
    base = dict(
        batch_window=0.005,
        max_batch=16,
        refine_iterations=2,
        warmup_iterations=20,
        validate_epochs=True,
    )
    base.update(overrides)
    return ServeConfig(**base)


# ---------------------------------------------------------------- protocol


class TestProtocol:
    def test_request_round_trip(self):
        line = protocol.encode_request("demand", id=7, commodity="c1", rate=3.5)
        request = protocol.parse_request(line)
        assert request.op == "demand"
        assert request.id == 7
        assert request.payload == {"commodity": "c1", "rate": 3.5}
        assert request.is_event

    def test_event_round_trip_covers_every_kind(self):
        network = small_network()
        events = churn_trace(network, ChurnSpec(num_events=60), seed=1)
        kinds = {type(e).__name__ for e in events}
        assert len(kinds) >= 4  # the trace actually exercises the mix
        for event in events:
            op, payload = protocol.event_to_request(event)
            request = protocol.parse_request(
                protocol.encode_request(op, id=1, **payload)
            )
            rebuilt = protocol.request_to_event(request, at_iteration=0)
            assert type(rebuilt) is type(event)
            op2, payload2 = protocol.event_to_request(rebuilt)
            assert (op2, payload2) == (op, payload)

    def test_response_round_trip(self):
        line = protocol.encode_response(3, "demand", decision="admit", epoch=9)
        doc = protocol.decode_response(line)
        assert doc["schema"] == protocol.SERVE_SCHEMA
        assert doc["ok"] is True
        assert (doc["id"], doc["epoch"]) == (3, 9)

    def test_error_response_carries_http_idiom_code(self):
        doc = protocol.decode_response(
            protocol.error_response(4, "demand", "overloaded", "queue full")
        )
        assert doc["ok"] is False
        assert doc["error"]["code"] == 429
        assert doc["error"]["type"] == "overloaded"

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2]\n",
            b'{"op": "launch_missiles"}\n',
            b'{"id": 1}\n',
        ],
    )
    def test_junk_raises_request_error(self, line):
        with pytest.raises(ServeRequestError):
            protocol.parse_request(line)

    def test_bad_event_fields_raise(self):
        request = protocol.parse_request(b'{"op": "demand", "commodity": "c1"}\n')
        with pytest.raises(ServeRequestError):
            protocol.request_to_event(request)


# --------------------------------------------------------------- coalescing


class TestCoalescing:
    def test_plan_batch_groups_scalar_runs(self):
        d = DemandChange(at_iteration=0, commodity="c", new_rate=1.0)
        c = CapacityChange(at_iteration=0, node="n", new_capacity=1.0)
        s = CommodityDeparture(at_iteration=0, commodity="c")
        units = plan_batch([d, c, d, s, c, c, s])
        assert [len(u) for u in units] == [3, 1, 2, 1]
        assert units[1] == [s] and units[3] == [s]

    def test_scalar_run_merges_into_one_delta(self):
        network = small_network()
        ext = build_extended_network(network)
        names = [c.name for c in network.commodities]
        nodes = [
            n for n, node in network.physical.nodes.items() if not node.is_sink
        ]
        events = [
            DemandChange(at_iteration=0, commodity=names[0], new_rate=4.0),
            CapacityChange(at_iteration=0, node=nodes[0], new_capacity=9.0),
            DemandChange(at_iteration=0, commodity=names[1], new_rate=2.5),
            # last write wins on a repeated target
            DemandChange(at_iteration=0, commodity=names[0], new_rate=5.0),
        ]
        base = ext.epoch
        delta = merge_scalar_run(ext, events)
        assert delta.base_epoch == base
        assert delta.scalar is not None

        # one delta, one epoch bump (the scalar path patches in place)...
        merged = apply_delta(ext, delta).ext
        assert merged.epoch == base + 1

        # ...bit-equivalent to chaining the events one at a time
        chained = build_extended_network(network)
        for event in events:
            chained = apply_delta(chained, compile_event(chained, event)).ext
        assert chained.epoch == base + len(events)
        np.testing.assert_array_equal(merged.capacity, chained.capacity)
        for view_m, view_c in zip(merged.commodities, chained.commodities):
            assert view_m.max_rate == view_c.max_rate

    def test_merge_rejects_structural_and_empty(self):
        network = small_network()
        ext = build_extended_network(network)
        with pytest.raises(ServeError):
            merge_scalar_run(ext, [])
        with pytest.raises(ServeError):
            merge_scalar_run(
                ext,
                [
                    DemandChange(at_iteration=0, commodity="x", new_rate=1.0),
                    CommodityDeparture(at_iteration=0, commodity="x"),
                ],
            )

    def test_merge_unknown_name_raises_model_error(self):
        network = small_network()
        ext = build_extended_network(network)
        with pytest.raises(ModelError):
            merge_scalar_run(
                ext,
                [
                    DemandChange(at_iteration=0, commodity="nope", new_rate=1.0),
                    DemandChange(at_iteration=0, commodity="nope2", new_rate=1.0),
                ],
            )

    def test_session_bumps_epoch_once_per_scalar_burst(self):
        network = small_network()
        session = ServeSession(
            network, refine_iterations=2, warmup_iterations=20
        )
        session.warmup()
        names = [c.name for c in network.commodities]
        burst = [
            DemandChange(at_iteration=0, commodity=name, new_rate=3.0)
            for name in names
        ]
        before = session.current_epoch()
        outcomes, snapshot = session.process_batch(burst)
        assert session.current_epoch() == before + 1  # N events, ONE epoch
        assert all(o.accepted for o in outcomes)
        assert snapshot.epoch == before + 1
        assert snapshot.validation is not None and snapshot.validation.passed
        session.close()


class TestApplyScalarOverrides:
    def test_matches_chained_apply_event(self):
        network = small_network()
        names = [c.name for c in network.commodities]
        nodes = [
            n for n, node in network.physical.nodes.items() if not node.is_sink
        ]
        rates = {names[0]: 6.0, names[2]: 1.5}
        capacities = {nodes[0]: 11.0, nodes[3]: 2.0}
        merged = apply_scalar_overrides(network, rates, capacities)

        chained = network
        for name, rate in rates.items():
            chained = apply_event(
                chained,
                DemandChange(at_iteration=0, commodity=name, new_rate=rate),
            ).network
        for node, cap in capacities.items():
            chained = apply_event(
                chained,
                CapacityChange(at_iteration=0, node=node, new_capacity=cap),
            ).network

        for node in merged.physical.nodes:
            assert merged.physical.node(node).capacity == pytest.approx(
                chained.physical.node(node).capacity
            )
        for cm, cc in zip(merged.commodities, chained.commodities):
            assert cm.name == cc.name
            assert cm.max_rate == pytest.approx(cc.max_rate)
        # untouched commodities are shared, not copied (delta dirty-set keys
        # off object identity)
        untouched = [
            i for i, c in enumerate(network.commodities) if c.name not in rates
        ]
        for i in untouched:
            assert merged.commodities[i] is network.commodities[i]

    def test_validates_names_and_sinks(self):
        network = small_network()
        sink = next(
            n for n, node in network.physical.nodes.items() if node.is_sink
        )
        with pytest.raises(ModelError):
            apply_scalar_overrides(network, rates={"nope": 1.0})
        with pytest.raises(ModelError):
            apply_scalar_overrides(network, capacities={"nope": 1.0})
        with pytest.raises(ModelError):
            apply_scalar_overrides(network, capacities={sink: 1.0})


# ------------------------------------------------------------------ daemon


class TestServer:
    def test_hello_stats_and_admission_flow(self):
        network = small_network()
        names = [c.name for c in network.commodities]
        with ServerThread(network, config=quick_config()) as port:
            with ServeClient("127.0.0.1", port) as client:
                hello = client.hello()
                assert hello["ok"] is True
                assert hello["server"]["max_batch"] == 16
                assert {c["name"] for c in hello["model"]["commodities"]} == set(
                    names
                )

                response = client.demand(names[0], 2.5)
                assert response["ok"] is True
                assert response["decision"] == "admit"
                assert response["epoch"] >= 1

                rejected = client.demand("no-such-commodity", 2.5)
                assert rejected["ok"] is True
                assert rejected["decision"] == "reject"
                assert "no-such-commodity" in rejected["reason"]

                stats = client.stats()
                assert stats["healthy"] is True
                assert stats["validated"] is True
                assert stats["stats"]["events_accepted"] >= 1
                assert stats["stats"]["events_rejected"] >= 1

    def test_bad_line_costs_one_response_not_the_server(self):
        with ServerThread(small_network(), config=quick_config()) as port:
            with ServeClient("127.0.0.1", port) as client:
                client._sock.sendall(b'{"op": "demand", "id": 99}\n')
                doc = client.read()
                assert doc["ok"] is False
                assert doc["error"]["code"] == 400
                assert doc["id"] == 99
                client._sock.sendall(b"garbage that is not json\n")
                doc = client.read()
                assert doc["ok"] is False
                assert doc["error"]["code"] == 400
                # the connection survived both
                assert client.stats()["ok"] is True

    def test_pipelined_burst_coalesces_and_bounds_staleness(self):
        network = small_network()
        events = churn_trace(network, ChurnSpec(num_events=40), seed=3)
        with ServerThread(network, config=quick_config()) as port:
            with ServeClient("127.0.0.1", port) as client:
                report = replay_trace(client, events, pipeline=8)
                stats = client.stats()
        assert report.events == 40
        assert report.errors == 0
        # coalescing: far fewer epochs than events
        batches = stats["stats"]["batches"]
        assert batches < 40
        assert report.final_epoch >= 1
        # the publish-based staleness bound: an answered epoch trails the
        # live model by at most the one batch in flight
        assert report.max_staleness <= 1
        assert stats["stats"]["validation_failures"] == 0

    def test_backpressure_answers_overloaded(self):
        network = small_network()
        config = quick_config(batch_window=0.3, max_batch=2, queue_limit=2)
        overloaded = 0
        with ServerThread(network, config=config) as port:
            with ServeClient("127.0.0.1", port) as client:
                name = network.commodities[0].name
                ids = [client.send("demand", commodity=name, rate=2.0)
                       for __ in range(12)]
                for __ in ids:
                    doc = client.read()
                    if not doc.get("ok") and doc["error"]["code"] == 429:
                        overloaded += 1
        assert overloaded >= 1  # the queue bound talked back

    def test_optimizer_crash_is_503_not_a_hang(self):
        network = small_network()
        session = ServeSession(
            network, refine_iterations=2, warmup_iterations=20
        )

        calls = {"n": 0}
        real = session.process_batch

        def explode(events):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("boom")
            return real(events)

        session.process_batch = explode
        name = network.commodities[0].name
        with ServerThread(
            network, config=quick_config(), session=session
        ) as port:
            with ServeClient("127.0.0.1", port) as client:
                assert client.demand(name, 2.0)["ok"] is True  # batch 1 lands
                crashed = client.demand(name, 3.0)  # batch 2 crashes
                assert crashed["ok"] is False
                assert crashed["error"]["code"] == 503
                assert "boom" in crashed["error"]["message"]
                # subsequent events answer 503 immediately, no hang
                after = client.demand(name, 4.0)
                assert after["ok"] is False
                assert after["error"]["code"] == 503
                # reads keep serving the last good epoch
                stats = client.stats()
                assert stats["ok"] is True
                assert stats["healthy"] is False
                assert stats["epoch"] >= 1

    def test_shutdown_drains_cleanly(self):
        network = small_network()
        name = network.commodities[0].name
        thread = ServerThread(network, config=quick_config())
        port = thread.start()
        with ServeClient("127.0.0.1", port) as client:
            ids = [client.send("demand", commodity=name, rate=2.0)
                   for __ in range(5)]
            client.send("shutdown")
            answered = [client.read() for __ in ids]
            ack = client.read()
        # every accepted event was answered before the socket closed
        assert all(doc["op"] == "demand" for doc in answered)
        assert all(doc["ok"] for doc in answered)
        assert ack["op"] == "shutdown" and ack["ok"] is True
        assert ack["stats"]["events_accepted"] >= 5
        # the listener is gone
        thread._thread.join(timeout=10)
        assert not thread._thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5).close()

    def test_draining_server_rejects_new_events(self):
        network = small_network()
        name = network.commodities[0].name
        thread = ServerThread(network, config=quick_config(batch_window=0.2))
        port = thread.start()
        try:
            with ServeClient("127.0.0.1", port) as client:
                client.send("demand", commodity=name, rate=2.0)
                # wait until the daemon has actually read the request, so
                # the drain below races the *optimizer*, not the socket
                assert thread.server is not None
                deadline = time.monotonic() + 30
                while thread.server.stats["requests_total"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.001)
                drainer = threading.Thread(target=thread.stop)
                drainer.start()
                doc = client.read()  # the in-flight event still answers
                assert doc["ok"] is True
                drainer.join(timeout=30)
        finally:
            thread.stop()


# ------------------------------------------------- orchestrator epoch API


class TestOrchestratorEpoch:
    def test_current_epoch_accessor(self):
        net = figure1_network()
        events = [DemandChange(at_iteration=40, commodity="S1", new_rate=22.0)]
        orch = OnlineOrchestrator(net, events)
        assert orch.current_epoch() == 0  # nothing ran yet
        orch.run(120)
        assert orch.current_epoch() >= 1  # the event bumped the live epoch

    def test_epoch_attribute_is_deprecated_alias(self):
        orch = OnlineOrchestrator(figure1_network(), [])
        orch.run(60)
        with pytest.deprecated_call():
            legacy = orch.epoch
        assert legacy == orch.current_epoch()

    def test_epoch_deprecation_warns_once_per_instance(self):
        import warnings

        orch = OnlineOrchestrator(figure1_network(), [])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):  # a polling loop must not flood the log
                orch.epoch
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        # a fresh instance gets its own single warning
        other = OnlineOrchestrator(figure1_network(), [])
        with pytest.deprecated_call():
            other.epoch


# ----------------------------------------------------------- serve session


class TestSessionPolicies:
    def test_rejects_bad_knobs(self):
        network = small_network()
        with pytest.raises(ServeError):
            ServeSession(network, refine_iterations=0)
        with pytest.raises(ServeError):
            ServeSession(network, warmup_iterations=0)

    def test_closed_session_refuses_batches(self):
        network = small_network()
        session = ServeSession(
            network, refine_iterations=2, warmup_iterations=20
        )
        session.warmup()
        session.close()
        with pytest.raises(ServeError):
            session.process_batch(
                [DemandChange(at_iteration=0, commodity="x", new_rate=1.0)]
            )

    def test_every_published_epoch_is_audited(self):
        network = small_network()
        session = ServeSession(
            network, refine_iterations=2, warmup_iterations=20
        )
        snapshot = session.warmup()
        assert snapshot.validation is not None and snapshot.validation.passed
        events = churn_trace(network, ChurnSpec(num_events=12), seed=9)
        for start in range(0, len(events), 4):
            __, snap = session.process_batch(events[start:start + 4])
            assert snap.validation is not None and snap.validation.passed
        session.close()
