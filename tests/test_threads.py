"""Tests for the thread-parallel execution backend (:mod:`repro.parallel.threads`).

The contract is the same strict one the process backend carries: iterates
**bit-identical** to the serial engine for any worker count, unchanged
flow-solve counts, clean :class:`ParallelExecutionError` on worker crashes.
Threads add two worries of their own, pinned here: data races on the shared
scratch arrays (a 20-run same-seed stress must hash identically every time)
and pool lifecycle across rebinds/refreshes.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro import (
    GradientAlgorithm,
    GradientConfig,
    Instrumentation,
    ParallelExecutionError,
    build_extended_network,
    solve,
)
from repro.core.routing import initial_routing
from repro.parallel import SerialBackend, ThreadBackend
from repro.validate import DifferentialOracle
from repro.scenarios import random_stream_network
from repro.scenarios import RandomNetworkSpec


def _random_ext(seed: int, num_nodes: int = 18, num_commodities: int = 3):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(3, 4),
        layer_width_range=(2, 3),
    )
    return build_extended_network(random_stream_network(spec, seed=seed))


def _trajectory(ext, config, backend=None, iterations=20):
    algo = GradientAlgorithm(ext, config, backend=backend)
    routing = initial_routing(ext)
    states = [routing.phi.copy()]
    context = algo.compute_context(routing)
    for _ in range(iterations):
        routing = algo.step(routing, context=context)
        states.append(routing.phi.copy())
        context = algo.compute_context(routing)
    return states


def _run_digest(ext, config, backend) -> str:
    """One full run() hashed: every recorded cost + the final phi bytes."""
    result = GradientAlgorithm(ext, config, backend=backend).run()
    digest = hashlib.sha256()
    for record in result.history:
        digest.update(repr(record.cost).encode())
    digest.update(np.ascontiguousarray(result.solution.routing.phi).tobytes())
    return digest.hexdigest()


class TestThreadBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_trajectory_bit_identical_to_serial(self, workers, seed):
        ext = _random_ext(seed)
        config = GradientConfig(eta=0.04)
        serial = _trajectory(ext, config)
        with ThreadBackend(workers=workers) as backend:
            threaded = _trajectory(ext, config, backend=backend)
        assert len(serial) == len(threaded)
        for iteration, (a, b) in enumerate(zip(serial, threaded)):
            assert np.array_equal(a, b), f"phi diverged at iteration {iteration}"

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_oracle_compare_backends(self, workers):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=3), seed=7
        )
        oracle = DifferentialOracle()
        report = oracle.compare_backends(
            net,
            workers=workers,
            backend="thread",
            config=GradientConfig(eta=0.04, max_iterations=30),
        )
        assert report.passed, report.summary()

    def test_run_loop_bit_identical(self):
        ext = _random_ext(seed=5)
        config = GradientConfig(eta=0.04, max_iterations=40, record_every=5)
        r_serial = GradientAlgorithm(ext, config).run()
        with ThreadBackend(workers=2) as backend:
            r_thread = GradientAlgorithm(ext, config, backend=backend).run()
        assert r_serial.iterations == r_thread.iterations
        assert [h.cost for h in r_serial.history] == [
            h.cost for h in r_thread.history
        ]
        assert np.array_equal(
            r_serial.solution.routing.phi, r_thread.solution.routing.phi
        )
        assert r_serial.solution.utility == r_thread.solution.utility

    def test_no_blocking_config(self):
        ext = _random_ext(seed=9)
        config = GradientConfig(eta=0.04, use_blocking=False)
        serial = _trajectory(ext, config, iterations=10)
        with ThreadBackend(workers=2) as backend:
            threaded = _trajectory(ext, config, backend=backend, iterations=10)
        for a, b in zip(serial, threaded):
            assert np.array_equal(a, b)


class TestRaceStress:
    def test_twenty_same_seed_runs_hash_identically(self):
        """Race detector: 20 repeat runs over a live thread pool must be
        byte-for-byte the same run.  Any unsynchronised write to the shared
        scratch (or any order-dependent reduce) shows up as a hash split."""
        ext = _random_ext(seed=13)
        config = GradientConfig(eta=0.04, max_iterations=15, record_every=5)
        reference = _run_digest(ext, config, SerialBackend())
        with ThreadBackend(workers=4) as backend:
            digests = {_run_digest(ext, config, backend) for _ in range(20)}
        assert digests == {reference}


class TestThreadObservability:
    def test_per_worker_phase_timings_recorded(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        inst = Instrumentation()
        solve(
            net,
            config=GradientConfig(eta=0.04, max_iterations=5),
            instrumentation=inst,
            backend="thread",
            workers=2,
        )
        histograms = inst.registry.as_dict()["histograms"]
        for worker in (0, 1):
            # same per-worker phase rows as the process backend, so
            # `profile` output is backend-agnostic
            for phase in ("flow_solve", "marginals", "blocking", "gamma"):
                assert f"phase.worker{worker}.{phase}.seconds" in histograms
        assert inst.registry.gauge("parallel.workers").value == 2.0

    def test_flow_solve_counter_invariant(self):
        net = random_stream_network(
            RandomNetworkSpec(num_nodes=16, num_commodities=2), seed=8
        )
        config = GradientConfig(eta=0.04, max_iterations=20)
        inst_serial, inst_thread = Instrumentation(), Instrumentation()
        solve(net, config=config, instrumentation=inst_serial)
        solve(net, config=config, instrumentation=inst_thread, backend="thread", workers=2)
        assert (
            inst_serial.registry.counter("flow_solves").value
            == inst_thread.registry.counter("flow_solves").value
        )


class TestThreadCrashSafety:
    @pytest.mark.parametrize("phase", ["flow_solve", "step"])
    def test_worker_fault_surfaces_clean_error(self, phase):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ThreadBackend(workers=2, inject_fault=phase)
        try:
            with pytest.raises(ParallelExecutionError, match=phase):
                GradientAlgorithm(ext, config, backend=backend).run()
        finally:
            backend.close()

    def test_fault_tears_down_pool(self):
        ext = _random_ext(seed=3)
        config = GradientConfig(eta=0.04, max_iterations=5)
        backend = ThreadBackend(workers=2, inject_fault="flow_solve")
        with pytest.raises(ParallelExecutionError):
            GradientAlgorithm(ext, config, backend=backend).run()
        assert backend._pool is None

    def test_unbound_backend_raises(self):
        backend = ThreadBackend(workers=2)
        with pytest.raises(ParallelExecutionError, match="bind"):
            backend.build_context(None)


class TestThreadLifecycle:
    def test_close_is_idempotent_and_reusable(self):
        ext = _random_ext(seed=4)
        config = GradientConfig(eta=0.04)
        backend = ThreadBackend(workers=2)
        a = _trajectory(ext, config, backend=backend, iterations=5)
        backend.close()
        backend.close()  # idempotent
        b = _trajectory(ext, config, backend=backend, iterations=5)  # restarts
        backend.close()
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_rebind_to_new_network(self):
        config = GradientConfig(eta=0.04)
        with ThreadBackend(workers=2) as backend:
            first = _trajectory(_random_ext(seed=4), config, backend=backend, iterations=5)
            ext_b = _random_ext(seed=21, num_nodes=14, num_commodities=2)
            second = _trajectory(ext_b, config, backend=backend, iterations=5)
            serial_b = _trajectory(ext_b, config, iterations=5)
        assert first is not None
        for x, y in zip(second, serial_b):
            assert np.array_equal(x, y)

    def test_pool_clamped_to_commodity_count(self):
        ext = _random_ext(seed=2, num_nodes=16, num_commodities=3)
        config = GradientConfig(eta=0.04)
        with ThreadBackend(workers=8) as backend:
            serial = _trajectory(ext, config, iterations=5)
            threaded = _trajectory(ext, config, backend=backend, iterations=5)
            assert len(backend._shards) == 3
            assert backend._pool._max_workers == 3
        for a, b in zip(serial, threaded):
            assert np.array_equal(a, b)


class TestThreadOrchestrator:
    def test_orchestrator_with_thread_backend_matches_serial(self):
        from repro.online import DemandChange, OnlineOrchestrator
        from repro.scenarios import figure1_network

        net = figure1_network()
        events = [DemandChange(at_iteration=60, commodity="S1", new_rate=25.0)]
        serial = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True
        ).run(120)
        threaded = OnlineOrchestrator(
            net, events, GradientConfig(eta=0.05), incremental=True,
            backend="thread", workers=2,
        ).run(120)
        assert threaded.final_utility == serial.final_utility
        assert [r.utility for r in threaded.records] == [
            r.utility for r in serial.records
        ]
