"""End-to-end integration tests across modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BackpressureAlgorithm,
    BackpressureConfig,
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve,
    solve_lp,
)
from repro.analysis import iterations_to_fraction
from repro.core.routing import (
    feasibility_report,
    uniform_routing,
    validate_routing,
)
from repro.scenarios import (
    diamond_network,
    figure1_network,
    financial_pipeline_network,
    random_stream_network,
    sensor_fusion_network,
)
from repro.scenarios import RandomNetworkSpec


class TestSolveFacade:
    def test_gradient_method(self):
        solution = solve(figure1_network())
        assert solution.method == "gradient"
        assert solution.utility > 0
        assert solution.routing is not None

    def test_optimal_method(self):
        solution = solve(figure1_network(), method="optimal")
        assert solution.method == "lp"
        np.testing.assert_allclose(solution.admitted, [15.0, 12.0], rtol=1e-8)

    def test_backpressure_method(self):
        config = None  # default config is heavy; diamond converges fast anyway
        solution = solve(diamond_network(), method="backpressure")
        assert solution.method == "backpressure"
        assert solution.utility > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve(diamond_network(), method="magic")

    def test_custom_config(self):
        config = GradientConfig(eta=0.1, max_iterations=200)
        solution = solve(diamond_network(), config=config)
        assert solution.iterations <= 200


class TestGradientVsOptimal:
    """The algorithm's fixed point must track the true optimum across
    instances (up to the barrier's deliberate headroom)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_small_random_instances(self, seed):
        spec = RandomNetworkSpec(
            num_nodes=12,
            num_commodities=2,
            depth_range=(3, 3),
            layer_width_range=(2, 2),
        )
        ext = build_extended_network(random_stream_network(spec, seed=seed))
        lp = solve_lp(ext)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.04, max_iterations=8000)
        ).run()
        assert result.solution.utility >= 0.90 * lp.utility
        assert result.solution.utility <= lp.utility * (1 + 1e-9)

    @pytest.mark.parametrize(
        "factory", [sensor_fusion_network, financial_pipeline_network]
    )
    def test_domain_scenarios(self, factory):
        net = factory()
        ext = build_extended_network(net)
        from repro.core.optimal import solve_optimal

        optimum = solve_optimal(ext)
        result = GradientAlgorithm(
            ext, GradientConfig(eta=0.03, max_iterations=8000)
        ).run()
        assert result.solution.utility >= 0.85 * optimum.utility
        report = feasibility_report(ext, result.solution.routing)
        assert report.feasible


class TestFigure4Shape:
    """The headline result: gradient reaches ~95% of optimal around 10^3
    iterations on the 40-node, 3-commodity instance with eta=0.04, eps=0.2."""

    def test_gradient_converges_like_the_paper(self, figure4_ext):
        lp = solve_lp(figure4_ext)
        result = GradientAlgorithm(
            figure4_ext,
            GradientConfig(eta=0.04, max_iterations=2500, record_every=10),
        ).run()
        hit95 = iterations_to_fraction(
            result.recorded_iterations, result.utilities, lp.utility, 0.95
        )
        assert hit95 is not None
        assert 100 <= hit95 <= 2500  # paper: ~1000; exact value is instance-specific

    def test_gradient_final_capacity_feasible(self, figure4_ext):
        result = GradientAlgorithm(
            figure4_ext, GradientConfig(eta=0.04, max_iterations=1500)
        ).run()
        report = feasibility_report(figure4_ext, result.solution.routing)
        assert report.feasible
        assert report.max_utilization <= 1.0 + 1e-9


class TestRoutingInvariantsUnderGamma:
    @given(seed=st.integers(0, 1000), steps=st.integers(1, 15))
    @settings(max_examples=25, deadline=None)
    def test_gamma_preserves_routing_validity(self, seed, steps):
        ext = build_extended_network(figure1_network())
        rng = np.random.default_rng(seed)
        routing = uniform_routing(ext)
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = ext.commodity_out_edges[j][node]
                if not out:
                    continue
                weights = rng.random(len(out)) + 1e-3
                routing.phi[j, out] = weights / weights.sum()
        algo = GradientAlgorithm(ext, GradientConfig(eta=0.05))
        for __ in range(steps):
            routing = algo.step(routing)
            validate_routing(ext, routing)

    @given(eta=st.floats(0.001, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_any_reasonable_eta_keeps_cost_finite(self, eta):
        ext = build_extended_network(diamond_network())
        result = GradientAlgorithm(
            ext, GradientConfig(eta=eta, max_iterations=150)
        ).run()
        assert np.all(np.isfinite(result.costs))


class TestCrossMethodConsistency:
    def test_all_methods_agree_on_uncongested_instance(self):
        net = figure1_network()
        lp = solve(net, method="optimal")
        gradient = solve(net, config=GradientConfig(eta=0.05, max_iterations=4000))
        assert gradient.utility == pytest.approx(lp.utility, rel=1e-4)

        ext = build_extended_network(net)
        bp = BackpressureAlgorithm(
            ext,
            BackpressureConfig(max_iterations=40000, record_every=2000,
                               buffer_cap=400.0),
        ).run()
        assert bp.utility >= 0.9 * lp.utility

    def test_admission_priorities_follow_weights(self):
        """Doubling one commodity's utility weight must not decrease its
        admitted share at the optimum."""
        from repro.core.utility import LinearUtility

        spec_lo = RandomNetworkSpec(
            num_nodes=12, num_commodities=2, depth_range=(3, 3),
            layer_width_range=(2, 2),
            utility_factory=lambda j: LinearUtility(1.0),
        )
        spec_hi = RandomNetworkSpec(
            num_nodes=12, num_commodities=2, depth_range=(3, 3),
            layer_width_range=(2, 2),
            utility_factory=lambda j: LinearUtility(5.0 if j == 0 else 1.0),
        )
        ext_lo = build_extended_network(random_stream_network(spec_lo, seed=5))
        ext_hi = build_extended_network(random_stream_network(spec_hi, seed=5))
        a_lo = solve_lp(ext_lo).admitted
        a_hi = solve_lp(ext_hi).admitted
        assert a_hi[0] >= a_lo[0] - 1e-6
