"""Tests for the RunResult protocol and the unified solve() entry point."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import (
    BackpressureConfig,
    GradientConfig,
    Instrumentation,
    OptimalResult,
    RunResult,
    Solution,
    solve,
)
from repro.io import result_to_dict
from repro.online import DemandChange, OnlineOrchestrator
from repro.scenarios import diamond_network


def _gradient():
    return solve(
        diamond_network(),
        config=GradientConfig(eta=0.05, max_iterations=60),
        full_result=True,
    )


def _distributed():
    return solve(
        diamond_network(),
        method="distributed",
        config=GradientConfig(eta=0.05, max_iterations=12, record_every=4),
        full_result=True,
    )


def _backpressure():
    return solve(
        diamond_network(),
        method="backpressure",
        config=BackpressureConfig(max_iterations=400, record_every=50),
        full_result=True,
    )


def _optimal():
    return solve(diamond_network(), method="optimal", full_result=True)


def _online():
    network = diamond_network()
    commodity = network.commodities[0]
    events = [
        DemandChange(
            at_iteration=30,
            commodity=commodity.name,
            new_rate=0.5 * commodity.max_rate,
        )
    ]
    return OnlineOrchestrator(
        network, events, GradientConfig(eta=0.05), record_every=10
    ).run(80)


_FACTORIES = {
    "gradient": _gradient,
    "distributed": _distributed,
    "backpressure": _backpressure,
    "online": _online,
    "optimal": _optimal,
}


@pytest.fixture(scope="module", params=sorted(_FACTORIES))
def any_result(request):
    return _FACTORIES[request.param]()


class TestRunResultProtocol:
    """One behavioural contract across all five result types."""

    def test_satisfies_protocol(self, any_result):
        assert isinstance(any_result, RunResult)

    def test_trajectory_arrays_aligned(self, any_result):
        n = len(any_result.history)
        assert n >= 1
        assert len(any_result.utilities) == n
        assert len(any_result.costs) == n
        assert len(any_result.recorded_iterations) == n

    def test_recorded_iterations_monotone(self, any_result):
        its = np.asarray(any_result.recorded_iterations)
        assert np.all(np.diff(its) >= 0)

    def test_final_utility_is_float(self, any_result):
        value = any_result.final_utility
        assert isinstance(value, float)
        assert np.isfinite(value)

    def test_solution_attached(self, any_result):
        solution = any_result.solution
        assert solution is not None
        assert solution.utility == pytest.approx(any_result.final_utility)

    def test_result_to_dict_is_json_safe(self, any_result):
        doc = result_to_dict(any_result, run="protocol-test")
        text = json.dumps(doc)  # must not hit NaN or numpy types
        parsed = json.loads(text)
        assert parsed["schema"] == "repro.result/1"
        assert parsed["context"] == {"run": "protocol-test"}
        assert len(parsed["trajectory"]["iterations"]) == len(any_result.history)


class TestOptimalResult:
    def test_single_point_history(self):
        result = _optimal()
        assert isinstance(result, OptimalResult)
        assert result.converged is True
        assert len(result.history) == 1
        assert result.utilities[0] == pytest.approx(result.final_utility)


class TestSolveAPI:
    def test_default_returns_solution(self):
        solution = solve(diamond_network(), config=GradientConfig(max_iterations=30))
        assert isinstance(solution, Solution)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            solve(diamond_network(), method="magic")

    def test_wrong_config_class(self):
        with pytest.raises(TypeError, match="BackpressureConfig"):
            solve(diamond_network(), method="backpressure", config=GradientConfig())
        with pytest.raises(TypeError, match="GradientConfig"):
            solve(diamond_network(), config=BackpressureConfig())

    def test_optimal_takes_no_config(self):
        with pytest.raises(TypeError, match="no config"):
            solve(diamond_network(), method="optimal", config=GradientConfig())

    def test_unknown_kwarg(self):
        with pytest.raises(TypeError, match="bogus"):
            solve(diamond_network(), bogus=3)

    def test_legacy_kwargs_warn_and_match_config(self):
        via_config = solve(
            diamond_network(), config=GradientConfig(eta=0.05, max_iterations=40)
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            via_kwargs = solve(diamond_network(), eta=0.05, max_iterations=40)
        assert via_kwargs.utility == pytest.approx(via_config.utility, abs=0)

    def test_legacy_eps_maps_to_cost_model(self):
        with pytest.warns(DeprecationWarning):
            result = solve(
                diamond_network(), eps=0.3, max_iterations=20, full_result=True
            )
        assert result.solution.iterations == 20

    def test_instrumentation_threads_through(self):
        inst = Instrumentation()
        solve(
            diamond_network(),
            config=GradientConfig(max_iterations=25),
            instrumentation=inst,
        )
        assert inst.registry.counter("flow_solves").value == 26
        assert inst.registry.gauge("final_utility").value is not None


class TestDeprecatedResultNames:
    def test_online_iterations_alias_warns(self):
        result = _online()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning):
                result.iterations
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert np.array_equal(result.iterations, result.recorded_iterations)
