"""TAB-ETA -- sensitivity to the step scale ``eta`` (paper Sections 5-6).

Paper prose: *"For eta very small, convergence of the algorithm is
guaranteed, but rather slowly.  As eta increases, the speed of convergence
increases but the danger of no convergence increases. ... In practice, it is
possible to choose a eta much larger to expedite the convergence, e.g. in
hundreds of iterations."*

This bench sweeps eta on the Figure-4 instance and reports iterations to 90%
and 95% of the LP optimum plus the final utility.  Shape assertions:

* every eta in the stable range converges to >= 90% of optimal;
* iterations-to-95% decreases (weakly) from the smallest eta to the paper's
  0.04 and beyond, until instability sets in;
* at least one larger-than-paper eta reaches 95% in "hundreds of iterations".
"""

from __future__ import annotations

from conftest import emit

from repro import GradientAlgorithm, GradientConfig
from repro.analysis import TableBuilder, iterations_to_fraction

ETAS = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32]
MAX_ITERATIONS = 4000


def test_eta_sweep(benchmark, figure4_ext, figure4_lp):
    optimum = figure4_lp.utility

    def run_sweep():
        rows = []
        for eta in ETAS:
            result = GradientAlgorithm(
                figure4_ext,
                GradientConfig(
                    eta=eta, max_iterations=MAX_ITERATIONS, record_every=10
                ),
            ).run()
            rows.append(
                {
                    "eta": eta,
                    "final": result.solution.utility,
                    "fraction": result.solution.utility / optimum,
                    "hit90": iterations_to_fraction(
                        result.recorded_iterations, result.utilities, optimum, 0.90
                    ),
                    "hit95": iterations_to_fraction(
                        result.recorded_iterations, result.utilities, optimum, 0.95
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = TableBuilder(["eta", "final utility", "of optimal", "to 90%", "to 95%"])
    for row in rows:
        table.add_row(
            row["eta"],
            row["final"],
            f"{row['fraction']:.1%}",
            row["hit90"],
            row["hit95"],
        )
    emit(
        f"TAB-ETA: step-scale sweep on the Figure-4 instance "
        f"(optimal = {optimum:.3f}, {MAX_ITERATIONS} iteration budget)",
        table.render(),
    )

    by_eta = {row["eta"]: row for row in rows}

    # the stable mid-range converges high within the iteration budget
    for eta in (0.02, 0.04):
        assert by_eta[eta]["fraction"] >= 0.90, f"eta={eta} failed to converge"

    # "the danger of no convergence increases": the largest eta oscillates
    # instead of settling near the optimum
    assert by_eta[0.32]["fraction"] < 0.90

    # "for eta very small, convergence is guaranteed, but rather slowly":
    # within the fixed budget the smallest eta lags the paper's 0.04
    hit95_smallest = by_eta[0.005]["hit95"]
    hit95_paper = by_eta[0.04]["hit95"]
    assert hit95_paper is not None
    assert hit95_smallest is None or hit95_smallest > 2 * hit95_paper
    assert by_eta[0.005]["fraction"] < by_eta[0.04]["fraction"]

    # "a much larger eta expedites convergence, e.g. hundreds of iterations"
    fast = [
        row["hit95"]
        for row in rows
        if row["eta"] > 0.04 and row["hit95"] is not None
    ]
    assert fast and min(fast) < 1000
