"""FIG4 -- the paper's Figure 4: gradient vs back-pressure vs LP optimum.

Paper (Section 6): on a 40-node random network with 3 commodities,
throughput utility, eps=0.2, eta=0.04, the gradient algorithm reaches a
utility within 95% of optimal in on the order of 10^3 iterations, while the
back-pressure baseline needs orders of magnitude more (~10^5 in the paper's
parameterisation); both curves improve monotonically toward the optimum.

This bench regenerates the comparison table and asserts the shape:
* both algorithms end within a few percent of the LP optimum,
* both trajectories are (effectively) monotone,
* the gradient reaches 95% of optimal in O(10^3) iterations,
* back-pressure needs several times more iterations than the gradient.

The ``benchmark`` fixture times the unit of work each algorithm repeats: one
full iteration (all three protocol phases for the gradient; one slot for
back-pressure), which is what the paper's per-iteration cost discussion is
about.
"""

from __future__ import annotations

from conftest import emit

from repro import (
    BackpressureAlgorithm,
    BackpressureConfig,
    GradientAlgorithm,
    GradientConfig,
)
from repro.analysis import (
    AlgorithmTrajectory,
    figure4_table,
    is_effectively_monotone,
    iterations_to_fraction,
)
from repro.core.routing import initial_routing

GRADIENT_ITERATIONS = 2500
BACKPRESSURE_ITERATIONS = 60_000


def test_figure4_convergence_comparison(benchmark, figure4_ext, figure4_lp):
    optimum = figure4_lp.utility

    def run_experiment():
        gradient = GradientAlgorithm(
            figure4_ext,
            GradientConfig(
                eta=0.04, max_iterations=GRADIENT_ITERATIONS, record_every=10
            ),
        ).run()
        backpressure = BackpressureAlgorithm(
            figure4_ext,
            BackpressureConfig(
                max_iterations=BACKPRESSURE_ITERATIONS,
                record_every=200,
                buffer_cap=1000.0,
            ),
        ).run()
        return gradient, backpressure

    gradient, backpressure = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    emit(
        "FIG4: convergence on the 40-node / 3-commodity instance "
        f"(optimal = {optimum:.3f})",
        figure4_table(
            optimum,
            [
                AlgorithmTrajectory(
                    "gradient (eta=0.04)",
                    gradient.recorded_iterations,
                    gradient.utilities,
                ),
                AlgorithmTrajectory(
                    "back-pressure",
                    backpressure.recorded_iterations,
                    backpressure.utilities,
                ),
            ],
        ),
    )

    grad_hit95 = iterations_to_fraction(
        gradient.recorded_iterations, gradient.utilities, optimum, 0.95
    )
    bp_hit95 = iterations_to_fraction(
        backpressure.recorded_iterations, backpressure.utilities, optimum, 0.95
    )

    # shape assertions (paper's qualitative claims)
    assert gradient.solution.utility >= 0.95 * optimum
    assert backpressure.utility >= 0.95 * optimum
    assert is_effectively_monotone(gradient.utilities, "increasing", slack=1e-4)
    assert is_effectively_monotone(backpressure.utilities, "increasing", slack=0.02)
    assert grad_hit95 is not None and 100 <= grad_hit95 <= 2500
    assert bp_hit95 is not None
    assert bp_hit95 >= 5 * grad_hit95  # gradient wins by a large factor


def test_gradient_iteration_cost(benchmark, figure4_ext):
    """Wall-clock of one gradient iteration (marginal wave + update +
    forecast, synchronous engine)."""
    algo = GradientAlgorithm(figure4_ext, GradientConfig(eta=0.04))
    routing = initial_routing(figure4_ext)
    state = {"routing": routing}

    def one_iteration():
        state["routing"] = algo.step(state["routing"])

    benchmark(one_iteration)


def test_backpressure_iteration_cost(benchmark, figure4_ext):
    """Wall-clock of one back-pressure slot (buffer exchange + allocation).

    The paper notes a back-pressure iteration is much cheaper than a gradient
    iteration in *message rounds*; per-slot compute is also small.
    """

    def hundred_slots():
        config = BackpressureConfig(max_iterations=100, record_every=100)
        BackpressureAlgorithm(figure4_ext, config).run()

    benchmark(hundred_slots)
