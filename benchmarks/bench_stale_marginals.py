"""TAB-STALE -- how often must the marginal-cost wave run?

The paper's algorithm runs the full O(L) marginal-cost broadcast every
iteration -- the very cost that makes an iteration expensive (Section 6).
A natural engineering question the paper leaves open: can nodes keep
updating their routing with *stale* marginals, refreshing the wave only
every k-th iteration?  Each node still tracks its own traffic ``t_i(j)``
(local knowledge, refreshed by the cheap forecast pass), but reuses the last
received ``dA/dr`` values in between.

This bench sweeps the refresh period on the Figure-4 instance and reports
iterations to 95% of optimal, *wave count* to 95% (the actual communication
bill), and the final utility.

Findings encoded in the shape assertions: every moderately stale variant
(period <= 5) still *reaches* 95% of optimal, and the number of global waves
needed to get there drops monotonically with the period (staleness trades
per-iteration communication for iterations at a profit).  But staleness also
erodes *stability*: with fixed eta the effective step per wave grows with
the period, so stale variants can oscillate after reaching the optimum, and
beyond period ~10 the updates chase a landscape that has already moved and
never settle.  Deployed systems should either refresh frequently or shrink
eta with the refresh period.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro import GradientConfig
from repro.analysis import TableBuilder, iterations_to_fraction
from repro.core.blocking import compute_blocked_sets
from repro.core.gradient import apply_gamma_at_node
from repro.core.marginals import (
    CostModel,
    edge_marginals,
    evaluate_cost,
    link_cost_derivative,
    marginal_cost_to_destination,
)
from repro.core.routing import initial_routing, resource_usage, solve_traffic

REFRESH_PERIODS = [1, 2, 5, 10, 20]
MAX_ITERATIONS = 4000
ETA = 0.04


def run_with_stale_marginals(ext, refresh_every: int, record_every: int = 10):
    """The paper's loop, but the global marginal wave only fires every
    ``refresh_every`` iterations; routing updates in between reuse the last
    deltas with fresh local traffic."""
    cfg = GradientConfig(eta=ETA)
    cost_model = CostModel(eps=0.2)
    routing = initial_routing(ext)
    deltas = [None] * ext.num_commodities
    blocked = [None] * ext.num_commodities
    iterations, utilities = [], []

    for iteration in range(1, MAX_ITERATIONS + 1):
        traffic = solve_traffic(ext, routing)
        if (iteration - 1) % refresh_every == 0:
            edge_usage, node_usage = resource_usage(ext, routing, traffic)
            dadf = link_cost_derivative(ext, cost_model, edge_usage, node_usage)
            for view in ext.commodities:
                j = view.index
                dadr = marginal_cost_to_destination(ext, j, routing, dadf)
                deltas[j] = edge_marginals(ext, j, dadf, dadr)
                blocked[j] = compute_blocked_sets(
                    ext, j, routing, traffic, dadr, deltas[j], ETA
                )
        new_phi = routing.phi.copy()
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = ext.commodity_out_edges[j][node]
                if len(out) < 2:
                    continue
                apply_gamma_at_node(
                    new_phi[j],
                    traffic[j, node],
                    out,
                    deltas[j],
                    blocked[j],
                    ETA,
                    cfg.traffic_tol,
                )
        routing.phi = new_phi
        if iteration % record_every == 0 or iteration == MAX_ITERATIONS:
            iterations.append(iteration)
            utilities.append(
                evaluate_cost(ext, routing, cost_model).utility
            )
    return np.array(iterations), np.array(utilities)


def test_stale_marginal_tolerance(benchmark, figure4_ext, figure4_lp):
    optimum = figure4_lp.utility

    def run_sweep():
        rows = []
        for period in REFRESH_PERIODS:
            iterations, utilities = run_with_stale_marginals(figure4_ext, period)
            hit95 = iterations_to_fraction(iterations, utilities, optimum, 0.95)
            if hit95 is not None:
                tail = utilities[iterations >= hit95]
                stability = float(tail.min()) / optimum
            else:
                stability = float("nan")
            rows.append(
                {
                    "period": period,
                    "final": float(utilities[-1]),
                    "fraction": float(utilities[-1]) / optimum,
                    "hit95": hit95,
                    "waves95": (hit95 // period + 1) if hit95 is not None else None,
                    "stability": stability,
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "wave refresh period",
            "final utility",
            "of optimal",
            "iters to 95%",
            "global waves to 95%",
            "post-hit stability",
        ]
    )
    for row in rows:
        table.add_row(
            row["period"],
            row["final"],
            f"{row['fraction']:.1%}",
            row["hit95"],
            row["waves95"],
            f"{row['stability']:.1%}" if row["stability"] == row["stability"] else "-",
        )
    emit(
        "TAB-STALE: routing updates with stale marginal costs "
        f"(Figure-4 instance, eta={ETA}, optimal = {optimum:.3f})",
        table.render(),
    )

    by_period = {row["period"]: row for row in rows}
    # the every-iteration baseline behaves like the reference implementation
    # and stays put once converged
    assert by_period[1]["fraction"] >= 0.95
    assert by_period[1]["stability"] >= 0.95
    # every moderately stale variant still reaches the 95% band ...
    for period in (2, 5):
        assert by_period[period]["hit95"] is not None
    # ... and the communication bill to get there drops monotonically
    waves = [by_period[p]["waves95"] for p in (1, 2, 5)]
    assert waves[0] > waves[1] > waves[2]
    # the staleness cliff: very stale marginals destabilise the updates
    assert by_period[20]["fraction"] < 0.90
