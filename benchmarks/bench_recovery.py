"""TAB-RECOV -- failure/demand recovery and the value of headroom.

Paper (Section 3): the barrier "may also prevent a node resource from being
completely allocated.  In practice, such remaining capacity could be used to
better accommodate changing demands, or for faster recovery in the case of
node or link failures."  The paper never measures this; this bench does.

Experiment: converge on the Figure-4 instance, then inject (a) a node
failure and (b) a 2x demand surge, and measure how many iterations the
algorithm needs to re-enter 95% of the *new* optimum, comparing

* warm start (carry the routing across the event -- what the distributed
  system would actually do) vs cold start (forget everything).

Runs with the adaptive step scale: the post-failure instance is more
congested than the original, so the stable fixed eta shrinks -- exactly the
paper's "danger of no convergence" -- and a control plane reacting to events
would adapt the step anyway.

Shape assertions: warm restarts recover at least as fast as cold restarts,
the post-event dip is bounded, and recovery is far cheaper than the
original cold convergence.
"""

from __future__ import annotations

from conftest import FIGURE4_SEED, emit

from repro import GradientConfig
from repro.analysis import TableBuilder
from repro.online import DemandChange, NodeFailure, OnlineOrchestrator
from repro.scenarios import paper_figure4_network

EVENT_AT = 1500
HORIZON = 6000


def _busiest_server(network):
    """A deterministic, load-bearing processing node to kill."""
    from repro import GradientAlgorithm, build_extended_network

    ext = build_extended_network(network)
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.04, max_iterations=EVENT_AT)
    ).run()
    usage = result.solution.extras["node_usage"]
    best, best_load = None, -1.0
    for node in ext.nodes:
        # only interior processing nodes; killing a source strands a commodity
        if node.name.startswith("n") and all(
            node.index != v.source for v in ext.commodities
        ):
            if usage[node.index] > best_load:
                best, best_load = node.name, float(usage[node.index])
    return best


def test_recovery_warm_vs_cold(benchmark):
    def run_experiment():
        network = paper_figure4_network(seed=FIGURE4_SEED)
        victim = _busiest_server(network)
        surge_target = network.commodities[0].name
        surge_rate = 2.0 * network.commodities[0].max_rate

        scenarios = {
            "node failure": NodeFailure(at_iteration=EVENT_AT, node=victim),
            "2x demand surge": DemandChange(
                at_iteration=EVENT_AT, commodity=surge_target, new_rate=surge_rate
            ),
        }
        rows = []
        for label, event in scenarios.items():
            for warm in (True, False):
                result = OnlineOrchestrator(
                    network,
                    [event],
                    GradientConfig(eta=0.04, adaptive_eta=True),
                    warm_start=warm,
                    record_every=10,
                ).run(HORIZON)
                (report,) = result.recoveries
                rows.append(
                    {
                        "scenario": label,
                        "start": "warm" if warm else "cold",
                        "pre": report.pre_event_utility,
                        "post": report.post_event_utility,
                        "new_opt": report.new_optimal_utility,
                        "recover": report.iterations_to_95,
                        "final": result.final_utility,
                    }
                )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "scenario",
            "restart",
            "pre-event utility",
            "post-event utility",
            "new optimum",
            "iters to 95% of new opt",
        ]
    )
    for row in rows:
        table.add_row(
            row["scenario"],
            row["start"],
            row["pre"],
            row["post"],
            row["new_opt"],
            row["recover"],
        )
    emit(
        "TAB-RECOV: recovery after failures and demand surges "
        "(event injected at iteration 1500)",
        table.render(),
    )

    by_key = {(row["scenario"], row["start"]): row for row in rows}
    for scenario in ("node failure", "2x demand surge"):
        warm = by_key[(scenario, "warm")]
        cold = by_key[(scenario, "cold")]
        assert warm["recover"] is not None and cold["recover"] is not None
        # the warm restart is at least as fast as forgetting everything
        assert warm["recover"] <= cold["recover"]
        # both end close to the new optimum
        assert warm["final"] >= 0.95 * warm["new_opt"]
        assert cold["final"] >= 0.95 * cold["new_opt"]
        # warm recovery is much cheaper than the initial cold convergence
        assert warm["recover"] <= EVENT_AT
