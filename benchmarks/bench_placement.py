"""TAB-PLACEMENT -- joint placement + routing vs routing-only utility.

The paper assumes the task-to-server assignment is given and optimizes
routing + admission on top.  :class:`repro.placement.JointPlacementLoop`
closes that loop: it alternates LP-scored re-placement proposals with warm
gradient re-optimization on the delta core, accepting a move only when it
raises the LP-optimal total utility.  This bench runs the loop on the
calibrated datacenter/ISP catalog entries and records, per scenario, the
routing-only vs joint utility (LP bound and gradient-achieved).

Everything here is deterministic -- greedy seeding, the local search, and
the gradient iteration contain no randomness -- so the gates are exact
and hold in smoke mode too:

* ``joint_lp >= routing_only_lp`` on every scenario (monotone by
  construction; a violation means the accept rule broke), and
* on the contention-calibrated entries (``fat-tree-16``, ``isp-32``) the
  loop must find at least one improving move, i.e. ``lp_ratio > 1`` --
  placement genuinely beats routing-only there, which is the headline.

PLACEMENT_SMOKE=1 (CI) keeps only the two small scenarios; the committed
``BENCH_PLACEMENT.json`` baseline is generated in smoke mode, so the
regression gate sees identical rungs locally and in CI.
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import emit

from repro.analysis import TableBuilder
from repro.obs import Instrumentation, write_metrics_json
from repro.placement import JointPlacementLoop
from repro.scenarios import scenario

PLACEMENT_SMOKE = os.environ.get("PLACEMENT_SMOKE", "") == "1"

# (scenario, must_improve): calibrated entries must beat routing-only;
# the larger rungs are recorded but only gated on monotonicity
SCENARIOS = [
    ("fat-tree-16", True),
    ("isp-32", True),
    ("fat-tree-128", True),
    ("isp-128", False),
]
if PLACEMENT_SMOKE:
    SCENARIOS = [("fat-tree-16", True), ("isp-32", True)]


def test_joint_placement_vs_routing_only(benchmark):
    def run_experiment():
        rows = []
        for name, must_improve in SCENARIOS:
            report = JointPlacementLoop.from_scenario(name).run()
            rows.append((name, must_improve, report))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "scenario", "routing-only LP", "joint LP", "LP ratio",
            "achieved ratio", "moves", "rounds",
        ]
    )
    inst = Instrumentation()
    for name, must_improve, report in rows:
        # monotone by construction, every scenario, every mode
        assert report.joint_lp >= report.routing_only_lp - 1e-9, (
            f"{name}: joint LP {report.joint_lp:.4f} fell below the "
            f"routing-only baseline {report.routing_only_lp:.4f}"
        )
        if must_improve:
            assert report.moves, f"{name}: no improving move found"
            assert report.lp_ratio > 1.0, (
                f"{name}: lp_ratio {report.lp_ratio:.4f} <= 1"
            )
        table.add_row(
            name,
            f"{report.routing_only_lp:.3f}",
            f"{report.joint_lp:.3f}",
            f"{report.lp_ratio:.4f}x",
            f"{report.achieved_ratio:.4f}x",
            len(report.moves),
            report.rounds_run,
        )
        # deterministic invariants for the regression gate
        inst.count(f"placement.{name}.moves", float(len(report.moves)))
        inst.count(f"placement.{name}.rounds", float(report.rounds_run))
        inst.gauge(f"placement.{name}.lp_ratio", report.lp_ratio)
        inst.gauge(f"placement.{name}.achieved_ratio", report.achieved_ratio)
        inst.gauge(f"placement.{name}.routing_only_lp", report.routing_only_lp)
        inst.gauge(f"placement.{name}.joint_lp", report.joint_lp)

    emit(
        "TAB-PLACEMENT: joint placement loop vs routing-only"
        + (" (SMOKE)" if PLACEMENT_SMOKE else ""),
        table.render(),
    )

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_PLACEMENT.json",
        bench="TAB-PLACEMENT",
        scenarios=[name for name, __ in SCENARIOS],
        smoke=PLACEMENT_SMOKE,
    )
