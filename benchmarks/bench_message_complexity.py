"""TAB-MSG -- per-iteration message complexity (paper Section 6).

Paper prose: *"An iteration in the gradient-based algorithm is generally
more expensive ... It takes O(L) number of message exchanges to update all
nodes, where L represents the length of the longest path in the network.
An iteration in the back-pressure algorithm is much faster ... it takes just
O(1) number of message exchanges."*

This bench runs the *actual message-passing protocol* on tandem pipelines of
growing depth and measures the sequential rounds of the marginal-cost wave,
against back-pressure's constant one-round buffer exchange.  Shape
assertions: the wave depth grows linearly with the pipeline length while the
back-pressure round count stays 1.
"""

from __future__ import annotations

from conftest import emit

from repro import BackpressureAlgorithm, GradientConfig, build_extended_network
from repro.analysis import TableBuilder
from repro.core.routing import initial_routing
from repro.simulation import DistributedGradientRun
from repro.scenarios import tandem_network

DEPTHS = [2, 4, 8, 16, 32]


def test_message_rounds_scale_with_depth(benchmark):
    def run_experiment():
        rows = []
        for depth in DEPTHS:
            ext = build_extended_network(tandem_network(depth))
            run = DistributedGradientRun(ext, GradientConfig(eta=0.05))
            run.load_routing(initial_routing(ext))
            run.forecast_phase()
            metrics = run.iterate(1)
            marginal = next(p for p in metrics.phases if p.name == "marginal")
            forecast = next(p for p in metrics.phases if p.name == "forecast")
            bp = BackpressureAlgorithm(ext)
            rows.append(
                {
                    "depth": depth,
                    "longest_path": 2 * depth + 2,  # dummy->src->(bw->node)*->sink
                    "wave_rounds": marginal.rounds,
                    "forecast_rounds": forecast.rounds,
                    "gradient_msgs": metrics.messages,
                    "bp_rounds": 1,
                    "bp_msgs": bp.messages_per_iteration,
                }
            )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "pipeline depth",
            "longest path L",
            "gradient wave rounds",
            "gradient msgs/iter",
            "bp rounds",
            "bp msgs/iter",
        ]
    )
    for row in rows:
        table.add_row(
            row["depth"],
            row["longest_path"],
            row["wave_rounds"],
            row["gradient_msgs"],
            row["bp_rounds"],
            row["bp_msgs"],
        )
    emit(
        "TAB-MSG: per-iteration message complexity, gradient O(L) vs "
        "back-pressure O(1)",
        table.render(),
    )

    # the marginal-cost wave is O(L): its depth tracks the longest path
    for row in rows:
        assert row["longest_path"] / 2 <= row["wave_rounds"] <= row["longest_path"]
    # linear growth: doubling depth roughly doubles rounds
    by_depth = {row["depth"]: row["wave_rounds"] for row in rows}
    for small, big in zip(DEPTHS, DEPTHS[1:]):
        ratio = by_depth[big] / by_depth[small]
        assert 1.4 <= ratio <= 2.6
    # back-pressure is O(1) rounds regardless of depth
    assert all(row["bp_rounds"] == 1 for row in rows)
