"""TAB-ASYNC -- barrier-free asynchronous execution vs the sync reference.

The async engine (``repro.simulation.async_engine``) runs the paper's
Section-5 protocol with **zero global barriers**: every node advances on
individual message deliveries under the bounded-staleness freshness rule,
and a seeded :class:`FaultyChannel` injects delay jitter, 5% loss, 5%
duplication, and delay spikes.  This bench drives two sparse rungs (120
and 500 physical nodes) through three executions each -- the vectorized
synchronous reference, the async engine over a perfect network, and the
async engine under the chaos fault mix -- and gates:

* **convergence** (every mode, smoke included): the async final utility
  stays within ``STALENESS_DRIFT_RTOL`` of the synchronous reference run
  for the same epoch count -- the same drift contract the PR 6 staleness
  backend is held to;
* **message complexity** (via BENCH_ASYNC.json): per-node-per-epoch
  protocol messages are a deterministic property of the topology (one
  marginal report per in-edge plus one forecast per allowed out-edge,
  plus seeded retransmits), so the committed baseline catches a protocol
  change that silently doubles the wire load;
* **liveness**: the runs complete -- on a lossy channel that already
  proves the retransmit path repairs every lost publication (a deadlock
  raises ``SimulationError``).

Operating point: the rungs run in the pre-saturation tracking regime
(reference max utilization well below 1).  With a fixed step and the
stiff safeguarded barrier, *saturated* instances limit-cycle under
delayed feedback -- the overshoot lag is one hop per epoch -- which is a
property of asynchrony itself, not of this implementation; docs/async.md
("Stability under lag") documents the constraint and the calibration.

The 500-node rung carries 4 commodities rather than the scale ladder's
32: the event engine pays Python-object cost per *message delivery*, and
(500, 32) expands to ~57k extended nodes / millions of deliveries --
minutes per epoch, which is a simulator limitation, not a protocol one.
At (500, 4) the rung still exercises ~10k extended nodes barrier-free.

ASYNC_SMOKE=1 (CI) shrinks the rungs to (30, 4)/(60, 8) but keeps every
correctness gate: the drift bound, the determinism replay, and the
regression-gated message counters.
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import emit

from repro.analysis import TableBuilder
from repro.core import GradientConfig
from repro.core.gradient import GradientAlgorithm
from repro.core.transform import build_extended_network
from repro.obs import Instrumentation, write_metrics_json
from repro.simulation import AsyncGradientRun, FaultSpec
from repro.validate.oracle import STALENESS_DRIFT_RTOL
from repro.scenarios import scenario

STALENESS = 2
CHAOS_SEED = 7
# the chaos mix: delay jitter, 5% loss, 5% duplication, 10-tick spikes
CHAOS = FaultSpec(
    drop=0.05, duplicate=0.05, delay_min=1, delay_max=4,
    spike_prob=0.05, spike_delay=10,
)

# (label, scenario, nodes, commodities, epochs) -- the sparse-* catalog
# entries pin the historical network seeds, and the epoch counts are
# calibrated into the pre-saturation regime with >= 2x margin under the
# drift gate (see the sweep table in docs/async.md)
RUNGS = [
    ("r120", "sparse-120x16", 120, 16, 30),
    ("r500", "sparse-500x4", 500, 4, 30),
]

ASYNC_SMOKE = os.environ.get("ASYNC_SMOKE", "") == "1"
if ASYNC_SMOKE:
    RUNGS = [
        ("r30", "sparse-30x4", 30, 4, 30),
        ("r60", "sparse-60x8", 60, 8, 30),
    ]


def _reference(ext, cfg):
    return GradientAlgorithm(ext, cfg).run()


def _async(ext, cfg, epochs, faults=None):
    run = AsyncGradientRun(
        ext, cfg, staleness=STALENESS, faults=faults, seed=CHAOS_SEED
    )
    return run.run(epochs, record_every=epochs)


def _drift(result, reference) -> float:
    ref = reference.solution.utility
    return abs(result.solution.utility - ref) / max(abs(ref), 1e-12)


def test_async_vs_sync(benchmark):
    def run_experiment():
        rows = []
        for label, scenario_name, nodes, commodities, epochs in RUNGS:
            net = scenario(scenario_name).compile().network
            ext = build_extended_network(net)
            cfg = GradientConfig(
                max_iterations=epochs, tolerance=0.0, adaptive_eta=False
            )
            ref = _reference(ext, cfg)
            perfect = _async(ext, cfg, epochs)
            chaos = _async(ext, cfg, epochs, faults=CHAOS)
            rows.append(
                (label, nodes, commodities, epochs, ext, ref, perfect, chaos)
            )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "rung", "sync U", "async U", "drift", "chaos U", "drift",
            "skew", "msg/node/ep", "retrans", "faults",
        ]
    )
    inst = Instrumentation()
    for label, nodes, commodities, epochs, ext, ref, perfect, chaos in rows:
        drift_perfect = _drift(perfect, ref)
        drift_chaos = _drift(chaos, ref)

        # convergence gate, every mode: the barrier-free run must land
        # within the staleness drift contract of the sync reference
        assert drift_perfect <= STALENESS_DRIFT_RTOL, (
            f"{label}: fault-free async drifted {drift_perfect:.4f} "
            f"> {STALENESS_DRIFT_RTOL}"
        )
        assert drift_chaos <= STALENESS_DRIFT_RTOL, (
            f"{label}: chaos async drifted {drift_chaos:.4f} "
            f"> {STALENESS_DRIFT_RTOL}"
        )
        # zero global barriers: a phase-barrier execution can never let a
        # node run >= 2 epochs ahead of the slowest
        assert perfect.metrics.max_skew >= 2
        # the chaos channel really injected faults, and recovery held
        assert chaos.metrics.channel.faults > 0

        pm, cm = perfect.metrics, chaos.metrics
        table.add_row(
            f"{label} ({nodes}x{commodities})",
            f"{ref.solution.utility:.3f}",
            f"{perfect.solution.utility:.3f}",
            f"{drift_perfect:.4f}",
            f"{chaos.solution.utility:.3f}",
            f"{drift_chaos:.4f}",
            f"{pm.max_skew}/{cm.max_skew}",
            f"{pm.messages_per_node_epoch:.2f}/{cm.messages_per_node_epoch:.2f}",
            cm.retransmits,
            cm.channel.faults,
        )

        # deterministic invariants for the regression gate: message counts
        # are a function of topology + seed, not of the clock
        inst.count(f"async.{label}.messages", float(pm.messages))
        inst.count(f"async.{label}.chaos_messages", float(cm.messages))
        inst.count(f"async.{label}.chaos_faults", float(cm.channel.faults))
        inst.gauge(
            f"async.{label}.messages_per_node_epoch",
            pm.messages_per_node_epoch,
        )
        inst.gauge(f"async.{label}.max_skew", float(pm.max_skew))
        inst.gauge(f"async.{label}.bytes_per_epoch", pm.bytes / epochs)

    emit(
        "TAB-ASYNC: barrier-free async vs synchronous reference "
        f"(staleness={STALENESS}, drift gate {STALENESS_DRIFT_RTOL}"
        + (", SMOKE)" if ASYNC_SMOKE else ")"),
        table.render(),
    )

    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_ASYNC.json",
        bench="TAB-ASYNC",
        staleness=STALENESS,
        chaos_seed=CHAOS_SEED,
        rungs=[
            {"label": r[0], "nodes": r[1], "commodities": r[2], "epochs": r[3]}
            for r in rows
        ],
        # drift values are asserted above; recorded here (ungated context)
        # for the artifact trail
        drift={
            r[0]: {
                "perfect": _drift(r[6], r[5]),
                "chaos": _drift(r[7], r[5]),
            }
            for r in rows
        },
        smoke=ASYNC_SMOKE,
    )


def test_async_replay_is_deterministic(benchmark):
    """Same seed, same trace: the chaos run replays bit for bit."""
    label, scenario_name, nodes, commodities, epochs = RUNGS[0]
    net = scenario(scenario_name).compile().network
    ext = build_extended_network(net)
    cfg = GradientConfig(
        max_iterations=epochs, tolerance=0.0, adaptive_eta=False
    )

    def run_twice():
        a = _async(ext, cfg, epochs, faults=CHAOS)
        b = _async(ext, cfg, epochs, faults=CHAOS)
        return a, b

    a, b = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert a.solution.utility == b.solution.utility
    assert a.metrics.as_dict() == b.metrics.as_dict()
    assert [r.utility for r in a.history] == [r.utility for r in b.history]
