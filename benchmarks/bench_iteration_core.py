"""TAB-ITERCORE -- per-iteration cost of the gradient engine's inner loop.

The seed implementation re-solved the flow balance (eq. (3)) three times per
recorded iteration: once inside the step, once for the convergence check, and
once for the trajectory record.  The shared :class:`IterationContext` plus the
per-level vectorized solvers collapse that to exactly one solve per iteration
and replace the per-edge Python loops with NumPy scatter passes.

This bench times both pipelines on the medium instance of TAB-SCALE (40
physical nodes, 3 commodities, seed 17) under the seed's default
``record_every=1`` regime, asserts the advertised >= 3x speedup, and -- the
part that makes the optimisation safe -- asserts the two pipelines produce
**bit-identical** routing iterates for the whole trajectory.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro import build_extended_network
from repro.obs import Instrumentation, write_metrics_json
from repro.analysis import TableBuilder
from repro.core.blocking import compute_blocked_sets
from repro.core.gradient import GradientAlgorithm, GradientConfig, apply_gamma_at_node
from repro.core.marginals import (
    edge_marginals,
    evaluate_cost,
    link_cost_derivative,
    marginal_cost_to_destination,
)
from repro.core.routing import (
    RoutingState,
    initial_routing,
    resource_usage,
    solve_traffic_scalar,
)
from repro.scenarios import random_stream_network
from repro.scenarios import RandomNetworkSpec

ITERATIONS = 300
MIN_SPEEDUP = 3.0

# CI smoke mode: shared runners have no stable clock to hold a timing gate
# against, so ITERCORE_SMOKE=1 shrinks the run and keeps only the
# correctness half of the test (the full-trajectory bit-identity assert)
SMOKE = os.environ.get("ITERCORE_SMOKE", "") == "1"
if SMOKE:
    ITERATIONS = 100


def _make_medium_ext():
    spec = RandomNetworkSpec(
        num_nodes=40,
        num_commodities=3,
        depth_range=(4, 6),
        layer_width_range=(3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


def _seed_step(algo, routing, eta):
    """The seed's ``GradientAlgorithm.step``, frozen verbatim as the baseline.

    The seed's ``solve_traffic`` was the pure-Python topological walk that
    survives today as ``solve_traffic_scalar``; marginals, blocked sets, and
    the ``Gamma`` kernel ran once per commodity / once per node.  This copy
    pins that composition so the baseline stays the seed even as the library
    functions underneath keep getting faster.
    """
    ext = algo.ext
    cfg = algo.config
    new_phi = routing.phi.copy()

    traffic = solve_traffic_scalar(ext, routing)
    edge_usage, node_usage = resource_usage(ext, routing, traffic)
    dadf = link_cost_derivative(ext, cfg.cost_model, edge_usage, node_usage)

    for view in ext.commodities:
        j = view.index
        dadr = marginal_cost_to_destination(ext, j, routing, dadf)
        delta = edge_marginals(ext, j, dadf, dadr)
        if cfg.use_blocking:
            blocked = compute_blocked_sets(ext, j, routing, traffic, dadr, delta, eta)
        else:
            blocked = None
        out_lists = ext.commodity_out_edges[j]
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = out_lists[node]
            if len(out) < 2:
                continue
            apply_gamma_at_node(
                new_phi[j], traffic[j, node], out, delta, blocked, eta, cfg.traffic_tol
            )
    return RoutingState(new_phi)


def _reference_iteration(algo, routing, eta):
    """One iteration of the seed's run loop (``record_every=1``)."""
    ext = algo.ext
    cost_model = algo.config.cost_model
    routing = _seed_step(algo, routing, eta)
    # convergence check: seed's evaluate_cost re-solved the flow balance
    traffic = solve_traffic_scalar(ext, routing)
    evaluate_cost(ext, routing, cost_model, traffic)
    # trajectory record: a third solve plus another usage pass
    traffic = solve_traffic_scalar(ext, routing)
    evaluate_cost(ext, routing, cost_model, traffic)
    resource_usage(ext, routing, traffic)
    return routing


class _ReferencePipeline:
    """The seed's per-iteration work, advanced chunk by chunk."""

    def __init__(self, algo):
        self.algo = algo
        self.routing = initial_routing(algo.ext)
        self.trajectory = [self.routing.phi.copy()]

    def advance(self, iterations):
        eta = self.algo.config.eta
        start = time.perf_counter()
        for _ in range(iterations):
            self.routing = _reference_iteration(self.algo, self.routing, eta)
            self.trajectory.append(self.routing.phi.copy())
        return time.perf_counter() - start


class _CachedPipeline:
    """The new per-iteration work: one IterationContext feeds everything."""

    def __init__(self, algo):
        self.algo = algo
        self.routing = initial_routing(algo.ext)
        self.context = algo.compute_context(self.routing)
        self.trajectory = [self.routing.phi.copy()]

    def advance(self, iterations):
        algo = self.algo
        start = time.perf_counter()
        for _ in range(iterations):
            self.routing = algo.step(self.routing, context=self.context)
            self.context = algo.compute_context(self.routing)
            algo._record(0, self.context)
            self.trajectory.append(self.routing.phi.copy())
        return time.perf_counter() - start


def test_iteration_core_speedup(benchmark):
    ext = _make_medium_ext()
    algo = GradientAlgorithm(ext, GradientConfig(eta=0.04))
    chunk = 25
    n_chunks = ITERATIONS // chunk

    def run_experiment():
        # warm both paths (lazy plan construction, allocator churn)
        _CachedPipeline(algo).advance(3)
        _ReferencePipeline(algo).advance(3)
        ref = _ReferencePipeline(algo)
        new = _CachedPipeline(algo)
        # interleave the measurements chunk by chunk: each ref/new pair runs
        # back to back under (nearly) the same machine conditions, so the
        # per-chunk ratios are robust to CPU frequency drift across the run
        ref_times, new_times = [], []
        for _ in range(n_chunks):
            ref_times.append(ref.advance(chunk))
            new_times.append(new.advance(chunk))
        return ref, new, ref_times, new_times

    ref, new, ref_times, new_times = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # correctness first: the speedup changes no iterate, bit for bit
    assert len(ref.trajectory) == len(new.trajectory)
    for k, (a, b) in enumerate(zip(ref.trajectory, new.trajectory)):
        assert np.array_equal(a, b), f"iterate {k} diverged"

    ref_us = 1e6 * sum(ref_times) / ITERATIONS
    new_us = 1e6 * sum(new_times) / ITERATIONS
    speedup = float(
        np.median(np.asarray(ref_times) / np.asarray(new_times))
    )

    table = TableBuilder(["pipeline", "us/iteration", "median speedup"])
    table.add_row("seed (scalar, 3x flow solve)", f"{ref_us:.0f}", "1.0x")
    table.add_row("iteration cache + vectorized", f"{new_us:.0f}", f"{speedup:.1f}x")
    emit(
        "TAB-ITERCORE: shared iteration cache vs seed inner loop "
        f"(40-node medium instance, {ITERATIONS} iterations, "
        f"median over {n_chunks} interleaved chunks)",
        table.render(),
    )

    # machine-readable twin of the table above, in the repro.metrics/1
    # schema, so CI can archive BENCH_*.json artifacts across runs
    inst = Instrumentation()
    for ref_chunk, new_chunk in zip(ref_times, new_times):
        inst.registry.histogram("chunk.reference.seconds").observe(ref_chunk)
        inst.registry.histogram("chunk.cached.seconds").observe(new_chunk)
    inst.gauge("speedup_median", speedup)
    inst.gauge("us_per_iteration.reference", ref_us)
    inst.gauge("us_per_iteration.cached", new_us)
    inst.count("iterations", ITERATIONS)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_ITERCORE.json",
        bench="TAB-ITERCORE",
        iterations=ITERATIONS,
        chunk_size=chunk,
        smoke=SMOKE,
    )

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP
