#!/usr/bin/env python
"""Benchmark regression gate: compare fresh BENCH_*.json against baselines.

CI produces fresh ``benchmarks/results/BENCH_*.json`` documents (the
``repro.metrics/1`` schema) on every run; this script compares them against
the committed ``benchmarks/baselines/`` copies and fails only on structural
regressions a shared runner can reliably detect:

* a fresh document or a baseline counter/gauge/histogram going missing,
* an *invariant* (iteration counts, solve-call counters, histogram sample
  counts -- anything that is a deterministic property of the algorithm, not
  of the clock) drifting by more than ``--tolerance`` in either direction.

Wall-clock quantities are deliberately **not** gated: shared CI runners are
noisy-neighbour machines, so every metric whose name mentions ``seconds`` or
``us_per`` is reported but never failed on.  Dedicated-host timing
enforcement lives in the benches themselves (their smoke-mode env vars
disable it in CI, see ITERCORE_SMOKE / PARALLEL_SMOKE).

*Speedup ratios are the exception.*  A ``speedup.*`` gauge is dimensionless
-- both sides of the ratio ran on the same machine seconds apart, so
noisy-neighbour drift largely cancels -- and a parallel backend that
silently went 10x slower than serial is exactly the regression this suite
exists to catch (TAB-PARALLEL once sat at 0.09x without a gate noticing).
Speedup gauges are therefore gated with their own generous
``--speedup-tolerance`` (default 3x either way) instead of being exempt.

Usage::

    python benchmarks/check_regression.py \
        --results benchmarks/results --baselines benchmarks/baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

GATED_DOCUMENTS = [
    "BENCH_ITERCORE.json",
    "BENCH_PARALLEL.json",
    "BENCH_CHURN.json",
    "BENCH_SCALE.json",
    "BENCH_SERVE.json",
    "BENCH_ASYNC.json",
    "BENCH_PLACEMENT.json",
]

# substrings marking wall-clock metrics: reported, never gated
TIMING_MARKERS = ("seconds", "us_per")


def _is_timing(name: str) -> bool:
    return any(marker in name for marker in TIMING_MARKERS)


def _is_speedup(name: str) -> bool:
    """Dimensionless ratio gauges: gated, generously.

    ``speedup.*`` (serial/parallel ratios) and ``slope.*`` (the scale
    ladder's log-log time-vs-work-cells exponent) are both ratios of
    same-machine timings, so noisy-neighbour drift cancels; neither may
    hide behind the wall-clock exemption -- a slope creeping back to 1.0
    is the per-commodity dispatch handicap returning.  ``serve.*`` gauges
    (the serving bench's events/sec, latency quantiles, batch shape) join
    them: each is a whole-run aggregate of one machine's clock, so the
    generous gate catches a daemon going 10x slower without flaking on
    runner noise.
    """
    return (
        name.startswith("speedup")
        or name.startswith("slope")
        or name.startswith("serve.")
    )


def _ratio_ok(fresh: float, base: float, tolerance: float) -> bool:
    """Two invariants agree if neither exceeds the other by > tolerance x."""
    if base == 0.0 or fresh == 0.0:
        return base == fresh
    ratio = fresh / base
    return 1.0 / tolerance <= ratio <= tolerance


def _load(path: Path) -> Dict[str, Any]:
    with path.open() as handle:
        return json.load(handle)


def compare_document(
    name: str,
    fresh: Dict[str, Any],
    base: Dict[str, Any],
    tolerance: float,
    speedup_tolerance: float = 3.0,
) -> List[str]:
    """All regressions of one fresh document vs its baseline."""
    problems: List[str] = []

    if fresh.get("schema") != base.get("schema"):
        problems.append(
            f"{name}: schema changed "
            f"({base.get('schema')!r} -> {fresh.get('schema')!r})"
        )
        return problems

    fresh_smoke = bool(fresh.get("context", {}).get("smoke", False))
    base_smoke = bool(base.get("context", {}).get("smoke", False))
    if fresh_smoke != base_smoke:
        problems.append(
            f"{name}: smoke-mode mismatch (baseline smoke={base_smoke}, "
            f"fresh smoke={fresh_smoke}); regenerate the baseline with the "
            f"same *_SMOKE environment the CI job uses"
        )
        return problems

    for counter, base_value in base.get("counters", {}).items():
        if _is_timing(counter):
            continue
        fresh_value = fresh.get("counters", {}).get(counter)
        if fresh_value is None:
            problems.append(f"{name}: counter {counter!r} disappeared")
        elif not _ratio_ok(float(fresh_value), float(base_value), tolerance):
            problems.append(
                f"{name}: counter {counter!r} moved {base_value:g} -> "
                f"{fresh_value:g} (beyond {tolerance:g}x tolerance)"
            )

    for gauge, base_value in base.get("gauges", {}).items():
        gate = speedup_tolerance if _is_speedup(gauge) else tolerance
        if _is_timing(gauge) and not _is_speedup(gauge):
            continue
        fresh_value = fresh.get("gauges", {}).get(gauge)
        if fresh_value is None:
            problems.append(f"{name}: gauge {gauge!r} disappeared")
        elif not _ratio_ok(float(fresh_value), float(base_value), gate):
            problems.append(
                f"{name}: gauge {gauge!r} moved {base_value:g} -> "
                f"{fresh_value:g} (beyond {gate:g}x tolerance)"
            )

    # histograms: the sample *count* is an algorithmic invariant (how many
    # chunks ran); the observed values are wall-clock and stay ungated
    for hist, base_summary in base.get("histograms", {}).items():
        fresh_summary = fresh.get("histograms", {}).get(hist)
        if fresh_summary is None:
            problems.append(f"{name}: histogram {hist!r} disappeared")
            continue
        base_count = float(base_summary.get("count", 0))
        fresh_count = float(fresh_summary.get("count", 0))
        if not _ratio_ok(fresh_count, base_count, tolerance):
            problems.append(
                f"{name}: histogram {hist!r} sample count moved "
                f"{base_count:g} -> {fresh_count:g} "
                f"(beyond {tolerance:g}x tolerance)"
            )

    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        type=Path,
        default=Path(__file__).resolve().parent / "results",
        help="directory holding the freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=Path(__file__).resolve().parent / "baselines",
        help="directory holding the committed baseline BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="max allowed ratio (either direction) for gated invariants",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=3.0,
        help="max allowed ratio (either direction) for dimensionless "
        "speedup.* gauges; generous because chunk medians still wobble "
        "on shared runners, strict enough to catch a backend going 10x "
        "slower than serial",
    )
    parser.add_argument(
        "--documents",
        nargs="+",
        choices=GATED_DOCUMENTS,
        default=GATED_DOCUMENTS,
        help="gate only these documents (CI jobs that run a subset of the "
        "benches pass the subset they produced; default: all)",
    )
    args = parser.parse_args(argv)

    if args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")
    if args.speedup_tolerance < 1.0:
        parser.error("--speedup-tolerance must be >= 1.0")

    problems: List[str] = []
    checked = 0
    for document in args.documents:
        baseline_path = args.baselines / document
        results_path = args.results / document
        if not baseline_path.exists():
            print(f"note: no baseline for {document}; skipping")
            continue
        if not results_path.exists():
            problems.append(
                f"{document}: baseline exists but the fresh result is missing "
                f"(expected {results_path}) -- did the bench fail to run?"
            )
            continue
        checked += 1
        problems.extend(
            compare_document(
                document,
                _load(results_path),
                _load(baseline_path),
                args.tolerance,
                args.speedup_tolerance,
            )
        )

    if problems:
        print(f"benchmark regression gate: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    print(
        f"benchmark regression gate: OK "
        f"({checked} document(s) within {args.tolerance:g}x tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
