"""TAB-CHURN -- incremental delta apply vs full rebuild, per event class.

The paper's algorithm is built to "adapt to changes" in demand and capacity
(Sec. V); the delta core (``repro.core.delta``) turns each online event into
an epoch patch instead of recompiling the world.  This bench replays a mixed
churn trace on the largest layered workload and times, for every event, the
incremental path (``compile_event`` + ``apply_delta``, plans spliced) against
the legacy full rebuild (``apply_event`` + ``build_extended_network``, plans
rebuilt) -- asserting bit-identity of the resulting models at every step.

Timing gates (dedicated bench host only, CHURN_SMOKE=1 drops them):

* the scalar event classes -- ``DemandChange``/``CapacityChange``, the
  paper's Section V adaptation case -- must apply >= 5x faster than a full
  rebuild per single event, and
* the whole-trace aggregate (structural events included) must clear 2x.

Structural classes are reported but not individually gated: the bit-identity
contract forces the spliced network onto the same compacted canonical layout
a from-scratch build produces, so a structural splice still pays O(V + E)
object layout (it skips only the per-commodity re-derivation); its win is
real but bounded, and grows with the commodity count.
"""

from __future__ import annotations

import os
import statistics
import time
from collections import defaultdict
from pathlib import Path

from conftest import emit

from repro.analysis import TableBuilder
from repro.core.delta import apply_delta, compile_event, diff_extended_networks
from repro.core.transform import build_extended_network
from repro.obs import Instrumentation, write_metrics_json
from repro.online.rebuild import apply_event
from repro.scenarios import scenario

NUM_NODES = 120
NUM_COMMODITIES = 12
NUM_EVENTS = 60
REPEATS = 3  # timing is min-of-REPEATS; correctness is every-event

MIN_SCALAR_SPEEDUP = 5.0  # DemandChange / CapacityChange, per single event
MIN_AGGREGATE_SPEEDUP = 2.0  # whole trace, structural events included

SCALAR_CLASSES = ("DemandChange", "CapacityChange")

# CI smoke mode, matching ITERCORE_SMOKE / PARALLEL_SMOKE: shared runners
# keep the bit-identity assertions but not the wall-clock bars
CHURN_SMOKE = os.environ.get("CHURN_SMOKE", "") == "1"
if CHURN_SMOKE:
    NUM_NODES, NUM_COMMODITIES, NUM_EVENTS = 20, 4, 12

# the catalog entries pin the historical seeds (network 17, trace 18), so
# the committed BENCH_CHURN.json baselines stay bit-for-bit valid
SCENARIO_NAME = "churn-smoke-20" if CHURN_SMOKE else "churn-120"


def _force_plans(ext) -> None:
    ext.flow_plans
    ext.gamma_plans
    ext.merged_gamma_plan


def _carried_plans(old_ext, new_ext) -> int:
    """How many of the new epoch's flow plans were remapped, not rebuilt."""
    old_ids = {id(p.gains) for p in (old_ext._flow_plans or [])}
    return sum(1 for p in new_ext._flow_plans or [] if id(p.gains) in old_ids)


def test_churn_delta_vs_full_rebuild(benchmark):
    compiled = scenario(SCENARIO_NAME).compile()
    network = compiled.network
    events = compiled.events
    assert len(events) == NUM_EVENTS

    def run_experiment():
        ext = build_extended_network(network)
        _force_plans(ext)
        inc_times = defaultdict(list)
        full_times = defaultdict(list)
        compile_times = defaultdict(list)
        carried_total = 0
        structural_events = 0
        for event in events:
            kind = type(event).__name__
            base_network = ext.stream_network

            # compile is pure: min-of-REPEATS, then one more for the keeper
            compiles = []
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                delta = compile_event(ext, event)
                compiles.append(time.perf_counter() - t0)
            t_compile = min(compiles)

            if delta.structural:
                # structural apply leaves the base epoch untouched, so it
                # can repeat too; every repeat re-splices plans
                applies = []
                for _ in range(REPEATS):
                    t0 = time.perf_counter()
                    applied = apply_delta(ext, delta)
                    _force_plans(applied.ext)
                    applies.append(time.perf_counter() - t0)
                t_apply = min(applies)
            else:
                # scalar apply mutates in place (epoch bump): single shot
                t0 = time.perf_counter()
                applied = apply_delta(ext, delta)
                _force_plans(applied.ext)
                t_apply = time.perf_counter() - t0

            fulls = []
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                result = apply_event(base_network, event)
                reference = build_extended_network(
                    result.network, require_connected=False
                )
                _force_plans(reference)
                fulls.append(time.perf_counter() - t0)
            t_full = min(fulls)

            # correctness in every mode: the spliced epoch is bit-identical
            # to the from-scratch rebuild, plans included
            diffs = diff_extended_networks(
                applied.ext, reference, compare_plans=True
            )
            assert diffs == [], f"{kind}: {diffs}"

            if delta.structural:
                structural_events += 1
                carried_total += _carried_plans(ext, applied.ext)

            compile_times[kind].append(t_compile)
            inc_times[kind].append(t_compile + t_apply)
            full_times[kind].append(t_full)
            ext = applied.ext

        assert ext.epoch == len(events)
        return inc_times, full_times, compile_times, carried_total, structural_events

    inc_times, full_times, compile_times, carried, structural_events = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )

    # every class the generator can draw showed up in the trace
    assert len(inc_times) == 6, sorted(inc_times)
    # the splice fast path fired: clean commodities' plans were remapped,
    # not rebuilt (a broken index map degrades every splice to O(problem))
    assert structural_events > 0
    assert carried > 0

    speedups = {}
    table = TableBuilder(
        ["event class", "n", "inc ms/event", "full ms/event", "speedup"]
    )
    total_inc = total_full = 0.0
    for kind in sorted(inc_times):
        inc_ms = 1e3 * statistics.median(inc_times[kind])
        full_ms = 1e3 * statistics.median(full_times[kind])
        speedups[kind] = full_ms / inc_ms
        total_inc += sum(inc_times[kind])
        total_full += sum(full_times[kind])
        table.add_row(
            kind,
            len(inc_times[kind]),
            f"{inc_ms:.3f}",
            f"{full_ms:.3f}",
            f"{speedups[kind]:.2f}x",
        )
    aggregate = total_full / total_inc
    table.add_row("aggregate (trace)", len(events), f"{1e3 * total_inc:.1f}",
                  f"{1e3 * total_full:.1f}", f"{aggregate:.2f}x")
    emit(
        "TAB-CHURN: incremental delta apply vs full rebuild "
        f"({NUM_NODES} nodes, {NUM_COMMODITIES} commodities, "
        f"{len(events)} events" + (", SMOKE)" if CHURN_SMOKE else ")"),
        table.render(),
    )

    # machine-readable twin in the repro.metrics/1 schema for CI artifacts
    # and the benchmark regression gate
    inst = Instrumentation()
    inst.count("events.total", len(events))
    for kind in sorted(inc_times):
        inst.count(f"events.{kind}", len(inc_times[kind]))
        for seconds in inc_times[kind]:
            inst.registry.histogram(f"event.{kind}.incremental.seconds").observe(
                seconds
            )
        for seconds in full_times[kind]:
            inst.registry.histogram(f"event.{kind}.full.seconds").observe(seconds)
        inst.gauge(f"speedup_median.{kind}", speedups[kind])
        inst.gauge(
            f"us_per_event.{kind}.incremental",
            1e6 * statistics.median(inc_times[kind]),
        )
        inst.gauge(
            f"us_per_event.{kind}.compile",
            1e6 * statistics.median(compile_times[kind]),
        )
        inst.gauge(
            f"us_per_event.{kind}.full",
            1e6 * statistics.median(full_times[kind]),
        )
    inst.gauge("speedup_aggregate", aggregate)
    inst.count("plans.carried", carried)
    inst.count("events.structural", structural_events)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_CHURN.json",
        bench="TAB-CHURN",
        num_nodes=NUM_NODES,
        num_commodities=NUM_COMMODITIES,
        num_events=len(events),
        repeats=REPEATS,
        smoke=CHURN_SMOKE,
    )

    if not CHURN_SMOKE:
        for kind in SCALAR_CLASSES:
            assert speedups[kind] >= MIN_SCALAR_SPEEDUP, (
                f"{kind}: {speedups[kind]:.2f}x < {MIN_SCALAR_SPEEDUP}x"
            )
        assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
            f"aggregate {aggregate:.2f}x < {MIN_AGGREGATE_SPEEDUP}x"
        )
