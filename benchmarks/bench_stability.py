"""TAB-STAB -- data-plane stability at the optimised operating point.

The paper's definition of success for the continuous problem: an algorithm
"is stable if it is able to deliver in the long run the injected flow at
rate a_j at source s_j".  This bench *executes* the converged routing on the
fluid data plane for the Figure-4 instance under three traffic regimes:

* arrivals exactly at the admitted rates ``a_j``;
* raw offered load ``lambda_j`` (no admission control);
* bursty traffic shaped by the token-bucket admission controller.

Shape assertions: the admitted-rate and shaped regimes keep queues bounded
and deliver ~``a_j``; the uncontrolled regime grows backlog without bound
while delivering no more -- the quantitative case for the admission-control
half of the paper's contribution.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro import AdmissionController, GradientAlgorithm, GradientConfig
from repro.analysis import TableBuilder
from repro.dataplane import FluidDataPlane
from repro.scenarios import constant_trace, onoff_trace

NUM_SLOTS = 3000


def test_dataplane_stability(benchmark, figure4_ext):
    def run_experiment():
        solution = GradientAlgorithm(
            figure4_ext, GradientConfig(eta=0.04, max_iterations=2000)
        ).run().solution
        plane = FluidDataPlane(figure4_ext, solution.routing)
        admitted = solution.admitted_by_name
        offered = {
            view.name: view.max_rate for view in figure4_ext.commodities
        }
        controller = AdmissionController(solution, burst_seconds=3.0)

        regimes = {}
        regimes["admitted rates"] = plane.run(
            {name: constant_trace(rate, NUM_SLOTS) for name, rate in admitted.items()}
        )
        regimes["raw offered load"] = plane.run(
            {name: constant_trace(rate, NUM_SLOTS) for name, rate in offered.items()}
        )
        bursty = {
            name: onoff_trace(
                peak_rate=3.0 * offered[name],
                num_slots=NUM_SLOTS,
                on_probability=min(0.9, offered[name] / (3.0 * offered[name])),
                seed=11 + i,
            )
            for i, name in enumerate(offered)
        }
        shaped = {
            name: controller.shape(name, trace).admitted
            for name, trace in bursty.items()
        }
        regimes["bursty, token-bucket shaped"] = plane.run(shaped)
        return solution, regimes

    solution, regimes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    admitted_total = float(np.sum(solution.admitted))
    table = TableBuilder(
        [
            "traffic regime",
            "delivered rate (sum)",
            "vs admitted",
            "final backlog",
            "backlog growth/slot",
            "stable",
        ]
    )
    for label, result in regimes.items():
        delivered = sum(result.delivered_rates.values())
        table.add_row(
            label,
            delivered,
            f"{delivered / admitted_total:.1%}",
            result.total_backlog,
            f"{result.queue_growth_rate():.3f}",
            "yes" if result.is_stable() else "NO",
        )
    emit(
        "TAB-STAB: executing the converged routing on the fluid data plane "
        f"(admitted total = {admitted_total:.2f})",
        table.render(),
    )

    at_rates = regimes["admitted rates"]
    raw = regimes["raw offered load"]
    shaped = regimes["bursty, token-bucket shaped"]

    # the paper's stability criterion holds at the operating point
    assert at_rates.is_stable()
    assert sum(at_rates.delivered_rates.values()) >= 0.97 * admitted_total
    # uncontrolled overload: unbounded backlog, no extra delivery
    assert not raw.is_stable()
    assert raw.queue_growth_rate() > 0
    assert sum(raw.delivered_rates.values()) <= 1.1 * admitted_total
    # shaping restores stability for bursty inputs
    assert shaped.is_stable(growth_ratio_tolerance=0.25)
    assert shaped.queue_growth_rate() < raw.queue_growth_rate()
