"""TAB-SERVE -- admission-control-as-a-service throughput and latency.

The serve daemon (``repro.serve``) puts the delta core behind a TCP
protocol: requests coalesce inside a batch window, each drained batch is
applied as few ``ProblemDelta``s, refined by the warm gradient engine, and
published only after the invariant audit passes.  This bench boots the
daemon on the 120-node churn workload, replays a mixed churn trace through
the pipelined client driver, and records sustained events/sec plus
admission-decision latency quantiles into ``BENCH_SERVE.json``.

Correctness in every mode: zero request errors, zero epoch-validation
failures (every published epoch passed ``InvariantChecker``), and the
daemon reports healthy after the replay.

Timing gates (dedicated bench host only, SERVE_SMOKE=1 drops them):

* sustained throughput >= 200 events/sec through one pipelined connection,
* p99 admission-decision latency (request hits the socket -> response
  read) under 50 ms,

with the paper-scale setup: 120 nodes, 12 commodities, 8 workers, 20 ms
batch window.  The daemon is offered 8 workers through the size-aware
backend (``workers=8, backend="auto"``); at this problem size the auto
mode keeps the iteration serial -- sharding 12 commodities across a pool
costs more than it saves (the regression PR 4's auto selection exists to
prevent) -- and the worker budget engages as the model grows.

The trace is a *serving* mix: rate adaptation (demand/capacity, the
paper's Section V case) dominates, with session churn and failures as the
structural minority.  Scalar events coalesce into merged deltas, so the
steady-state cost per batch is one structural splice plus one refine;
that is what makes the latency bar reachable.
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import emit

from repro.analysis import TableBuilder
from repro.obs import Instrumentation, write_metrics_json
from repro.options import SolveOptions
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import ServeClient, replay_trace
from repro.scenarios import SERVE_WEIGHTS, scenario

NUM_NODES = 120
NUM_COMMODITIES = 12
NUM_EVENTS = 240

WORKERS: object = 8
BATCH_WINDOW = 0.020  # seconds
# pipeline > max_batch on purpose: the spare in-flight requests mean every
# batch hits the size cap (which returns immediately) instead of expiring
# the full window, so the saturated cycle is exec-bound, not window-bound
MAX_BATCH = 20
PIPELINE = 32  # client-side in-flight requests
REFINE_ITERATIONS = 6
WARMUP_ITERATIONS = 200

# the serving mix (SERVE_WEIGHTS, shared with the scenario catalog):
# demand/capacity adaptation dominates (merged into few scalar deltas per
# batch); arrivals/departures/failures are the structural minority that
# pays a splice each
assert SERVE_WEIGHTS["demand"] == 8.0  # the catalog owns the mix now

MIN_EVENTS_PER_SEC = 200.0
MAX_P99_MS = 50.0
ROUNDS = 2  # timing gates take the best round (correctness holds on all)

# CI smoke mode, matching CHURN_SMOKE and friends: shared runners keep the
# correctness assertions (zero errors, every epoch validated) but not the
# wall-clock bars; the workload shrinks so the job stays fast
SERVE_SMOKE = os.environ.get("SERVE_SMOKE", "") == "1"
if SERVE_SMOKE:
    NUM_NODES, NUM_COMMODITIES, NUM_EVENTS = 30, 6, 200
    WORKERS = None  # serial backend; shared runners have no spare cores
    BATCH_WINDOW = 0.010
    REFINE_ITERATIONS = 4
    WARMUP_ITERATIONS = 80
    ROUNDS = 1  # no timing gates in smoke, so no best-of filtering either

# the catalog entries pin the historical seeds (network 21, trace 22), so
# the committed BENCH_SERVE.json baselines stay bit-for-bit valid
SCENARIO_NAME = "serve-smoke-30" if SERVE_SMOKE else "serve-mix-120"


def test_serve_throughput(benchmark):
    compiled = scenario(SCENARIO_NAME).compile()
    network = compiled.network
    events = compiled.events
    assert len(events) == NUM_EVENTS
    config = ServeConfig(
        batch_window=BATCH_WINDOW,
        max_batch=MAX_BATCH,
        refine_iterations=REFINE_ITERATIONS,
        warmup_iterations=WARMUP_ITERATIONS,
        validate_epochs=True,
    )
    options = (
        SolveOptions(method="gradient", workers=WORKERS, backend="auto")
        if WORKERS
        else None
    )

    def run_once():
        thread = ServerThread(network, config=config, options=options)
        port = thread.start()
        try:
            with ServeClient("127.0.0.1", port) as client:
                report = replay_trace(client, events, pipeline=PIPELINE)
                stats = client.stats()
        finally:
            thread.stop()
        return report, stats

    def run_experiment():
        # best-of-N over fresh daemons: correctness must hold on *every*
        # round (asserted below); the timing gates take the best round,
        # which filters one-off scheduler/GC noise on shared hosts without
        # hiding a real regression (a regression slows every round)
        return [run_once() for __ in range(ROUNDS)]

    rounds = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for round_report, round_stats in rounds:
        assert round_report.events == len(events)
        assert round_report.errors == 0, f"{round_report.errors} request errors"
        assert round_stats["stats"]["validation_failures"] == 0, (
            "published epochs failed the invariant audit"
        )
    report, stats = min(rounds, key=lambda pair: pair[0].p99_ms)

    # correctness in every mode
    counters = stats["stats"]
    assert stats["validated"] is True  # the final epoch carries a passed audit
    assert stats["healthy"] is True
    assert stats["draining"] is False
    assert counters["batches"] >= 1
    assert report.final_epoch >= 1

    batches = counters["batches"]
    mean_batch = report.events / batches
    table = TableBuilder(["metric", "value"])
    table.add_row("events replayed", report.events)
    table.add_row("events/sec", f"{report.events_per_second:.1f}")
    table.add_row("latency p50", f"{report.p50_ms:.1f} ms")
    table.add_row("latency p99", f"{report.p99_ms:.1f} ms")
    table.add_row("batches", batches)
    table.add_row("mean batch size", f"{mean_batch:.1f}")
    table.add_row("final epoch", report.final_epoch)
    table.add_row("admitted / rejected", f"{report.accepted} / {report.rejected}")
    emit(
        "TAB-SERVE: admission daemon throughput "
        f"({NUM_NODES} nodes, {NUM_COMMODITIES} commodities, "
        f"{len(events)} events, window {1e3 * BATCH_WINDOW:g} ms"
        + (", SMOKE)" if SERVE_SMOKE else ")"),
        table.render(),
    )

    # machine-readable twin (repro.metrics/1) for CI artifacts and the
    # regression gate; serve.* gauges are dimensionless-ish run properties
    # gated like speedup.* (generous tolerance), the latency histogram's
    # sample count is the deterministic invariant
    inst = Instrumentation()
    inst.count("events.total", report.events)
    inst.count("events.accepted", report.accepted)
    inst.count("events.rejected", report.rejected)
    for seconds in report.latencies:
        inst.registry.histogram("serve.request.seconds").observe(seconds)
    inst.gauge("serve.events_per_sec", report.events_per_second)
    inst.gauge("serve.latency_p50_ms", report.p50_ms)
    inst.gauge("serve.latency_p99_ms", report.p99_ms)
    inst.gauge("serve.batches", float(batches))
    inst.gauge("serve.mean_batch_size", mean_batch)
    inst.gauge("serve.final_epoch", float(report.final_epoch))
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_SERVE.json",
        bench="TAB-SERVE",
        num_nodes=NUM_NODES,
        num_commodities=NUM_COMMODITIES,
        num_events=len(events),
        batch_window=BATCH_WINDOW,
        pipeline=PIPELINE,
        workers=WORKERS or 1,
        smoke=SERVE_SMOKE,
    )

    if not SERVE_SMOKE:
        assert report.events_per_second >= MIN_EVENTS_PER_SEC, (
            f"{report.events_per_second:.1f} events/s < {MIN_EVENTS_PER_SEC}"
        )
        assert report.p99_ms <= MAX_P99_MS, (
            f"p99 {report.p99_ms:.1f} ms > {MAX_P99_MS} ms"
        )


def test_serve_diurnal_soak():
    """Serving soak against a non-stationary day/night demand curve.

    Replays the ``serve-diurnal-30`` scenario (staggered sinusoidal
    multipliers per commodity) through a live daemon: pure correctness --
    zero request errors, every published epoch audited -- no timing
    gates, so it runs identically in smoke and full mode.
    """
    compiled = scenario("serve-diurnal-30").compile()
    config = ServeConfig(
        batch_window=BATCH_WINDOW,
        max_batch=MAX_BATCH,
        refine_iterations=REFINE_ITERATIONS,
        warmup_iterations=WARMUP_ITERATIONS,
        validate_epochs=True,
    )
    thread = ServerThread(compiled.network, config=config)
    port = thread.start()
    try:
        with ServeClient("127.0.0.1", port) as client:
            report = replay_trace(client, compiled.events, pipeline=PIPELINE)
            stats = client.stats()
    finally:
        thread.stop()

    assert report.events == len(compiled.events)
    assert report.errors == 0, f"{report.errors} request errors"
    assert report.rejected == 0  # demand drift is never rejected
    assert stats["stats"]["validation_failures"] == 0
    assert stats["healthy"] is True
    emit(
        "TAB-SERVE-DIURNAL: day/night soak (serve-diurnal-30, "
        f"{report.events} demand events)",
        f"events/sec {report.events_per_second:.1f}  "
        f"p50 {report.p50_ms:.1f} ms  p99 {report.p99_ms:.1f} ms  "
        f"final epoch {report.final_epoch}",
    )
