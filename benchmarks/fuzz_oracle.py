"""Seed-matrixed differential fuzz sweep (CI smoke; pytest module).

Each seed builds a fresh random paper-style instance (the shared generator
in :mod:`repro.validate.strategies`, the same distribution the property
tests draw from) and cross-checks it two ways:

* **algorithm vs algorithm** -- the calibrated distributed gradient against
  the centralized concave optimum, agreeing within the oracle's utility
  tolerance (the eps-barrier keeps a few percent of headroom by design);
* **backend vs backend** -- the serial engine against ``workers=2``
  process-parallel execution, which must be *bit-identical* (the contract
  of docs/parallelism.md, enforced through the same oracle path).

Every final solution is also run through the invariant checker, so a fuzz
seed that produces a conservation or capacity violation fails loudly even
when the two sides happen to agree with each other.

The seed matrix comes from ``FUZZ_SEEDS`` (comma- or space-separated;
default ``0,1,2,3,4``), which is how CI shards the sweep across jobs::

    FUZZ_SEEDS="0,1,2" python -m pytest benchmarks/fuzz_oracle.py -x -q
"""

from __future__ import annotations

import pytest

from repro.validate import (
    AlgorithmSpec,
    DifferentialOracle,
    calibrated_gradient_config,
)
from repro.validate.strategies import oracle_seed_matrix, small_random_spec
from repro.scenarios import random_stream_network

SEEDS = oracle_seed_matrix()


def _network(seed: int):
    return random_stream_network(small_random_spec(), seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_gradient_matches_concave_optimum(seed):
    report = DifferentialOracle(utility_rtol=0.1).compare(
        _network(seed),
        AlgorithmSpec(method="gradient", config=calibrated_gradient_config()),
        AlgorithmSpec(method="optimal"),
        validate=True,
    )
    assert report.passed, report.summary()
    assert report.validation_passed, report.summary()


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_vs_parallel_bit_identical(seed):
    report = DifferentialOracle().compare_backends(
        _network(seed),
        workers=2,
        config=calibrated_gradient_config(max_iterations=500),
        validate=True,
    )
    assert report.passed, report.summary()
    assert report.bit_identical, report.summary()
    assert report.validation_passed, report.summary()
