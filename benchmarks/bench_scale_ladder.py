"""TAB-SCALE-LADDER -- the asymptotic slope of the commodity-major core.

The object core's per-iteration work is the dense cross product ``J*(E+V)``
work-cells (every commodity visits every extended node and edge), which is
what held the repo at ~100 physical nodes.  The sparse array core
(:mod:`repro.core.state`) walks only the allowed cells, so per-iteration
time should grow **sub-linearly** in ``J*(E+V)`` once sparsity dominates.

This bench climbs a 250 / 1000 / 4000-node ladder (commodity counts 8 / 16
/ 32) at roughly constant per-commodity density, times the production
iteration pipeline on each rung, and fits the log-log slope of
time-per-iteration against dense work-cells between the bottom and top
rungs.  Gate: ``slope < 1.0`` -- a slope creeping back to 1.0 means the
per-commodity dispatch handicap returned.

Bit-identity with the object core rides along: the 40-node Figure-4
workload and a 120-node reference instance run through
``DifferentialOracle.compare_cores`` (every iterate must match bit for
bit), so the rungs can't be fast by being wrong.

CI smoke mode (``SCALE_SMOKE=1``) keeps the identity oracle and a
slope-sanity check but swaps the ladder for 120/250-node rungs -- shared
runners can neither afford the 4000-node rung nor hold a timing gate.
``BENCH_SCALE.json`` lands next to the other bench metrics and is
regression-gated by ``check_regression.py`` (the ``slope.*`` gauge is
dimensionless, gated like ``speedup.*``; rung cell counts are deterministic
invariants).
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

from conftest import emit

from repro import build_extended_network
from repro.analysis import TableBuilder
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.routing import initial_routing
from repro.obs import Instrumentation, write_metrics_json
from repro.validate import DifferentialOracle, calibrated_gradient_config
from repro.scenarios import paper_figure4_network, random_stream_network
from repro.scenarios import RandomNetworkSpec

SMOKE = os.environ.get("SCALE_SMOKE", "") == "1"

# (num_nodes, num_commodities) rungs; smoke keeps two affordable ones
RUNGS = [(120, 4), (250, 8)] if SMOKE else [(250, 8), (1000, 16), (4000, 32)]
ITERATIONS = 15 if SMOKE else 30
LADDER_SEED = 29
MAX_SLOPE = 1.0
ORACLE_ITERATIONS = 120


def _ladder_spec(num_nodes: int, num_commodities: int) -> RandomNetworkSpec:
    """A rung's instance family: layer width scaled so the layer slots
    roughly absorb the node budget, keeping per-commodity density flat
    while the dense cross product grows ~quadratically up the ladder."""
    width = max(3, num_nodes // (num_commodities * 4))
    return RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(4, 6),
        layer_width_range=(width, width + 2),
        extra_edge_probability=0.1,
    )


def _reference_120() -> RandomNetworkSpec:
    return RandomNetworkSpec(
        num_nodes=120,
        num_commodities=6,
        depth_range=(4, 6),
        layer_width_range=(4, 6),
    )


def _time_rung(num_nodes: int, num_commodities: int):
    """Per-iteration seconds of the production pipeline on one rung."""
    network = random_stream_network(
        _ladder_spec(num_nodes, num_commodities), seed=LADDER_SEED
    )
    ext = build_extended_network(network)
    algo = GradientAlgorithm(ext, GradientConfig(eta=0.02))
    routing = initial_routing(ext)
    context = algo.compute_context(routing)
    # warm the lazy plans (level compilation, ModelState construction)
    for _ in range(2):
        routing = algo.step(routing, context=context)
        context = algo.compute_context(routing)
    start = time.perf_counter()
    for _ in range(ITERATIONS):
        routing = algo.step(routing, context=context)
        context = algo.compute_context(routing)
    elapsed = time.perf_counter() - start
    cells = ext.num_commodities * (ext.num_edges + ext.num_nodes)
    return elapsed / ITERATIONS, cells, ext


def test_scale_ladder(benchmark):
    # identity first: the ladder means nothing if the fast core drifts
    oracle = DifferentialOracle()
    config = calibrated_gradient_config(max_iterations=ORACLE_ITERATIONS)
    fig40 = oracle.compare_cores(paper_figure4_network(seed=7), config=config)
    assert fig40.bit_identical and fig40.passed, fig40.summary()
    rand120 = oracle.compare_cores(
        random_stream_network(_reference_120(), seed=11), config=config
    )
    assert rand120.bit_identical and rand120.passed, rand120.summary()

    def run_ladder():
        return [_time_rung(n, j) for n, j in RUNGS]

    results = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    (t_lo, cells_lo, _), (t_hi, cells_hi, _) = results[0], results[-1]
    slope = math.log(t_hi / t_lo) / math.log(cells_hi / cells_lo)

    table = TableBuilder(["rung", "J", "cells J*(E+V)", "us/iteration"])
    for (n, j), (t, cells, ext) in zip(RUNGS, results):
        table.add_row(f"{n} nodes", str(j), f"{cells}", f"{1e6 * t:.0f}")
    table.add_row("slope(t vs cells)", "", "", f"{slope:.3f}")
    emit(
        "TAB-SCALE-LADDER: per-iteration time vs dense work-cells "
        f"({'smoke rungs' if SMOKE else 'full ladder'}, "
        f"{ITERATIONS} timed iterations per rung)",
        table.render(),
    )

    inst = Instrumentation()
    inst.gauge("slope.time_vs_cells", slope)
    for (n, _j), (t, cells, _ext) in zip(RUNGS, results):
        inst.gauge(f"us_per_iteration.rung_{n}", 1e6 * t)
        inst.count(f"cells.rung_{n}", cells)
    inst.gauge("identity.fig40", 1.0 if fig40.bit_identical else 0.0)
    inst.gauge("identity.rand120", 1.0 if rand120.bit_identical else 0.0)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_SCALE.json",
        bench="TAB-SCALE-LADDER",
        rungs=[list(r) for r in RUNGS],
        iterations=ITERATIONS,
        smoke=SMOKE,
    )

    # smoke keeps only a sanity band (adjacent rungs on shared runners are
    # too close to hold a sharp slope); the full ladder enforces the gate
    assert math.isfinite(slope) and slope > 0.0
    if not SMOKE:
        assert slope < MAX_SLOPE, (
            f"per-iteration time grew super-linearly in dense work-cells "
            f"(slope={slope:.3f}); the sparse core is doing dense work"
        )
