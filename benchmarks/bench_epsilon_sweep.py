"""TAB-EPS -- the penalty coefficient trade-off (paper Section 3).

Paper prose: *"The use of penalty functions results in an allocation that is
not strictly identical to the optimal solution ... by selecting eps
appropriately, this standard approach typically results in a solution that
is nearly the optimal solution.  A penalty function may also prevent a node
resource from being completely allocated.  In practice, such remaining
capacity could be used to better accommodate changing demands, or for faster
recovery in the case of node or link failures."*

This bench sweeps eps on the Figure-4 instance and reports the achieved
fraction of the true optimum and the peak node utilization (the headroom the
barrier reserves).  Shape assertions:

* achieved utility increases as eps shrinks (the penalised optimum
  approaches the true one);
* peak utilization increases as eps shrinks (less reserved headroom) --
  the failure-recovery headroom the paper mentions is a real, measurable
  trade-off;
* the paper's eps = 0.2 lands within a few percent of optimal.

The sweep runs at eta = 0.02 rather than Figure 4's 0.04: the smaller the
penalty coefficient, the closer the optimum sits to capacity, where the
barrier's curvature explodes -- stable steps must shrink accordingly (an
interaction the paper leaves implicit in "selecting eps appropriately").
"""

from __future__ import annotations

from conftest import emit

from repro import GradientAlgorithm, GradientConfig
from repro.analysis import TableBuilder
from repro.core.marginals import CostModel
from repro.core.routing import feasibility_report

EPSILONS = [1.0, 0.5, 0.2, 0.05, 0.01]
MAX_ITERATIONS = 6000


def test_epsilon_sweep(benchmark, figure4_ext, figure4_lp):
    optimum = figure4_lp.utility

    def run_sweep():
        rows = []
        for eps in EPSILONS:
            result = GradientAlgorithm(
                figure4_ext,
                GradientConfig(
                    eta=0.02,
                    max_iterations=MAX_ITERATIONS,
                    cost_model=CostModel(eps=eps),
                ),
            ).run()
            report = feasibility_report(figure4_ext, result.solution.routing)
            rows.append(
                {
                    "eps": eps,
                    "utility": result.solution.utility,
                    "fraction": result.solution.utility / optimum,
                    "max_util": report.max_utilization,
                    "feasible": report.feasible,
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["eps", "utility", "of optimal", "peak node utilization", "feasible"]
    )
    for row in rows:
        table.add_row(
            row["eps"],
            row["utility"],
            f"{row['fraction']:.1%}",
            f"{row['max_util']:.3f}",
            "yes" if row["feasible"] else "NO",
        )
    emit(
        f"TAB-EPS: penalty-coefficient sweep on the Figure-4 instance "
        f"(optimal = {optimum:.3f})",
        table.render(),
    )

    by_eps = {row["eps"]: row for row in rows}

    # smaller eps => closer to the true optimum (weakly, small tolerance)
    fractions = [by_eps[eps]["fraction"] for eps in EPSILONS]
    for a, b in zip(fractions, fractions[1:]):
        assert b >= a - 0.01

    # smaller eps => less reserved headroom (peak utilization rises)
    utilizations = [by_eps[eps]["max_util"] for eps in EPSILONS]
    assert utilizations[-1] >= utilizations[0]

    # the paper's choice is nearly optimal
    assert by_eps[0.2]["fraction"] >= 0.93
    # a conservative eps reserves visible headroom
    assert by_eps[1.0]["max_util"] <= 0.99
