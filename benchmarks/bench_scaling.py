"""TAB-SCALE -- behaviour as the network grows (paper's "large scale" claim).

The paper motivates the design with "large scale decentralized stream
processing systems" but only evaluates one 40-node instance.  This bench
quantifies how the approach scales: per-iteration wall time of the
synchronous engine, iterations to reach 95% of optimal, and the per-iteration
message/round cost of the real protocol, for networks from 10 to 80 nodes.

Shape assertions: per-iteration cost grows roughly linearly in the extended
edge count, and convergence (iterations to 95%) stays the same order of
magnitude across sizes -- the step count is governed by eta and the cost
landscape, not directly by N.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro import (
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_lp,
)
from repro.analysis import TableBuilder, iterations_to_fraction
from repro.core.marginals import evaluate_cost
from repro.core.routing import initial_routing
from repro.obs import Instrumentation, write_metrics_json
from repro.parallel import ParallelBackend, ThreadBackend, resolve_backend
from repro.simulation import DistributedGradientRun
from repro.validate import STALENESS_DRIFT_RTOL
from repro.scenarios import random_stream_network
from repro.scenarios import RandomNetworkSpec

SIZES = [10, 20, 40, 80]
MAX_ITERATIONS = 3000

WORKER_SWEEP = [1, 2, 4]
PARALLEL_ITERATIONS = 120
# the auto-selected backend must never lose to serial: that is the whole
# point of size-aware selection (the regression this gate exists for was
# workers=4 running at 0.09x serial)
MIN_AUTO_SPEEDUP = 1.0
STALENESS = 4  # relaxed-mode row: one round-trip per STALENESS + 1 iterations

# CI smoke mode, matching the ITERCORE_SMOKE precedent: shared runners have
# neither 4 dedicated cores nor a stable clock, so PARALLEL_SMOKE=1 shrinks
# the run and keeps only the correctness half (full-trajectory bit-identity)
PARALLEL_SMOKE = os.environ.get("PARALLEL_SMOKE", "") == "1"
if PARALLEL_SMOKE:
    PARALLEL_ITERATIONS = 30


def _make_ext(num_nodes: int):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=3 if num_nodes >= 20 else 2,
        depth_range=(3, 5) if num_nodes < 40 else (4, 6),
        layer_width_range=(2, 3) if num_nodes < 40 else (3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


def test_scaling_with_network_size(benchmark):
    def run_experiment():
        rows = []
        for num_nodes in SIZES:
            ext = _make_ext(num_nodes)
            lp = solve_lp(ext)
            algo = GradientAlgorithm(
                ext,
                GradientConfig(eta=0.04, max_iterations=MAX_ITERATIONS,
                               record_every=10),
            )
            start = time.perf_counter()
            result = algo.run()
            elapsed = time.perf_counter() - start
            per_iteration_us = 1e6 * elapsed / result.iterations

            protocol = DistributedGradientRun(ext, GradientConfig(eta=0.04))
            protocol.load_routing(initial_routing(ext))
            protocol.forecast_phase()
            metrics = protocol.iterate(1)

            rows.append(
                {
                    "nodes": num_nodes,
                    "ext_edges": ext.num_edges,
                    "per_iter_us": per_iteration_us,
                    "hit95": iterations_to_fraction(
                        result.recorded_iterations,
                        result.utilities,
                        lp.utility,
                        0.95,
                    ),
                    "fraction": result.solution.utility / lp.utility,
                    "msgs": metrics.messages,
                    "rounds": metrics.rounds,
                }
            )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "nodes",
            "ext edges",
            "us/iteration",
            "iters to 95%",
            "final of opt",
            "msgs/iter",
            "rounds/iter",
        ]
    )
    for row in rows:
        table.add_row(
            row["nodes"],
            row["ext_edges"],
            f"{row['per_iter_us']:.0f}",
            row["hit95"],
            f"{row['fraction']:.1%}",
            row["msgs"],
            row["rounds"],
        )
    emit("TAB-SCALE: gradient algorithm vs network size", table.render())

    # every size converges close to its optimum
    for row in rows:
        assert row["fraction"] >= 0.90
        assert row["hit95"] is not None

    # per-iteration cost grows sub-quadratically with the edge count
    first, last = rows[0], rows[-1]
    edge_ratio = last["ext_edges"] / first["ext_edges"]
    time_ratio = last["per_iter_us"] / first["per_iter_us"]
    assert time_ratio <= edge_ratio**2

    # iterations-to-95% stays within one order of magnitude across sizes
    hits = [row["hit95"] for row in rows]
    assert max(hits) <= 20 * min(hits)


def _make_parallel_ext():
    """The sharding-friendly instance: wide and commodity-rich.

    Per-commodity work is the parallel axis, so the instance carries more
    commodities than the TAB-SCALE sizes do; 80 physical nodes keeps each
    commodity's per-iteration kernels heavy enough that the two IPC round
    trips per iteration do not dominate.
    """
    spec = RandomNetworkSpec(
        num_nodes=24 if PARALLEL_SMOKE else 80,
        num_commodities=4 if PARALLEL_SMOKE else 8,
        depth_range=(3, 4) if PARALLEL_SMOKE else (4, 6),
        layer_width_range=(2, 3) if PARALLEL_SMOKE else (3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


class _BackendPipeline:
    """One gradient pipeline (serial or any backend), advanced chunk by chunk.

    ``batched=True`` advances through ``backend.advance`` -- the batched
    bounded-staleness dispatch path -- instead of the synchronous
    step/build_context pair, and records one iterate per chunk rather than
    per iteration (batching is precisely the license *not* to materialise
    every intermediate on the master).
    """

    def __init__(self, ext, config, backend=None, batched=False):
        self.algo = GradientAlgorithm(ext, config, backend=backend)
        self.routing = initial_routing(ext)
        self.context = self.algo.compute_context(self.routing)
        self.trajectory = [self.routing.phi.copy()]
        self.batched = batched

    def advance(self, iterations):
        algo = self.algo
        start = time.perf_counter()
        if self.batched:
            self.routing, self.context = algo.backend.advance(
                self.routing, self.context, iterations
            )
            elapsed = time.perf_counter() - start
            self.trajectory.append(self.routing.phi.copy())
            return elapsed
        for _ in range(iterations):
            self.routing = algo.step(self.routing, context=self.context)
            self.context = algo.compute_context(self.routing)
            self.trajectory.append(self.routing.phi.copy())
        return time.perf_counter() - start


def test_parallel_worker_scaling(benchmark):
    """TAB-PARALLEL: every execution backend vs the serial engine.

    Three claims under test:

    * **auto never loses** -- ``workers="auto"`` resolves through
      :func:`repro.parallel.resolve_backend`, which picks serial on hosts or
      instances too small to amortise pool overhead, so its speedup is
      gated at >= 1.0x.  (The bug this bench once documented: a forced
      process pool at 4 workers ran at 0.09x serial.)
    * **synchronous backends change no bits** -- thread, process, and
      whatever auto resolved to must reproduce the serial phi trajectory
      exactly.
    * **batched dispatch trades bounded drift for round-trips** --
      ``staleness=4`` must beat the synchronous process backend (5x fewer
      round-trips) while the final utility stays within the oracle's
      documented STALENESS_DRIFT_RTOL of serial.

    Timing asserts run only outside PARALLEL_SMOKE (dedicated host).
    """
    ext = _make_parallel_ext()
    # record_every bounds a batch span, so the relaxed row needs it > 1;
    # chunk is a multiple so batching engages on every advance() call
    config = GradientConfig(eta=0.04, record_every=10)
    chunk = 10
    n_chunks = PARALLEL_ITERATIONS // chunk

    def run_experiment():
        auto = {w: resolve_backend("auto", w, ext=ext) for w in WORKER_SWEEP}
        named = {
            "thread4": ThreadBackend(workers=4),
            "process4": ParallelBackend(workers=4),
            f"stale{STALENESS}": ParallelBackend(workers=4, staleness=STALENESS),
        }
        rows = {f"auto{w}": backend for w, backend in auto.items()}
        rows.update(named)
        try:
            # warm every pipeline: pool start, lazy plans, allocator churn
            _BackendPipeline(ext, config).advance(2)
            for name, backend in rows.items():
                _BackendPipeline(
                    ext, config, backend=backend,
                    batched=name.startswith("stale"),
                ).advance(2)
            serial = _BackendPipeline(ext, config)
            pipelines = {
                name: _BackendPipeline(
                    ext, config, backend=backend,
                    batched=name.startswith("stale"),
                )
                for name, backend in rows.items()
            }
            # interleaved chunks: each serial/backend pair runs back to back
            # under (nearly) the same machine conditions, so per-chunk ratios
            # are robust to CPU frequency drift across the run
            serial_times = []
            row_times = {name: [] for name in pipelines}
            for _ in range(n_chunks):
                serial_times.append(serial.advance(chunk))
                for name, pipeline in pipelines.items():
                    row_times[name].append(pipeline.advance(chunk))
            return serial, pipelines, serial_times, row_times
        finally:
            for backend in rows.values():
                backend.close()

    serial, pipelines, serial_times, row_times = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    auto_kinds = {
        w: pipelines[f"auto{w}"].algo.backend.name for w in WORKER_SWEEP
    }

    # correctness first: every synchronous backend changes no iterate,
    # bit for bit (auto rows included -- whatever they resolved to)
    for name, pipeline in pipelines.items():
        if name.startswith("stale"):
            continue
        assert len(serial.trajectory) == len(pipeline.trajectory)
        for k, (a, b) in enumerate(zip(serial.trajectory, pipeline.trajectory)):
            assert np.array_equal(a, b), f"{name}: iterate {k} diverged"

    # the relaxed row: bounded drift on the final utility, never bit-drift
    # beyond the documented staleness tolerance
    serial_utility = evaluate_cost(
        ext, serial.routing, config.cost_model
    ).utility
    stale_utility = evaluate_cost(
        ext, pipelines[f"stale{STALENESS}"].routing, config.cost_model
    ).utility
    stale_drift = abs(stale_utility - serial_utility) / max(
        abs(serial_utility), 1e-12
    )
    assert stale_drift <= STALENESS_DRIFT_RTOL, (
        f"staleness={STALENESS} drifted {stale_drift:.2e} "
        f"(bound {STALENESS_DRIFT_RTOL})"
    )

    serial_us = 1e6 * sum(serial_times) / PARALLEL_ITERATIONS
    speedups = {
        name: float(np.median(np.asarray(serial_times) / np.asarray(times)))
        for name, times in row_times.items()
    }
    table = TableBuilder(["backend", "resolved", "us/iteration", "median speedup"])
    table.add_row("serial", "serial", f"{serial_us:.0f}", "1.0x")
    for name, times in row_times.items():
        us = 1e6 * sum(times) / PARALLEL_ITERATIONS
        resolved = (
            auto_kinds[int(name[len("auto"):])]
            if name.startswith("auto")
            else pipelines[name].algo.backend.name
        )
        table.add_row(name, resolved, f"{us:.0f}", f"{speedups[name]:.2f}x")
    emit(
        "TAB-PARALLEL: execution backends vs serial "
        f"({ext.num_commodities} commodities, {PARALLEL_ITERATIONS} iterations, "
        f"median over {n_chunks} interleaved chunks"
        + (", SMOKE)" if PARALLEL_SMOKE else ")"),
        table.render(),
    )

    # machine-readable twin in the repro.metrics/1 schema for CI artifacts
    # and the benchmark regression gate.  Naming is load-bearing:
    # ``speedup.workers<w>`` (the auto rows) is dimensionless and *gated* by
    # check_regression.py's --speedup-tolerance; ``us_per_iteration.*`` and
    # ``chunk.*.seconds`` are wall-clock and exempt.
    inst = Instrumentation()
    for chunk_s in serial_times:
        inst.registry.histogram("chunk.serial.seconds").observe(chunk_s)
    inst.gauge("us_per_iteration.serial", serial_us)
    for name, times in row_times.items():
        for chunk_s in times:
            inst.registry.histogram(f"chunk.{name}.seconds").observe(chunk_s)
        inst.gauge(
            f"us_per_iteration.{name}", 1e6 * sum(times) / PARALLEL_ITERATIONS
        )
    for w in WORKER_SWEEP:
        inst.gauge(f"speedup.workers{w}", speedups[f"auto{w}"])
    inst.count("iterations", PARALLEL_ITERATIONS)
    inst.count("commodities", ext.num_commodities)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_PARALLEL.json",
        bench="TAB-PARALLEL",
        iterations=PARALLEL_ITERATIONS,
        chunk_size=chunk,
        workers_sweep=WORKER_SWEEP,
        staleness=STALENESS,
        stale_drift=stale_drift,
        auto_resolution={str(w): auto_kinds[w] for w in WORKER_SWEEP},
        smoke=PARALLEL_SMOKE,
    )

    if not PARALLEL_SMOKE:
        # the headline fix: auto-selected workers=4 must not lose to serial
        assert speedups["auto4"] >= MIN_AUTO_SPEEDUP
        # batching exists to cut round-trips; 5x fewer must not be slower
        assert speedups[f"stale{STALENESS}"] >= speedups["process4"]
