"""TAB-SCALE -- behaviour as the network grows (paper's "large scale" claim).

The paper motivates the design with "large scale decentralized stream
processing systems" but only evaluates one 40-node instance.  This bench
quantifies how the approach scales: per-iteration wall time of the
synchronous engine, iterations to reach 95% of optimal, and the per-iteration
message/round cost of the real protocol, for networks from 10 to 80 nodes.

Shape assertions: per-iteration cost grows roughly linearly in the extended
edge count, and convergence (iterations to 95%) stays the same order of
magnitude across sizes -- the step count is governed by eta and the cost
landscape, not directly by N.
"""

from __future__ import annotations

import time

from conftest import emit

from repro import (
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_lp,
)
from repro.analysis import TableBuilder, iterations_to_fraction
from repro.core.routing import initial_routing
from repro.simulation import DistributedGradientRun
from repro.workloads import random_stream_network
from repro.workloads.random_network import RandomNetworkSpec

SIZES = [10, 20, 40, 80]
MAX_ITERATIONS = 3000


def _make_ext(num_nodes: int):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=3 if num_nodes >= 20 else 2,
        depth_range=(3, 5) if num_nodes < 40 else (4, 6),
        layer_width_range=(2, 3) if num_nodes < 40 else (3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


def test_scaling_with_network_size(benchmark):
    def run_experiment():
        rows = []
        for num_nodes in SIZES:
            ext = _make_ext(num_nodes)
            lp = solve_lp(ext)
            algo = GradientAlgorithm(
                ext,
                GradientConfig(eta=0.04, max_iterations=MAX_ITERATIONS,
                               record_every=10),
            )
            start = time.perf_counter()
            result = algo.run()
            elapsed = time.perf_counter() - start
            per_iteration_us = 1e6 * elapsed / result.iterations

            protocol = DistributedGradientRun(ext, GradientConfig(eta=0.04))
            protocol.load_routing(initial_routing(ext))
            protocol.forecast_phase()
            metrics = protocol.iterate(1)

            rows.append(
                {
                    "nodes": num_nodes,
                    "ext_edges": ext.num_edges,
                    "per_iter_us": per_iteration_us,
                    "hit95": iterations_to_fraction(
                        result.recorded_iterations,
                        result.utilities,
                        lp.utility,
                        0.95,
                    ),
                    "fraction": result.solution.utility / lp.utility,
                    "msgs": metrics.messages,
                    "rounds": metrics.rounds,
                }
            )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "nodes",
            "ext edges",
            "us/iteration",
            "iters to 95%",
            "final of opt",
            "msgs/iter",
            "rounds/iter",
        ]
    )
    for row in rows:
        table.add_row(
            row["nodes"],
            row["ext_edges"],
            f"{row['per_iter_us']:.0f}",
            row["hit95"],
            f"{row['fraction']:.1%}",
            row["msgs"],
            row["rounds"],
        )
    emit("TAB-SCALE: gradient algorithm vs network size", table.render())

    # every size converges close to its optimum
    for row in rows:
        assert row["fraction"] >= 0.90
        assert row["hit95"] is not None

    # per-iteration cost grows sub-quadratically with the edge count
    first, last = rows[0], rows[-1]
    edge_ratio = last["ext_edges"] / first["ext_edges"]
    time_ratio = last["per_iter_us"] / first["per_iter_us"]
    assert time_ratio <= edge_ratio**2

    # iterations-to-95% stays within one order of magnitude across sizes
    hits = [row["hit95"] for row in rows]
    assert max(hits) <= 20 * min(hits)
