"""TAB-SCALE -- behaviour as the network grows (paper's "large scale" claim).

The paper motivates the design with "large scale decentralized stream
processing systems" but only evaluates one 40-node instance.  This bench
quantifies how the approach scales: per-iteration wall time of the
synchronous engine, iterations to reach 95% of optimal, and the per-iteration
message/round cost of the real protocol, for networks from 10 to 80 nodes.

Shape assertions: per-iteration cost grows roughly linearly in the extended
edge count, and convergence (iterations to 95%) stays the same order of
magnitude across sizes -- the step count is governed by eta and the cost
landscape, not directly by N.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
from conftest import emit

from repro import (
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_lp,
)
from repro.analysis import TableBuilder, iterations_to_fraction
from repro.core.routing import initial_routing
from repro.obs import Instrumentation, write_metrics_json
from repro.parallel import ParallelBackend
from repro.simulation import DistributedGradientRun
from repro.workloads import random_stream_network
from repro.workloads.random_network import RandomNetworkSpec

SIZES = [10, 20, 40, 80]
MAX_ITERATIONS = 3000

WORKER_SWEEP = [1, 2, 4]
PARALLEL_ITERATIONS = 120
MIN_PARALLEL_SPEEDUP = 2.0  # at 4 workers, on the dedicated bench host

# CI smoke mode, matching the ITERCORE_SMOKE precedent: shared runners have
# neither 4 dedicated cores nor a stable clock, so PARALLEL_SMOKE=1 shrinks
# the run and keeps only the correctness half (full-trajectory bit-identity)
PARALLEL_SMOKE = os.environ.get("PARALLEL_SMOKE", "") == "1"
if PARALLEL_SMOKE:
    PARALLEL_ITERATIONS = 30


def _make_ext(num_nodes: int):
    spec = RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=3 if num_nodes >= 20 else 2,
        depth_range=(3, 5) if num_nodes < 40 else (4, 6),
        layer_width_range=(2, 3) if num_nodes < 40 else (3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


def test_scaling_with_network_size(benchmark):
    def run_experiment():
        rows = []
        for num_nodes in SIZES:
            ext = _make_ext(num_nodes)
            lp = solve_lp(ext)
            algo = GradientAlgorithm(
                ext,
                GradientConfig(eta=0.04, max_iterations=MAX_ITERATIONS,
                               record_every=10),
            )
            start = time.perf_counter()
            result = algo.run()
            elapsed = time.perf_counter() - start
            per_iteration_us = 1e6 * elapsed / result.iterations

            protocol = DistributedGradientRun(ext, GradientConfig(eta=0.04))
            protocol.load_routing(initial_routing(ext))
            protocol.forecast_phase()
            metrics = protocol.iterate(1)

            rows.append(
                {
                    "nodes": num_nodes,
                    "ext_edges": ext.num_edges,
                    "per_iter_us": per_iteration_us,
                    "hit95": iterations_to_fraction(
                        result.recorded_iterations,
                        result.utilities,
                        lp.utility,
                        0.95,
                    ),
                    "fraction": result.solution.utility / lp.utility,
                    "msgs": metrics.messages,
                    "rounds": metrics.rounds,
                }
            )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "nodes",
            "ext edges",
            "us/iteration",
            "iters to 95%",
            "final of opt",
            "msgs/iter",
            "rounds/iter",
        ]
    )
    for row in rows:
        table.add_row(
            row["nodes"],
            row["ext_edges"],
            f"{row['per_iter_us']:.0f}",
            row["hit95"],
            f"{row['fraction']:.1%}",
            row["msgs"],
            row["rounds"],
        )
    emit("TAB-SCALE: gradient algorithm vs network size", table.render())

    # every size converges close to its optimum
    for row in rows:
        assert row["fraction"] >= 0.90
        assert row["hit95"] is not None

    # per-iteration cost grows sub-quadratically with the edge count
    first, last = rows[0], rows[-1]
    edge_ratio = last["ext_edges"] / first["ext_edges"]
    time_ratio = last["per_iter_us"] / first["per_iter_us"]
    assert time_ratio <= edge_ratio**2

    # iterations-to-95% stays within one order of magnitude across sizes
    hits = [row["hit95"] for row in rows]
    assert max(hits) <= 20 * min(hits)


def _make_parallel_ext():
    """The sharding-friendly instance: wide and commodity-rich.

    Per-commodity work is the parallel axis, so the instance carries more
    commodities than the TAB-SCALE sizes do; 80 physical nodes keeps each
    commodity's per-iteration kernels heavy enough that the two IPC round
    trips per iteration do not dominate.
    """
    spec = RandomNetworkSpec(
        num_nodes=24 if PARALLEL_SMOKE else 80,
        num_commodities=4 if PARALLEL_SMOKE else 8,
        depth_range=(3, 4) if PARALLEL_SMOKE else (4, 6),
        layer_width_range=(2, 3) if PARALLEL_SMOKE else (3, 5),
    )
    return build_extended_network(random_stream_network(spec, seed=17))


class _BackendPipeline:
    """One gradient pipeline (serial or parallel), advanced chunk by chunk."""

    def __init__(self, ext, config, backend=None):
        self.algo = GradientAlgorithm(ext, config, backend=backend)
        self.routing = initial_routing(ext)
        self.context = self.algo.compute_context(self.routing)
        self.trajectory = [self.routing.phi.copy()]

    def advance(self, iterations):
        algo = self.algo
        start = time.perf_counter()
        for _ in range(iterations):
            self.routing = algo.step(self.routing, context=self.context)
            self.context = algo.compute_context(self.routing)
            self.trajectory.append(self.routing.phi.copy())
        return time.perf_counter() - start


def test_parallel_worker_scaling(benchmark):
    """TAB-PARALLEL: the process-parallel backend vs the serial engine.

    Correctness always: every worker count's full phi trajectory must be
    bit-identical to serial.  Timing only outside PARALLEL_SMOKE: >= 2x
    per-iteration speedup at 4 workers on the dedicated bench host.
    """
    ext = _make_parallel_ext()
    config = GradientConfig(eta=0.04)
    chunk = 10
    n_chunks = PARALLEL_ITERATIONS // chunk

    def run_experiment():
        backends = {w: ParallelBackend(workers=w) for w in WORKER_SWEEP}
        try:
            # warm every pipeline: pool start, lazy plans, allocator churn
            _BackendPipeline(ext, config).advance(2)
            for backend in backends.values():
                _BackendPipeline(ext, config, backend=backend).advance(2)
            serial = _BackendPipeline(ext, config)
            parallel = {
                w: _BackendPipeline(ext, config, backend=backends[w])
                for w in WORKER_SWEEP
            }
            # interleaved chunks: each serial/parallel pair runs back to back
            # under (nearly) the same machine conditions, so per-chunk ratios
            # are robust to CPU frequency drift across the run
            serial_times = []
            parallel_times = {w: [] for w in WORKER_SWEEP}
            for _ in range(n_chunks):
                serial_times.append(serial.advance(chunk))
                for w in WORKER_SWEEP:
                    parallel_times[w].append(parallel[w].advance(chunk))
            return serial, parallel, serial_times, parallel_times
        finally:
            for backend in backends.values():
                backend.close()

    serial, parallel, serial_times, parallel_times = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # correctness first: sharding changes no iterate, bit for bit
    for w in WORKER_SWEEP:
        assert len(serial.trajectory) == len(parallel[w].trajectory)
        for k, (a, b) in enumerate(zip(serial.trajectory, parallel[w].trajectory)):
            assert np.array_equal(a, b), f"workers={w}: iterate {k} diverged"

    serial_us = 1e6 * sum(serial_times) / PARALLEL_ITERATIONS
    speedups = {}
    table = TableBuilder(["backend", "us/iteration", "median speedup"])
    table.add_row("serial", f"{serial_us:.0f}", "1.0x")
    for w in WORKER_SWEEP:
        us = 1e6 * sum(parallel_times[w]) / PARALLEL_ITERATIONS
        speedups[w] = float(
            np.median(np.asarray(serial_times) / np.asarray(parallel_times[w]))
        )
        table.add_row(f"parallel x{w}", f"{us:.0f}", f"{speedups[w]:.2f}x")
    emit(
        "TAB-PARALLEL: process-parallel backend vs serial "
        f"({ext.num_commodities} commodities, {PARALLEL_ITERATIONS} iterations, "
        f"median over {n_chunks} interleaved chunks"
        + (", SMOKE)" if PARALLEL_SMOKE else ")"),
        table.render(),
    )

    # machine-readable twin in the repro.metrics/1 schema for CI artifacts
    # and the benchmark regression gate
    inst = Instrumentation()
    for chunk_s in serial_times:
        inst.registry.histogram("chunk.serial.seconds").observe(chunk_s)
    inst.gauge("us_per_iteration.serial", serial_us)
    for w in WORKER_SWEEP:
        for chunk_s in parallel_times[w]:
            inst.registry.histogram(f"chunk.workers{w}.seconds").observe(chunk_s)
        inst.gauge(f"speedup_median.workers{w}", speedups[w])
        inst.gauge(
            f"us_per_iteration.workers{w}",
            1e6 * sum(parallel_times[w]) / PARALLEL_ITERATIONS,
        )
    inst.count("iterations", PARALLEL_ITERATIONS)
    inst.count("commodities", ext.num_commodities)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    write_metrics_json(
        inst,
        results_dir / "BENCH_PARALLEL.json",
        bench="TAB-PARALLEL",
        iterations=PARALLEL_ITERATIONS,
        chunk_size=chunk,
        workers_sweep=WORKER_SWEEP,
        smoke=PARALLEL_SMOKE,
    )

    if not PARALLEL_SMOKE:
        assert speedups[4] >= MIN_PARALLEL_SPEEDUP
