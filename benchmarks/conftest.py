"""Shared fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` file regenerates one table or figure from the paper (see
DESIGN.md's experiment index) and prints the paper-style rows.  Absolute
numbers depend on the host; the *shape* assertions (who wins, by what rough
factor, monotonicity) encode what the paper reports.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import build_extended_network, solve_lp
from repro.scenarios import paper_figure4_network

FIGURE4_SEED = 7


@pytest.fixture(scope="session")
def figure4_ext():
    return build_extended_network(paper_figure4_network(seed=FIGURE4_SEED))


@pytest.fixture(scope="session")
def figure4_lp(figure4_ext):
    return solve_lp(figure4_ext)


def emit(title: str, body: str) -> None:
    """Print an experiment block and persist it under ``benchmarks/results/``.

    pytest captures stdout unless ``-s`` is given, so every block is also
    written to a file named after the experiment id (the leading token of
    the title) -- the regenerated paper tables survive any capture mode.
    """
    bar = "=" * 78
    block = f"{bar}\n{title}\n{bar}\n{body}\n"
    print("\n" + block)
    slug = title.split(":")[0].strip().lower().replace(" ", "-")
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / f"{slug}.txt").write_text(block)
