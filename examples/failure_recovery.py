#!/usr/bin/env python3
"""Online operation: demand surges, node failures, and warm-start recovery.

The paper motivates the barrier's reserved headroom with "changing demands"
and "faster recovery in the case of node or link failures" (Section 3) but
never simulates them.  This example runs the Figure-4 instance through a
small incident timeline:

* iteration 1000 -- commodity ``stream0`` doubles its offered rate;
* iteration 2000 -- the busiest interior server fails.

After each event the routing state is carried across the rebuilt network
(warm start), hard-capacity feasibility is restored by emergency shedding on
the dummy difference links, and the algorithm re-optimises (with the
adaptive step scale -- failures change the stable step size).

Run:  python examples/failure_recovery.py
"""

from repro import GradientAlgorithm, GradientConfig, build_extended_network
from repro.analysis import TableBuilder, ascii_plot
from repro.online import DemandChange, NodeFailure, OnlineOrchestrator
from repro.scenarios import paper_figure4_network

SURGE_AT = 1000
FAILURE_AT = 2000
HORIZON = 4000


def busiest_interior_server(network) -> str:
    ext = build_extended_network(network)
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.04, max_iterations=SURGE_AT)
    ).run()
    usage = result.solution.extras["node_usage"]
    candidates = [
        node
        for node in ext.nodes
        if node.name.startswith("n")
        and all(node.index != view.source for view in ext.commodities)
    ]
    return max(candidates, key=lambda node: usage[node.index]).name


def main() -> None:
    network = paper_figure4_network(seed=7)
    victim = busiest_interior_server(network)
    surge_commodity = network.commodities[0].name
    surge_rate = 2.0 * network.commodities[0].max_rate
    print(f"workload: {network}")
    print(f"timeline: 2x surge on {surge_commodity!r} @ {SURGE_AT}, "
          f"failure of {victim!r} @ {FAILURE_AT}")

    events = [
        DemandChange(
            at_iteration=SURGE_AT, commodity=surge_commodity, new_rate=surge_rate
        ),
        NodeFailure(at_iteration=FAILURE_AT, node=victim),
    ]
    result = OnlineOrchestrator(
        network,
        events,
        GradientConfig(eta=0.04, adaptive_eta=True),
        warm_start=True,
        record_every=10,
    ).run(HORIZON)

    table = TableBuilder(
        [
            "event",
            "at iter",
            "pre-event utility",
            "post-event utility",
            "new optimum",
            "iters to 95% of new opt",
            "dropped",
        ]
    )
    for report in result.recoveries:
        table.add_row(
            type(report.event).__name__,
            report.at_iteration,
            report.pre_event_utility,
            report.post_event_utility,
            report.new_optimal_utility,
            report.iterations_to_95,
            ",".join(report.dropped_commodities) or "-",
        )
    print()
    print(table.render(title="Recovery report (warm start + emergency shedding)"))
    print(f"\nfinal utility: {result.final_utility:.2f}")

    print()
    print(
        ascii_plot(
            [
                (
                    "utility",
                    result.recorded_iterations.tolist(),
                    result.utilities.tolist(),
                )
            ],
            title="Utility through the incident timeline "
            "(surge @1000, failure @2000)",
            x_label="iteration",
            y_label="total utility",
        )
    )


if __name__ == "__main__":
    main()
