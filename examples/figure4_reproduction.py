#!/usr/bin/env python3
"""Reproduce Figure 4: gradient vs back-pressure convergence on a 40-node net.

Replays the paper's Section-6 experiment: a random 40-node network with 3
commodities (capacities ~ U[1,100], potentials ~ U[1,10], costs ~ U[1,5]),
throughput utility, eps = 0.2, eta = 0.04.  Prints the convergence table and
an ASCII rendition of Figure 4 (utility vs iterations, log-x).

Run:  python examples/figure4_reproduction.py [--full]

The default is a trimmed run (~30 s).  ``--full`` extends the back-pressure
horizon to 200k iterations to show its long tail.
"""

import argparse

from repro import (
    BackpressureAlgorithm,
    BackpressureConfig,
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_lp,
)
from repro.analysis import AlgorithmTrajectory, ascii_plot, figure4_table
from repro.scenarios import paper_figure4_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--full", action="store_true", help="long back-pressure run")
    args = parser.parse_args()

    network = paper_figure4_network(seed=args.seed)
    ext = build_extended_network(network)
    print(f"workload: {network}")
    print(f"extended: {ext}")
    print(f"offered rates: {[f'{l:.1f}' for l in ext.lam]}")

    optimum = solve_lp(ext)
    print(f"\noptimal total throughput (LP): {optimum.utility:.3f}")

    print("\nrunning gradient algorithm (eta=0.04, eps=0.2)...")
    gradient = GradientAlgorithm(
        ext, GradientConfig(eta=0.04, max_iterations=5000, record_every=10)
    ).run()
    print(
        f"  -> {gradient.solution.utility:.3f} "
        f"({100 * gradient.solution.utility / optimum.utility:.1f}% of optimal) "
        f"after {gradient.iterations} iterations"
    )

    bp_iterations = 200_000 if args.full else 60_000
    print(f"\nrunning back-pressure baseline ({bp_iterations} iterations)...")
    backpressure = BackpressureAlgorithm(
        ext,
        BackpressureConfig(
            max_iterations=bp_iterations, record_every=200, buffer_cap=1000.0
        ),
    ).run()
    print(
        f"  -> {backpressure.utility:.3f} "
        f"({100 * backpressure.utility / optimum.utility:.1f}% of optimal)"
    )

    print("\n" + "=" * 76)
    print(
        figure4_table(
            optimum.utility,
            [
                AlgorithmTrajectory(
                    "gradient (eta=0.04)",
                    gradient.recorded_iterations,
                    gradient.utilities,
                ),
                AlgorithmTrajectory(
                    "back-pressure",
                    backpressure.recorded_iterations,
                    backpressure.utilities,
                ),
            ],
        )
    )

    print()
    print(
        ascii_plot(
            [
                (
                    "gradient",
                    gradient.recorded_iterations.tolist(),
                    gradient.utilities.tolist(),
                ),
                (
                    "back-pressure",
                    backpressure.recorded_iterations.tolist(),
                    backpressure.utilities.tolist(),
                ),
                (
                    "optimal",
                    [1, bp_iterations],
                    [optimum.utility, optimum.utility],
                ),
            ],
            log_x=True,
            title="Figure 4: cumulative system utility vs iterations (log scale)",
            x_label="iterations",
            y_label="total throughput",
        )
    )


if __name__ == "__main__":
    main()
