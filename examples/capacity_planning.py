#!/usr/bin/env python3
"""Capacity planning: place a new stream onto a loaded system.

The paper assumes the task-to-server placement is given (citing Srivastava
et al. for the placement problem itself).  This example closes the loop: a
new analytics stream must be onboarded onto the running Figure-1 system, and
``repro.placement`` chooses which servers host each of its operators so that
the *system-wide* LP-optimal utility is maximised -- accounting for the
resources the existing streams already consume.

Run:  python examples/capacity_planning.py
"""

from repro import GradientAlgorithm, GradientConfig, Task, build_extended_network
from repro.analysis import TableBuilder
from repro.placement import feasible_hosts, place_task_chain
from repro.scenarios import figure1_network


def main() -> None:
    background = figure1_network()
    # the new stream gets its own sink, wired off server6 and server8
    background.physical.add_sink("sink3")
    background.physical.add_link("server6", "sink3", bandwidth=25.0)
    background.physical.add_link("server8", "sink3", bandwidth=25.0)

    tasks = [
        Task("capture", cost=0.5, gain=1.0),
        Task("enrich", cost=2.0, gain=1.3),
        Task("window", cost=1.5, gain=0.6),
        Task("publish", cost=0.5, gain=1.0),
    ]
    print(f"background system: {background}")
    print("new stream: capture -> enrich -> window -> publish "
          "(server1 to sink3)\n")

    layers = feasible_hosts(background.physical, len(tasks), "server1", "sink3")
    print("feasible hosts per operator:")
    for task, layer in zip(tasks, layers):
        print(f"  {task.name:<8} {sorted(layer)}")

    result = place_task_chain(
        background,
        tasks,
        source="server1",
        sink="sink3",
        max_rate=10.0,
        name="analytics",
        max_replicas=2,
    )

    print("\nchosen placement (LP-scored greedy + local search):")
    table = TableBuilder(["operator", "hosts"])
    for task in tasks:
        table.add_row(task.name, ", ".join(result.placement[task.name]))
    print(table.render())
    print(
        f"\nsystem utility: {result.baseline:.2f} (before) -> "
        f"{result.score:.2f} (with the new stream optimally placed); "
        f"marginal value {result.marginal_utility:.2f}"
    )
    if len(result.score_trace) > 1:
        print(f"local search improved the seed through {result.score_trace}")

    # run the distributed algorithm on the final system
    from repro.core.commodity import StreamNetwork

    combined = StreamNetwork(physical=background.physical)
    for commodity in background.commodities:
        combined.add_commodity(commodity)
    combined.add_commodity(result.commodity)
    ext = build_extended_network(combined)
    run = GradientAlgorithm(ext, GradientConfig(eta=0.04, max_iterations=4000)).run()
    print(f"\ndistributed algorithm on the combined system: "
          f"utility {run.solution.utility:.2f} "
          f"({100 * run.solution.utility / result.score:.1f}% of the LP plan)")
    for name, rate in run.solution.admitted_by_name.items():
        print(f"  {name}: {rate:.2f}/s admitted")


if __name__ == "__main__":
    main()
