#!/usr/bin/env python3
"""Tour of the declarative scenario layer (``repro.scenarios``).

A :class:`ScenarioSpec` is a frozen, seed-deterministic description of a
whole experiment -- topology, demand trace, failure model, placement
policy -- that compiles to a ``StreamNetwork`` plus a replayable event
timeline.  The same spec (same seed) always compiles to the same bytes,
and the spec round-trips through JSON, so an experiment is a small
document you can commit, diff, and re-run years later.

The tour walks the three ways to get one:

1. pick a named entry off the catalog (``scenario("rack-outage-16")``),
2. declare a custom spec from the component pieces and round-trip it
   through JSON,
3. compile and *use* it -- replay the timeline through the online
   orchestrator, then close the placement loop on a datacenter entry and
   print the joint vs routing-only utility comparison.

Run:  python examples/scenario_tour.py
"""

from repro.analysis import placement_table
from repro.online import OnlineOrchestrator
from repro.placement import JointPlacementLoop
from repro.scenarios import (
    DemandSpec,
    FailureSpec,
    ScenarioSpec,
    TopologySpec,
    scenario,
    scenario_summaries,
)


def main() -> None:
    # 1. the catalog: every benchmark and example workload has a name
    print("scenario catalog (excerpt):")
    for summary in scenario_summaries()[:6]:
        print(
            f"  {summary['name']:<16} topo={summary['topology']:<13}"
            f" demand={summary['demand']:<12} {summary['description']}"
        )
    print(f"  ... {len(scenario_summaries())} entries total "
          "(see `repro scenario list`)\n")

    # 2. declare a custom experiment: a k=4 fat-tree under a day/night
    # demand curve with correlated rack outages, all pinned by one seed
    spec = ScenarioSpec(
        name="tour-rack-outage",
        topology=TopologySpec("fat-tree", {"k": 4, "num_streams": 3}),
        demand=DemandSpec(
            "diurnal", {"num_samples": 16, "amplitude": 0.4}
        ),
        failures=FailureSpec("correlated", {"num_bursts": 2}),
        seed=5,
    )
    wire = spec.to_json()
    assert ScenarioSpec.from_json(wire) == spec  # frozen + canonical
    print(f"custom spec round-trips through {len(wire)} bytes of JSON")

    compiled = spec.compile()
    twin = spec.compile()
    assert repr(twin.events) == repr(compiled.events)  # seed-deterministic
    print(
        f"compiled: {len(compiled.network.physical.nodes)} nodes, "
        f"{len(compiled.network.commodities)} streams, "
        f"{len(compiled.events)} timeline events "
        "(identical on every compile)\n"
    )

    # 3a. replay the timeline: the orchestrator absorbs each event as a
    # delta and re-converges; every recovery is audited
    result = OnlineOrchestrator(compiled.network, compiled.events).run(
        total_iterations=compiled.horizon()
    )
    print(
        f"online replay: {len(result.recoveries)} events absorbed, "
        f"final utility {result.final_utility:.2f}"
    )
    worst = max(result.recoveries, key=lambda r: r.utility_dip)
    print(
        f"worst dip: {type(worst.event).__name__} at iteration "
        f"{worst.at_iteration} cost {worst.utility_dip:.2f} utility "
        "before re-convergence\n"
    )

    # 3b. close the placement loop: on the contended fat-tree entry the
    # joint loop re-places streams between gradient re-solves and beats
    # the routing-only baseline
    report = JointPlacementLoop.from_scenario("fat-tree-16").run()
    print(placement_table(report, title="joint vs routing-only (fat-tree-16)"))


if __name__ == "__main__":
    main()
