#!/usr/bin/env python3
"""Market-data pipeline: flow expansion and mixed utility classes.

Two feeds share a decode tier and an analytics server.  The decrypt stage
*expands* data 1.6x -- classical flow conservation fails, which is exactly
the regime the paper's generalised multicommodity model addresses.  The
``ticker`` feed has a capped utility (its value saturates at 8 units/s);
``depth`` is bulk throughput.

The example shows where every resource is spent, that the optimiser stops
investing in ``ticker`` beyond its cap, and how the data rate grows across
the expanding hop.

Run:  python examples/financial_pipeline.py
"""

from repro import (
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_optimal,
)
from repro.analysis import TableBuilder, solution_table
from repro.core.routing import feasibility_report
from repro.scenarios import financial_pipeline_network


def main() -> None:
    network = financial_pipeline_network()
    ext = build_extended_network(network)
    print(f"model: {network}")
    ticker = network.commodity("ticker")
    print(
        f"  decrypt gain on the first hop: "
        f"{ticker.gain('ingest_a', 'decode0'):.2f}x (stream expands!)"
    )

    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.02, max_iterations=8000)
    ).run()
    optimum = solve_optimal(ext)
    print()
    print(solution_table([result.solution, optimum], ["gradient", "optimal"]))
    print(
        "\nticker admits ~8/s although 20/s is offered: its capped utility "
        "makes extra ticker data worthless, so capacity goes to depth instead"
    )

    # resource usage per server
    report = feasibility_report(ext, result.solution.routing)
    table = TableBuilder(["node", "usage", "capacity", "utilization"])
    for node in ext.nodes:
        if node.capacity == float("inf") or node.name.startswith("bw:"):
            continue
        usage = float(report.node_usage[node.index])
        table.add_row(node.name, usage, node.capacity, usage / node.capacity)
    print()
    print(table.render(title="Compute usage at convergence"))

    # expansion visible on the wire
    flows = result.solution.link_flows()
    print("\nwire rates around the expanding decrypt stage:")
    admitted = float(result.solution.admitted[0])
    print(f"  ticker admitted at source:          {admitted:6.2f} units/s")
    first_hops = {k: v for k, v in flows.items() if k[0] == "ingest_a"}
    total = sum(first_hops.values())
    for (tail, head), rate in sorted(first_hops.items()):
        print(f"  {tail} -> {head}:             {rate:6.2f} units/s")
    print(
        f"  total leaving ingest_a:             {total:6.2f} units/s "
        f"(= {total / max(admitted, 1e-9):.2f}x the admitted rate)"
    )


if __name__ == "__main__":
    main()
