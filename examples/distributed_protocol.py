#!/usr/bin/env python3
"""Run the algorithm as an actual message-passing protocol and measure it.

The synchronous engine in ``repro.core.gradient`` is convenient, but the
paper describes a *distributed* protocol: an upstream marginal-cost wave, a
local routing update, and a downstream forecast wave.  This example runs the
protocol with one agent per extended-graph node over a deterministic event
engine, verifies the iterates match the synchronous engine bit for bit, and
measures the Section-6 complexity claim: a gradient iteration costs O(L)
sequential message rounds (L = longest path) while a back-pressure iteration
costs O(1).

Run:  python examples/distributed_protocol.py
"""

import numpy as np

from repro import (
    BackpressureAlgorithm,
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
)
from repro.analysis import TableBuilder
from repro.core.routing import initial_routing
from repro.simulation import DistributedGradientRun
from repro.scenarios import figure1_network, tandem_network


def main() -> None:
    # 1. equivalence: the protocol computes exactly the synchronous iterates
    ext = build_extended_network(figure1_network())
    config = GradientConfig(eta=0.05)
    sync = GradientAlgorithm(ext, config)
    routing = initial_routing(ext)

    distributed = DistributedGradientRun(ext, config)
    distributed.load_routing(routing)
    distributed.forecast_phase()

    current = routing.copy()
    for iteration in range(50):
        current = sync.step(current)
        distributed.iterate(iteration + 1)
    drift = float(
        np.max(np.abs(current.phi - distributed.export_routing().phi))
    )
    print(f"max |phi_sync - phi_distributed| after 50 iterations: {drift:.1e}")
    assert drift == 0.0, "protocol and synchronous engine must agree exactly"

    # 2. what one iteration costs on the wire
    metrics = distributed.iterate(51)
    print("\none distributed iteration on the Figure-1 network:")
    for phase in metrics.phases:
        print(
            f"  {phase.name:<9} {phase.messages:>4} messages  "
            f"{phase.bytes:>6} bytes  {phase.rounds:>3} sequential rounds"
        )

    # 3. the O(L) scaling of the marginal-cost wave (paper, Section 6)
    print("\nscaling the pipeline depth (tandem networks):")
    table = TableBuilder(
        ["depth", "longest path", "wave rounds", "messages/iter", "bp msgs/iter"]
    )
    for depth in (2, 4, 8, 16):
        tandem_ext = build_extended_network(tandem_network(depth))
        run = DistributedGradientRun(tandem_ext, GradientConfig(eta=0.05))
        run.load_routing(initial_routing(tandem_ext))
        run.forecast_phase()
        m = run.iterate(1)
        marginal = next(p for p in m.phases if p.name == "marginal")
        # longest extended path: dummy -> src -> (bw -> node)*depth -> sink
        longest = 2 * depth + 2
        bp = BackpressureAlgorithm(tandem_ext)
        table.add_row(
            depth, longest, marginal.rounds, m.messages, bp.messages_per_iteration
        )
    print(table.render())
    print(
        "\nthe marginal-cost wave deepens linearly with the pipeline "
        "(O(L) rounds per iteration), while back-pressure always exchanges "
        "one round of buffer levels (O(1)) -- the trade-off the paper "
        "discusses in Section 6"
    )


if __name__ == "__main__":
    main()
