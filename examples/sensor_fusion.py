#!/usr/bin/env python3
"""Sensor-fusion scenario: fair admission across monitoring fields.

An environmental-monitoring deployment (the paper's motivating domain):
three sensor fields feed gateways, a shared two-tier aggregation fabric, and
a fusion server.  Pipelines *shrink* the data (denoise 0.7x, aggregate 0.4x,
fuse 0.9x) and log utilities make the optimiser share scarce fusion capacity
fairly instead of starving a field.

The example contrasts log-utility (proportional fair) admission with plain
throughput maximisation, then replays a day of bursty field traffic through
the admission controller.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import (
    AdmissionController,
    GradientAlgorithm,
    GradientConfig,
    LinearUtility,
    build_extended_network,
    solve_optimal,
)
from repro.analysis import TableBuilder
from repro.scenarios import mmpp_trace, sensor_fusion_network


def optimise(network):
    ext = build_extended_network(network)
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.03, max_iterations=6000)
    ).run()
    return ext, result.solution


def main() -> None:
    # -- fair (log-utility) configuration -------------------------------------
    fair_net = sensor_fusion_network()
    ext, fair = optimise(fair_net)
    optimum = solve_optimal(ext)
    print(f"model: {fair_net}")
    print(
        f"gradient utility {fair.utility:.2f} vs centralized optimum "
        f"{optimum.utility:.2f} "
        f"({100 * fair.utility / optimum.utility:.1f}%)"
    )

    # -- throughput-only configuration (same physics, linear utilities) -------
    greedy_net = sensor_fusion_network()
    for commodity in greedy_net.commodities:
        commodity.utility = LinearUtility()
    __, greedy = optimise(greedy_net)

    table = TableBuilder(["field", "offered", "fair (log)", "throughput-max"])
    for view in ext.commodities:
        table.add_row(
            view.name,
            view.max_rate,
            float(fair.admitted[view.index]),
            float(greedy.admitted[view.index]),
        )
    print()
    print(table.render(title="Admitted rates: fairness vs raw throughput"))
    fair_rates = fair.admitted
    greedy_rates = greedy.admitted
    print(
        f"\nmin admitted field rate: fair={fair_rates.min():.2f}  "
        f"throughput-max={greedy_rates.min():.2f}"
    )
    print(
        "log utilities keep every field alive; throughput-max may starve "
        "whichever field is most expensive to carry"
    )

    # -- enforce the fair rates against bursty field traffic ------------------
    controller = AdmissionController(fair, burst_seconds=5.0)
    print(f"\n{controller.report()}\n")
    rng_seeds = [11, 12, 13]
    print("replaying 1000 slots of bursty (MMPP) field traffic per gateway:")
    for view, seed in zip(ext.commodities, rng_seeds):
        trace = mmpp_trace(
            rates=np.array([2.0, 12.0, 45.0]), num_slots=1000, seed=seed
        )
        shaped = controller.shape(view.name, trace)
        print(
            f"  {view.name}: offered mean {trace.mean():6.2f}/s, "
            f"admitted mean {shaped.admitted.mean():6.2f}/s "
            f"({100 * shaped.admitted_fraction:5.1f}%), "
            f"worst burst shed {shaped.shed.max():.1f}"
        )


if __name__ == "__main__":
    main()
