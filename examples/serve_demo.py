#!/usr/bin/env python3
"""Admission control as a service: drive the ``repro.serve`` daemon.

The paper's distributed algorithm decides, per commodity, how much offered
rate the system admits at max utility.  ``repro.serve`` packages that
decision loop as a daemon: a TCP endpoint accepts churn events
(new-session admission requests, demand changes, capacity changes,
failures), coalesces them inside a batch window, applies each drained
batch to the live epoch-versioned model as a few compiled deltas, refines
with the warm gradient engine, and publishes the next epoch only after
the invariant audit passes.

This demo embeds the daemon in-process (:class:`ServerThread`), connects
the line-protocol client, and walks one small operational story:

* a demand surge on an existing session,
* a session departure followed by its re-admission at a higher offered
  rate (the paper's admission-control case -- the daemon may admit it
  below what it asks for),
* a capacity cut on its source node,
* a node failure, which drops whatever routed through it.

Every response carries the admission decision plus the epoch that made
it, so the printed table is a faithful audit trail of the daemon's
published epochs.

Run:  python examples/serve_demo.py
"""

from repro.analysis import TableBuilder
from repro.io import commodity_to_dict
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import ServeClient
from repro.scenarios import scenario

# the catalog pins the instance (24 nodes, 4 streams, seed 11); the same
# name works everywhere: `repro scenario run serve-demo-24`, or
# `python -m repro.serve.client --scenario serve-demo-24` against a live
# daemon, reproduce this exact network
SCENARIO_NAME = "serve-demo-24"


def describe(label: str, doc: dict) -> list:
    """One table row out of an event response."""
    rate = doc.get("admitted_rate")
    return [
        label,
        doc.get("commodity", "-"),
        doc["decision"],
        f"{rate:.3f}" if rate is not None else "-",
        doc["epoch"],
        f"{doc['utility']:.2f}",
    ]


def main() -> None:
    network = scenario(SCENARIO_NAME).compile().network
    # a demo is latency-unconstrained: spend more refine iterations per
    # batch than a serving deployment would, so each printed admitted
    # rate is well converged
    config = ServeConfig(
        batch_window=0.010, refine_iterations=40, warmup_iterations=200
    )
    rows = []
    with ServerThread(network, config=config) as port:
        with ServeClient("127.0.0.1", port) as client:
            hello = client.hello()
            print(
                f"daemon up on port {port}: "
                f"{len(hello['model']['nodes'])} nodes, "
                f"{len(hello['model']['commodities'])} commodities, "
                f"epoch {hello['epoch']}, utility {hello['utility']:.2f}"
            )

            surged = network.commodities[0]
            rows.append(describe(
                "demand surge (2x)",
                client.demand(surged.name, 2.0 * surged.max_rate),
            ))

            # session churn: one commodity leaves, then asks back in at a
            # higher offered rate -- the admission-control case (each sink
            # serves one commodity, so re-admission frees its slot first)
            churner = network.commodities[1]
            rows.append(describe(
                "session departs", client.depart(churner.name)
            ))
            spec = commodity_to_dict(churner)
            spec["max_rate"] = 1.5 * spec["max_rate"]
            rows.append(describe(
                "re-admit at 1.5x rate", client.admit(spec)
            ))

            victim = churner.source
            rows.append(describe(
                "capacity cut (50%)",
                client.capacity(
                    victim, 0.5 * network.physical.node(victim).capacity
                ),
            ))

            failed = network.commodities[2].source
            doc = client.node_down(failed)
            rows.append(describe(f"node {failed!r} fails", doc))
            if doc.get("dropped_commodities"):
                print(
                    "dropped by the failure: "
                    + ", ".join(doc["dropped_commodities"])
                )

            stats = client.stats()

    table = TableBuilder(
        ["event", "commodity", "decision", "admitted rate", "epoch", "utility"]
    )
    for row in rows:
        table.add_row(*row)
    print()
    print(table.render(title="Admission decision audit trail"))

    counters = stats["stats"]
    print(
        f"\ndaemon processed {counters['requests_total']} requests in "
        f"{counters['batches']} batches: "
        f"{counters['events_accepted']} admission decisions accepted, "
        f"{counters['events_rejected']} rejected, "
        f"{counters['validation_failures']} epochs failed the audit"
    )
    print(f"final epoch {stats['epoch']}, every published epoch audited")


if __name__ == "__main__":
    main()
