#!/usr/bin/env python3
"""Quickstart: model a small stream-processing system and optimise it.

Builds the paper's Figure-1 example (8 servers, 2 streams with overlapping
operator placements), runs the distributed gradient algorithm, compares with
the centralized LP optimum, and finally enforces the admitted rates on a
bursty arrival trace with the admission controller.

Run:  python examples/quickstart.py
"""

from repro import (
    AdmissionController,
    GradientAlgorithm,
    GradientConfig,
    build_extended_network,
    solve_lp,
)
from repro.analysis import solution_table
from repro.scenarios import figure1_network, onoff_trace, trace_stats


def main() -> None:
    # 1. the model: physical servers + two task-chain commodities (Figure 1)
    network = figure1_network()
    print(f"model: {network}")
    for commodity in network.commodities:
        print(f"  {commodity}")

    # 2. the extended graph unifies compute and bandwidth constraints
    ext = build_extended_network(network)
    print(f"\n{ext.describe()}")

    # 3. the paper's distributed algorithm vs the centralized optimum
    result = GradientAlgorithm(
        ext, GradientConfig(eta=0.05, max_iterations=3000)
    ).run()
    optimum = solve_lp(ext)
    print(f"\ngradient converged in {result.iterations} iterations")
    print(solution_table([result.solution, optimum], ["gradient", "lp-optimal"]))

    # 4. where does the data actually flow?
    print("\nbusiest physical links (data rate on the wire):")
    flows = sorted(
        result.solution.link_flows().items(), key=lambda kv: -kv[1]
    )[:5]
    for (tail, head), rate in flows:
        print(f"  {tail} -> {head}: {rate:.2f}")

    # 5. enforce the admitted rates against a bursty arrival process
    controller = AdmissionController(result.solution, burst_seconds=2.0)
    print(f"\n{controller.report()}")
    trace = onoff_trace(peak_rate=40.0, num_slots=300, on_probability=0.4, seed=1)
    stats = trace_stats(trace)
    shaped = controller.shape("S1", trace)
    print(
        f"\nbursty trace for S1: mean {stats.mean:.1f}, peak {stats.peak:.1f} "
        f"(burstiness {stats.burstiness:.1f}x)"
    )
    print(
        f"admitted {shaped.admitted.sum():.0f} of {shaped.offered.sum():.0f} "
        f"offered units ({100 * shaped.admitted_fraction:.1f}%); "
        f"the network never sees sustained load above the provisioned rate"
    )


if __name__ == "__main__":
    main()
