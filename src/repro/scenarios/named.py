"""Named end-to-end paper instances.

(Moved here from ``repro.workloads.scenarios``, which remains as a
deprecated shim for one release.)

* :func:`figure1_network` -- the paper's running example (Figure 1): 8
  servers, two streams with overlapping placements on servers 3 and 5.
* :func:`sensor_fusion_network` -- an environmental-monitoring workload from
  the paper's motivation: shrinking filter/aggregate pipelines, log
  utilities (fair sharing across sensor fields).
* :func:`financial_pipeline_network` -- a market-data workload: an expanding
  decrypt stage (gain > 1) followed by parse and aggregate stages, mixing a
  latency-critical capped utility with a throughput utility.

Each returns a validated :class:`~repro.core.commodity.StreamNetwork`.
"""

from __future__ import annotations

from typing import List

from repro.core.commodity import Commodity, StreamNetwork, Task
from repro.core.network import PhysicalNetwork
from repro.core.utility import CappedLinearUtility, LinearUtility, LogUtility

__all__ = [
    "figure1_network",
    "sensor_fusion_network",
    "financial_pipeline_network",
]


def figure1_network(
    capacity: float = 50.0,
    bandwidth: float = 40.0,
    rate_s1: float = 15.0,
    rate_s2: float = 12.0,
) -> StreamNetwork:
    """The paper's Figure-1 example, built through the task-chain API.

    Stream S1 runs tasks A, B, C, D; stream S2 runs G, E, F, H.  The task
    placement is the paper's: ``T1={A}, T2={B}, T3={B,E}, T4={C}, T5={C,F},
    T6={D}, T7={G}, T8={H}`` -- servers 3 and 5 are shared between the
    streams, creating the resource coupling the algorithms must resolve.
    """
    physical = PhysicalNetwork()
    for i in range(1, 9):
        physical.add_server(f"server{i}", capacity)
    physical.add_sink("sink1")
    physical.add_sink("sink2")

    links: List[tuple] = [
        # stream S1's lattice
        ("server1", "server2"),
        ("server1", "server3"),
        ("server2", "server4"),
        ("server2", "server5"),
        ("server3", "server4"),
        ("server3", "server5"),
        ("server4", "server6"),
        ("server5", "server6"),
        ("server6", "sink1"),
        # stream S2's chain (3 -> 5 shared with S1's lattice)
        ("server7", "server3"),
        ("server5", "server8"),
        ("server8", "sink2"),
    ]
    for tail, head in links:
        physical.add_link(tail, head, bandwidth)

    s1_tasks = [
        Task("A", cost=1.0, gain=0.8),  # light filter
        Task("B", cost=2.0, gain=0.6),  # aggregation shrinks the stream
        Task("C", cost=1.5, gain=1.2),  # annotation expands it a little
        Task("D", cost=1.0, gain=1.0),  # final formatting
    ]
    s1_placement = {
        "A": ["server1"],
        "B": ["server2", "server3"],
        "C": ["server4", "server5"],
        "D": ["server6"],
    }
    s2_tasks = [
        Task("G", cost=1.0, gain=1.5),  # decryption expands
        Task("E", cost=2.5, gain=0.5),  # heavy filtering
        Task("F", cost=1.0, gain=0.9),
        Task("H", cost=0.5, gain=1.0),
    ]
    s2_placement = {
        "G": ["server7"],
        "E": ["server3"],
        "F": ["server5"],
        "H": ["server8"],
    }

    network = StreamNetwork(physical=physical)
    network.add_commodity(
        Commodity.from_task_chain(
            name="S1",
            network=physical,
            tasks=s1_tasks,
            placement=s1_placement,
            source="server1",
            sink="sink1",
            max_rate=rate_s1,
            utility=LinearUtility(),
        )
    )
    network.add_commodity(
        Commodity.from_task_chain(
            name="S2",
            network=physical,
            tasks=s2_tasks,
            placement=s2_placement,
            source="server7",
            sink="sink2",
            max_rate=rate_s2,
            utility=LinearUtility(),
        )
    )
    network.validate()
    return network


def sensor_fusion_network(num_fields: int = 3) -> StreamNetwork:
    """Environmental monitoring: ``num_fields`` sensor fields feed a shared
    two-tier aggregation fabric; log utilities favour fair admission.

    Fields are deliberately *asymmetric*: field ``f``'s aggregation costs
    grow with ``f`` (denser sensors need more cleanup per unit), so a pure
    throughput objective starves the expensive fields at the congested
    aggregator tier while the default log utilities keep every field alive.
    """
    if not 1 <= num_fields <= 4:
        raise ValueError("num_fields must be between 1 and 4")
    physical = PhysicalNetwork()
    gateways = []
    for f in range(num_fields):
        name = f"gateway{f}"
        physical.add_server(name, capacity=30.0)
        gateways.append(name)
    aggregators = ["agg0", "agg1"]
    for name in aggregators:
        physical.add_server(name, capacity=30.0)
    physical.add_server("fusion", capacity=80.0)
    sinks = []
    for f in range(num_fields):
        sink = f"ops{f}"
        physical.add_sink(sink)
        sinks.append(sink)

    for gateway in gateways:
        for agg in aggregators:
            physical.add_link(gateway, agg, bandwidth=25.0)
    for agg in aggregators:
        physical.add_link(agg, "fusion", bandwidth=40.0)
    for sink in sinks:
        physical.add_link("fusion", sink, bandwidth=30.0)

    network = StreamNetwork(physical=physical)
    for f in range(num_fields):
        tasks = [
            Task("denoise", cost=1.0, gain=0.7),
            Task("aggregate", cost=1.0 + 1.5 * f, gain=0.4),
            Task("fuse", cost=1.5, gain=0.9),
        ]
        placement = {
            "denoise": [gateways[f]],
            "aggregate": aggregators,
            "fuse": ["fusion"],
        }
        network.add_commodity(
            Commodity.from_task_chain(
                name=f"field{f}",
                network=physical,
                tasks=tasks,
                placement=placement,
                source=gateways[f],
                sink=sinks[f],
                max_rate=25.0,
                utility=LogUtility(weight=10.0),
            )
        )
    network.validate()
    return network


def financial_pipeline_network() -> StreamNetwork:
    """Market-data processing with an expanding decrypt stage.

    Two streams: ``ticker`` (latency-critical; capped utility saturating at
    its target rate) and ``depth`` (bulk order-book updates; throughput
    utility).  The decrypt stage expands data 1.6x, so bandwidth *after* the
    first hop is the scarce resource -- exercising the regime where flow
    conservation genuinely fails.
    """
    physical = PhysicalNetwork()
    physical.add_server("ingest_a", capacity=40.0)
    physical.add_server("ingest_b", capacity=40.0)
    for name in ("decode0", "decode1"):
        physical.add_server(name, capacity=50.0)
    physical.add_server("analytics", capacity=70.0)
    physical.add_sink("traders")
    physical.add_sink("risk")

    for ingest in ("ingest_a", "ingest_b"):
        for decode in ("decode0", "decode1"):
            physical.add_link(ingest, decode, bandwidth=35.0)
    for decode in ("decode0", "decode1"):
        physical.add_link(decode, "analytics", bandwidth=30.0)
    physical.add_link("analytics", "traders", bandwidth=25.0)
    physical.add_link("analytics", "risk", bandwidth=25.0)

    decrypt = Task("decrypt", cost=1.2, gain=1.6)
    parse = Task("parse", cost=2.0, gain=0.8)
    aggregate = Task("aggregate", cost=1.0, gain=0.5)

    network = StreamNetwork(physical=physical)
    network.add_commodity(
        Commodity.from_task_chain(
            name="ticker",
            network=physical,
            tasks=[decrypt, parse, aggregate],
            placement={
                "decrypt": ["ingest_a"],
                "parse": ["decode0", "decode1"],
                "aggregate": ["analytics"],
            },
            source="ingest_a",
            sink="traders",
            max_rate=20.0,
            utility=CappedLinearUtility(cap=8.0, weight=5.0),
        )
    )
    network.add_commodity(
        Commodity.from_task_chain(
            name="depth",
            network=physical,
            tasks=[decrypt, parse, aggregate],
            placement={
                "decrypt": ["ingest_b"],
                "parse": ["decode0", "decode1"],
                "aggregate": ["analytics"],
            },
            source="ingest_b",
            sink="risk",
            max_rate=30.0,
            utility=LinearUtility(weight=1.0),
        )
    )
    network.validate()
    return network
