"""The named scenario catalog: ``scenario("fat-tree-128", seed=...)``.

Benchmarks, examples, the CLI (``repro scenario list/run``), and the
hypothesis strategies all pull named :class:`~repro.scenarios.spec.ScenarioSpec`
templates from here instead of hand-rolling network builders.  Entries
are frozen specs with *pinned default seeds*: the ``churn-120`` /
``serve-mix-120`` / ``sparse-*`` entries reproduce the committed
benchmark baselines bit-for-bit (network seed = the bench's historical
``NETWORK_SEED``, trace seed = ``NETWORK_SEED + 1`` via the spec's
``seed + 1`` convention).

``register_scenario`` lets downstream code add entries (tests use it);
names are unique and registration of an existing name requires
``overwrite=True``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.exceptions import ModelError
from repro.scenarios.spec import (
    DemandSpec,
    FailureSpec,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
)

__all__ = [
    "scenario",
    "scenario_names",
    "scenario_summaries",
    "register_scenario",
    "SERVE_WEIGHTS",
]

# the serve-daemon event mix: mostly demand drift, occasional failures --
# shared between the serve bench and the serve-* scenario entries
SERVE_WEIGHTS: Dict[str, float] = {
    "demand": 8.0,
    "capacity": 4.0,
    "arrival": 0.4,
    "departure": 0.4,
    "link_failure": 0.15,
    "node_failure": 0.05,
}

_CATALOG: Dict[str, ScenarioSpec] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_scenario(
    name: str, spec: ScenarioSpec, description: str, overwrite: bool = False
) -> ScenarioSpec:
    """Add ``spec`` to the catalog under ``name``."""
    if name in _CATALOG and not overwrite:
        raise ModelError(f"scenario {name!r} is already registered")
    spec = ScenarioSpec(
        name=name,
        topology=spec.topology,
        demand=spec.demand,
        failures=spec.failures,
        placement=spec.placement,
        seed=spec.seed,
    )
    _CATALOG[name] = spec
    _DESCRIPTIONS[name] = description
    return spec


def scenario(name: str, seed: Optional[int] = None) -> ScenarioSpec:
    """Look up a named spec; ``seed`` overrides the pinned default."""
    try:
        spec = _CATALOG[name]
    except KeyError:
        raise ModelError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None
    return spec if seed is None else spec.with_seed(seed)


def scenario_names() -> List[str]:
    return sorted(_CATALOG)


def scenario_summaries() -> List[Dict[str, Any]]:
    """One JSON-compatible row per catalog entry (``repro scenario list``)."""
    rows = []
    for name in scenario_names():
        spec = _CATALOG[name]
        rows.append(
            {
                "name": name,
                "description": _DESCRIPTIONS[name],
                "topology": spec.topology.kind,
                "demand": spec.demand.kind,
                "failures": spec.failures.kind,
                "placement": spec.placement.kind,
                "seed": spec.seed,
            }
        )
    return rows


def _entry(
    name: str,
    description: str,
    topology: TopologySpec,
    demand: DemandSpec = DemandSpec(),
    failures: FailureSpec = FailureSpec(),
    placement: PlacementSpec = PlacementSpec(),
    seed: int = 0,
) -> None:
    register_scenario(
        name,
        ScenarioSpec(
            name=name,
            topology=topology,
            demand=demand,
            failures=failures,
            placement=placement,
            seed=seed,
        ),
        description,
    )


# --- paper instances (deterministic; seed is inert) ---------------------
_entry(
    "figure1",
    "the paper's Figure-1 running example: 8 servers, two coupled streams",
    TopologySpec("figure1"),
)
_entry(
    "figure4",
    "the paper's Section-6 synthetic evaluation network (40 nodes, 3 streams)",
    TopologySpec("random"),
    seed=7,
)
_entry(
    "sensor-fusion",
    "environmental monitoring fields with log utilities (fair sharing)",
    TopologySpec("sensor-fusion"),
)
_entry(
    "financial",
    "market-data pipelines with an expanding decrypt stage",
    TopologySpec("financial"),
)
_entry(
    "diamond",
    "smallest network with a genuine routing choice; hand-checkable optimum",
    TopologySpec("diamond"),
)

# --- churn / serve benchmark workloads (seeds pin committed baselines) --
_entry(
    "churn-120",
    "bench_churn full rung: 120-node random net, 60 mixed churn events",
    TopologySpec("churn-random", {"num_nodes": 120, "num_commodities": 12}),
    DemandSpec("churn", {"num_events": 60}),
    seed=17,
)
_entry(
    "churn-smoke-20",
    "bench_churn CI smoke rung: 20 nodes, 12 events",
    TopologySpec("churn-random", {"num_nodes": 20, "num_commodities": 4}),
    DemandSpec("churn", {"num_events": 12}),
    seed=17,
)
_entry(
    "serve-mix-120",
    "bench_serve full rung: 120-node net, 240 serve-mix churn events",
    TopologySpec("churn-random", {"num_nodes": 120, "num_commodities": 12}),
    DemandSpec("churn", {"num_events": 240, "weights": SERVE_WEIGHTS}),
    seed=21,
)
_entry(
    "serve-smoke-30",
    "bench_serve CI smoke rung: 30 nodes, 200 serve-mix events",
    TopologySpec("churn-random", {"num_nodes": 30, "num_commodities": 6}),
    DemandSpec("churn", {"num_events": 200, "weights": SERVE_WEIGHTS}),
    seed=21,
)
_entry(
    "serve-diurnal-30",
    "serving soak against a non-stationary day/night demand curve",
    TopologySpec("churn-random", {"num_nodes": 30, "num_commodities": 6}),
    DemandSpec(
        "diurnal",
        {"num_samples": 16, "period_samples": 8.0, "amplitude": 0.6,
         "iteration_gap": 10},
    ),
    seed=21,
)
_entry(
    "serve-demo-24",
    "the serve_demo example instance: small net, demand-heavy mix",
    TopologySpec("churn-random", {"num_nodes": 24, "num_commodities": 4}),
    DemandSpec("churn", {"num_events": 12, "weights": SERVE_WEIGHTS}),
    seed=11,
)
_entry(
    "flash-crowd-30",
    "steady load, then one stream spikes 4x and decays back",
    TopologySpec("churn-random", {"num_nodes": 30, "num_commodities": 6}),
    DemandSpec(
        "flash-crowd",
        {"num_samples": 10, "spike_sample": 3, "spike_factor": 4.0,
         "iteration_gap": 10},
    ),
    seed=21,
)

# --- scale-ladder / async rungs (bench_async + bench_scale_ladder) ------
for _label, _nodes, _commodities, _seed in (
    ("sparse-120x16", 120, 16, 0),
    ("sparse-500x4", 500, 4, 0),
    ("sparse-30x4", 30, 4, 2),
    ("sparse-60x8", 60, 8, 1),
):
    _entry(
        _label,
        f"sparse scale rung: {_nodes} nodes, {_commodities} commodities",
        TopologySpec(
            "sparse",
            {"num_nodes": _nodes, "num_commodities": _commodities},
        ),
        seed=_seed,
    )

# --- datacenter / ISP topologies (joint placement headline) -------------
# Calibration note: placement only matters when streams contend for tight
# switch/router capacity AND max_replicas is below the tier width, so the
# joint entries pin tight capacity ranges and single-replica chains.
_entry(
    "fat-tree-16",
    "k=4 fat-tree (16 hosts), 8 contending streams, joint placement",
    TopologySpec(
        "fat-tree",
        {"k": 4, "num_streams": 8, "switch_capacity_range": [5.0, 12.0]},
    ),
    placement=PlacementSpec(
        "joint", {"rounds": 2, "max_moves": 6, "max_replicas": 1}
    ),
)
_entry(
    "fat-tree-128",
    "k=8 fat-tree (128 hosts), 8 cross-pod streams, joint placement",
    TopologySpec(
        "fat-tree",
        {"k": 8, "num_streams": 8, "switch_capacity_range": [5.0, 12.0]},
    ),
    placement=PlacementSpec(
        "joint", {"rounds": 1, "max_moves": 3, "max_replicas": 1}
    ),
)
_entry(
    "isp-32",
    "32-router scale-free ISP graph, 4 streams, joint placement",
    TopologySpec(
        "isp",
        {"num_routers": 32, "num_streams": 4, "capacity_range": [6.0, 18.0]},
    ),
    placement=PlacementSpec(
        "joint", {"rounds": 2, "max_moves": 6, "max_replicas": 1}
    ),
)
_entry(
    "isp-128",
    "128-router scale-free ISP graph, 8 streams, joint placement",
    TopologySpec(
        "isp",
        {"num_routers": 128, "num_streams": 8, "capacity_range": [6.0, 18.0]},
    ),
    placement=PlacementSpec(
        "joint", {"rounds": 1, "max_moves": 3, "max_replicas": 1}
    ),
)
_entry(
    "rack-outage-16",
    "k=4 fat-tree under correlated rack failures plus diurnal demand",
    TopologySpec("fat-tree", {"k": 4, "num_streams": 4}),
    DemandSpec("diurnal", {"num_samples": 8, "iteration_gap": 8}),
    FailureSpec(
        "correlated",
        {"num_bursts": 2, "cluster_radius": 1, "cluster_size": 3,
         "start_iteration": 25, "burst_gap": 40},
    ),
)
