"""Deterministic layered and tandem topologies.

These controlled-shape workloads drive the ablation experiments:

* :func:`tandem_network` -- a single chain of given depth; its longest path
  length is exactly ``depth + 3`` extended hops, making it the right probe
  for the paper's O(L)-per-iteration message-complexity claim (Section 6);
* :func:`layered_network` -- ``depth x width`` grid with full bipartite
  inter-layer wiring: many parallel routes, so routing (not just admission)
  matters;
* :func:`diamond_network` -- the smallest network with a genuine routing
  choice (two disjoint middle paths); used throughout the unit tests because
  its optimum is computable by hand.

(Moved here from ``repro.workloads.layered``, which remains as a
deprecated shim for one release.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.commodity import Commodity, StreamNetwork
from repro.core.network import PhysicalNetwork
from repro.core.utility import UtilityFunction

Edge = Tuple[str, str]

__all__ = ["tandem_network", "layered_network", "diamond_network"]


def tandem_network(
    depth: int,
    node_capacity: float = 50.0,
    bandwidth: float = 50.0,
    cost: float = 1.0,
    gain: float = 1.0,
    max_rate: float = 20.0,
    utility: Optional[UtilityFunction] = None,
) -> StreamNetwork:
    """A single commodity through a chain of ``depth`` servers.

    ``source -> h1 -> ... -> h(depth-1) -> sink`` (the source is the first of
    the ``depth`` servers).  Longest path grows linearly with ``depth``.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    physical = PhysicalNetwork()
    names = [f"h{i}" for i in range(depth)]
    for name in names:
        physical.add_server(name, node_capacity)
    physical.add_sink("sink")
    chain = names + ["sink"]
    edges: List[Edge] = []
    for tail, head in zip(chain[:-1], chain[1:]):
        physical.add_link(tail, head, bandwidth)
        edges.append((tail, head))

    potentials: Dict[str, float] = {}
    value = 1.0
    for name in chain:
        potentials[name] = value
        value *= gain
    commodity = Commodity(
        name="tandem",
        source=names[0],
        sink="sink",
        max_rate=max_rate,
        edges=edges,
        potentials=potentials,
        costs={e: cost for e in edges},
        utility=utility,
    )
    network = StreamNetwork(physical=physical)
    network.add_commodity(commodity)
    network.validate()
    return network


def layered_network(
    depth: int,
    width: int,
    node_capacity: float = 40.0,
    bandwidth: float = 40.0,
    cost: float = 1.0,
    gain: float = 1.0,
    max_rate: float = 30.0,
    utility: Optional[UtilityFunction] = None,
) -> StreamNetwork:
    """One commodity through ``depth`` fully-connected layers of ``width`` nodes."""
    if depth < 1 or width < 1:
        raise ValueError("depth and width must be >= 1")
    physical = PhysicalNetwork()
    physical.add_server("src", node_capacity * width)  # source must carry it all
    layers: List[List[str]] = [["src"]]
    for d in range(depth):
        layer = [f"l{d}_{w}" for w in range(width)]
        for name in layer:
            physical.add_server(name, node_capacity)
        layers.append(layer)
    physical.add_sink("sink")
    layers.append(["sink"])

    edges: List[Edge] = []
    for tails, heads in zip(layers[:-1], layers[1:]):
        for tail in tails:
            for head in heads:
                physical.add_link(tail, head, bandwidth)
                edges.append((tail, head))

    potentials: Dict[str, float] = {}
    value = 1.0
    for layer in layers:
        for name in layer:
            potentials[name] = value
        value *= gain
    commodity = Commodity(
        name="layered",
        source="src",
        sink="sink",
        max_rate=max_rate,
        edges=edges,
        potentials=potentials,
        costs={e: cost for e in edges},
        utility=utility,
    )
    network = StreamNetwork(physical=physical)
    network.add_commodity(commodity)
    network.validate()
    return network


def diamond_network(
    top_capacity: float = 10.0,
    bottom_capacity: float = 10.0,
    source_capacity: float = 100.0,
    bandwidth: float = 100.0,
    max_rate: float = 30.0,
    gain_top: float = 1.0,
    gain_bottom: float = 1.0,
    cost: float = 1.0,
    utility: Optional[UtilityFunction] = None,
) -> StreamNetwork:
    """``src -> {top, bottom} -> sink``: the smallest genuine routing choice.

    With unit costs/gains and ample bandwidth, the optimal admitted rate is
    ``min(max_rate, top_capacity + bottom_capacity, source_capacity / cost)``
    (each middle node forwards at most ``capacity / cost``), which the tests
    verify by hand.
    """
    physical = PhysicalNetwork()
    physical.add_server("src", source_capacity)
    physical.add_server("top", top_capacity)
    physical.add_server("bottom", bottom_capacity)
    physical.add_sink("sink")
    edges: List[Edge] = []
    for tail, head in (
        ("src", "top"),
        ("src", "bottom"),
        ("top", "sink"),
        ("bottom", "sink"),
    ):
        physical.add_link(tail, head, bandwidth)
        edges.append((tail, head))

    potentials = {
        "src": 1.0,
        "top": gain_top,
        "bottom": gain_bottom,
        # Property 1 forces both paths to agree at the sink:
        "sink": gain_top * 1.0,
    }
    if abs(gain_top - gain_bottom) > 1e-12:
        raise ValueError(
            "diamond paths must end at a common sink potential; "
            "use equal gain_top and gain_bottom"
        )
    commodity = Commodity(
        name="diamond",
        source="src",
        sink="sink",
        max_rate=max_rate,
        edges=edges,
        potentials=potentials,
        costs={e: cost for e in edges},
        utility=utility,
    )
    network = StreamNetwork(physical=physical)
    network.add_commodity(commodity)
    network.validate()
    return network
