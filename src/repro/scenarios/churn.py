"""Churn workloads: seed-deterministic mixed event timelines.

The online subsystem (:mod:`repro.online`) replays
:class:`~repro.online.events.NetworkEvent` timelines against a running
instance; this module generates *long* mixed timelines -- demand drift,
capacity drift, link/node failures, session departures and re-arrivals --
that are guaranteed replayable: every event is validated against a shadow
copy of the evolving network before it is emitted, so a generated trace
never dies halfway through with "unknown commodity" or "event disconnected
every commodity".

Used by the churn soak test (``tests/test_delta.py``), the event-sequence
hypothesis strategy (:func:`repro.validate.strategies.event_sequences`), the
delta-vs-full-rebuild benchmark (``benchmarks/bench_churn.py``), and the
``churn`` demand kind of :class:`repro.scenarios.ScenarioSpec`.
Everything is deterministic given ``(spec, seed)``.

(Moved here from ``repro.workloads.churn``, which remains as a deprecated
shim for one release.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.commodity import Commodity, StreamNetwork
from repro.exceptions import ModelError
from repro.online.events import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NetworkEvent,
    NodeFailure,
)
from repro.online.rebuild import apply_event
from repro.scenarios.random_network import RandomNetworkSpec, random_stream_network

__all__ = ["ChurnSpec", "churn_network", "churn_trace"]

# draw order is part of the deterministic contract -- keep this tuple stable
EVENT_KINDS = (
    "demand",
    "capacity",
    "link_failure",
    "node_failure",
    "departure",
    "arrival",
)


@dataclass
class ChurnSpec:
    """Knobs of the churn-trace generator.

    ``weights`` biases the per-slot event-kind draw (missing kinds get
    weight 0); scale ranges are multiplicative against the *current* value,
    so repeated demand/capacity events drift rather than teleport.
    """

    num_events: int = 50
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "demand": 3.0,
            "capacity": 2.0,
            "link_failure": 1.0,
            "node_failure": 0.5,
            "departure": 1.0,
            "arrival": 1.5,
        }
    )
    rate_scale_range: Tuple[float, float] = (0.5, 1.6)
    capacity_scale_range: Tuple[float, float] = (0.6, 1.4)
    iteration_gap_range: Tuple[int, int] = (5, 15)
    max_attempts_per_event: int = 60

    def __post_init__(self) -> None:
        if self.num_events < 1:
            raise ModelError("num_events must be >= 1")
        unknown = set(self.weights) - set(EVENT_KINDS)
        if unknown:
            raise ModelError(f"unknown event kinds in weights: {sorted(unknown)}")
        if not any(self.weights.get(k, 0.0) > 0 for k in EVENT_KINDS):
            raise ModelError("at least one event kind needs positive weight")


def churn_network(
    num_nodes: int = 30,
    num_commodities: int = 4,
    seed: int = 0,
    **overrides: object,
) -> StreamNetwork:
    """A random instance sized for churn studies.

    More commodities than the Figure-4 default so departures and failures
    leave survivors, and shallow-ish layers so the shadow replay in
    :func:`churn_trace` stays cheap.
    """
    params: Dict[str, object] = dict(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(3, 5),
        layer_width_range=(2, 4),
    )
    params.update(overrides)
    spec = RandomNetworkSpec(**params)  # type: ignore[arg-type]
    return random_stream_network(spec, seed=seed)


def _draw_candidate(
    kind: str,
    shadow: StreamNetwork,
    pool: List[Commodity],
    at_iteration: int,
    spec: ChurnSpec,
    rng: np.random.Generator,
) -> Optional[NetworkEvent]:
    """One candidate event of ``kind`` against the current shadow network.

    Returns ``None`` when the kind is structurally impossible right now
    (e.g. an arrival with an empty re-arrival pool); the caller redraws.
    """
    if kind == "demand":
        target = shadow.commodities[int(rng.integers(len(shadow.commodities)))]
        scale = float(rng.uniform(*spec.rate_scale_range))
        return DemandChange(
            at_iteration=at_iteration,
            commodity=target.name,
            new_rate=max(target.max_rate * scale, 1e-6),
        )
    if kind == "capacity":
        servers = shadow.physical.processing_nodes()
        node = servers[int(rng.integers(len(servers)))]
        scale = float(rng.uniform(*spec.capacity_scale_range))
        return CapacityChange(
            at_iteration=at_iteration,
            node=node.name,
            new_capacity=max(node.capacity * scale, 1e-6),
        )
    if kind == "link_failure":
        used = sorted({e for c in shadow.commodities for e in c.edges})
        if not used:
            return None
        return LinkFailure(
            at_iteration=at_iteration,
            link=used[int(rng.integers(len(used)))],
        )
    if kind == "node_failure":
        # interior processing nodes only: killing a source always drops its
        # whole commodity, which makes short traces degenerate fast
        sources = {c.source for c in shadow.commodities}
        interior = sorted(
            {n for c in shadow.commodities for n in c.potentials}
            - sources
            - {c.sink for c in shadow.commodities}
        )
        if not interior:
            return None
        return NodeFailure(
            at_iteration=at_iteration,
            node=interior[int(rng.integers(len(interior)))],
        )
    if kind == "departure":
        if len(shadow.commodities) < 2:
            return None  # the model needs at least one commodity
        target = shadow.commodities[int(rng.integers(len(shadow.commodities)))]
        return CommodityDeparture(at_iteration=at_iteration, commodity=target.name)
    if kind == "arrival":
        if not pool:
            return None
        candidate = pool[int(rng.integers(len(pool)))]
        return CommodityArrival(at_iteration=at_iteration, commodity=candidate)
    raise ModelError(f"unknown event kind {kind!r}")


def churn_trace(
    network: StreamNetwork,
    spec: Optional[ChurnSpec] = None,
    seed: int = 0,
) -> List[NetworkEvent]:
    """A replayable mixed event timeline for ``network``.

    Every emitted event has been applied to a shadow copy of the evolving
    network via :func:`repro.online.rebuild.apply_event`, so replaying the
    trace (incrementally or from scratch) is guaranteed not to raise.
    Commodities that leave -- via departure or as failure collateral --
    enter a re-arrival pool; a later ``arrival`` draw offers one of them
    back (it is re-validated against the *current* physical topology, so a
    commodity whose links have since failed simply stays in the pool).
    Event iterations are strictly increasing with gaps drawn from
    ``spec.iteration_gap_range``.
    """
    spec = spec or ChurnSpec()
    rng = np.random.default_rng(seed)
    kinds = [k for k in EVENT_KINDS if spec.weights.get(k, 0.0) > 0]
    probs = np.array([spec.weights[k] for k in kinds], dtype=float)
    probs /= probs.sum()

    shadow = network
    pool: List[Commodity] = []
    events: List[NetworkEvent] = []
    at_iteration = 0
    for _ in range(spec.num_events):
        at_iteration += int(rng.integers(*spec.iteration_gap_range))
        for attempt in range(spec.max_attempts_per_event):
            kind = kinds[int(rng.choice(len(kinds), p=probs))]
            candidate = _draw_candidate(
                kind, shadow, pool, at_iteration, spec, rng
            )
            if candidate is None:
                continue
            try:
                result = apply_event(shadow, candidate)
            except ModelError:
                continue  # infeasible against the current shadow; redraw
            departed = [
                c
                for c in shadow.commodities
                if c.name not in {x.name for x in result.network.commodities}
            ]
            pool.extend(departed)
            if isinstance(candidate, CommodityArrival):
                assert candidate.commodity is not None
                pool = [c for c in pool if c.name != candidate.commodity.name]
            shadow = result.network
            events.append(candidate)
            break
        else:
            raise ModelError(
                f"no valid event found after {spec.max_attempts_per_event} "
                f"attempts at slot {len(events)}; loosen the spec"
            )
    return events
