"""Declarative workload construction: topologies, traces, failures, specs.

This package unifies what used to be scattered across five
``repro.workloads`` modules (now deprecated shims) behind one abstraction:

* :class:`ScenarioSpec` -- a frozen ``topology + demand + failures +
  placement + seed`` description that :meth:`~ScenarioSpec.compile`\\ s to
  a ``(StreamNetwork, event timeline)`` pair, shadow-validated so it
  replays through :class:`repro.online.OnlineOrchestrator` without
  raising.
* :func:`scenario` -- the named catalog (``scenario("fat-tree-128",
  seed=3)``); benchmarks and examples pull their workloads from here.
* the generator toolbox the specs are built from: random/layered/named
  networks, fat-tree and ISP topologies, slot-level arrival traces,
  diurnal / flash-crowd demand timelines, churn mixes, and correlated
  failure bursts.

See ``docs/scenarios.md`` for the schema and the topology/trace catalog.
"""

from repro.scenarios.churn import ChurnSpec, churn_network, churn_trace
from repro.scenarios.demand import (
    TraceStats,
    constant_trace,
    diurnal_events,
    diurnal_rate,
    diurnal_trace,
    flash_crowd_events,
    flash_crowd_trace,
    mmpp_trace,
    onoff_trace,
    poisson_trace,
    trace_stats,
)
from repro.scenarios.failures import (
    CorrelatedFailureSpec,
    correlated_failure_events,
)
from repro.scenarios.layered import (
    diamond_network,
    layered_network,
    tandem_network,
)
from repro.scenarios.named import (
    figure1_network,
    financial_pipeline_network,
    sensor_fusion_network,
)
from repro.scenarios.random_network import (
    RandomNetworkSpec,
    paper_figure4_network,
    random_stream_network,
)
from repro.scenarios.registry import (
    SERVE_WEIGHTS,
    register_scenario,
    scenario,
    scenario_names,
    scenario_summaries,
)
from repro.scenarios.spec import (
    DEMAND_KINDS,
    FAILURE_KINDS,
    PLACEMENT_KINDS,
    TOPOLOGY_KINDS,
    CompiledScenario,
    DemandSpec,
    FailureSpec,
    PlacementSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.scenarios.topologies import (
    FatTreeSpec,
    IspSpec,
    StreamRequest,
    fat_tree_network,
    fat_tree_requests,
    isp_network,
    isp_requests,
    sparse_large_spec,
)

__all__ = [
    # spec layer
    "ScenarioSpec",
    "CompiledScenario",
    "TopologySpec",
    "DemandSpec",
    "FailureSpec",
    "PlacementSpec",
    "TOPOLOGY_KINDS",
    "DEMAND_KINDS",
    "FAILURE_KINDS",
    "PLACEMENT_KINDS",
    # registry
    "scenario",
    "scenario_names",
    "scenario_summaries",
    "register_scenario",
    "SERVE_WEIGHTS",
    # topologies
    "StreamRequest",
    "FatTreeSpec",
    "fat_tree_network",
    "fat_tree_requests",
    "IspSpec",
    "isp_network",
    "isp_requests",
    "sparse_large_spec",
    "RandomNetworkSpec",
    "random_stream_network",
    "paper_figure4_network",
    "tandem_network",
    "layered_network",
    "diamond_network",
    "figure1_network",
    "sensor_fusion_network",
    "financial_pipeline_network",
    # demand
    "constant_trace",
    "poisson_trace",
    "onoff_trace",
    "mmpp_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "diurnal_rate",
    "diurnal_events",
    "flash_crowd_events",
    "TraceStats",
    "trace_stats",
    # churn + failures
    "ChurnSpec",
    "churn_network",
    "churn_trace",
    "CorrelatedFailureSpec",
    "correlated_failure_events",
]
