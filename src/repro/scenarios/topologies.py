"""Datacenter and ISP topology generators.

The ROADMAP's scenario expansion: beyond the paper's synthetic random
graphs, build stream networks over topologies with real structure --

* :func:`fat_tree_network` -- a k-ary fat-tree/Clos datacenter fabric
  (Al-Fares et al.): ``k`` pods of edge/aggregation switches, a
  ``(k/2)^2`` core, and ``k^3/4`` hosts.  Streams are task chains riding
  the canonical up/down path between two distinct pods, so every chain
  has the same length and placement freedom at each tier.
* :func:`isp_network` -- an ISP-style scale-free graph
  (Barabási–Albert preferential attachment): heavy-tailed degrees, a few
  hub routers, short diameters.  Streams are exact-hop-distance layered
  DAGs between router pairs, the same near-shortest-path structure
  :func:`repro.placement.feasible_hosts` searches.
* :func:`sparse_large_spec` -- the sparse many-commodity
  :class:`RandomNetworkSpec` used by the scale-ladder and async
  benchmarks (moved here from ``repro.validate.strategies``, which
  re-exports it).

All generation is deterministic given ``seed``.  Node naming is stable
and strata are recoverable from names (``h<pod>_<i>``, ``e<pod>_<i>``,
``a<pod>_<i>``, ``c<i>``, ``r<i>``), which the topology-invariant tests
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.commodity import Commodity, StreamNetwork, Task
from repro.core.network import PhysicalNetwork
from repro.core.utility import LinearUtility, UtilityFunction
from repro.exceptions import ModelError
from repro.scenarios.random_network import RandomNetworkSpec

__all__ = [
    "StreamRequest",
    "FatTreeSpec",
    "fat_tree_requests",
    "fat_tree_network",
    "IspSpec",
    "isp_requests",
    "isp_network",
    "sparse_large_spec",
]


@dataclass(frozen=True)
class StreamRequest:
    """A stream admission request *before* placement: the task chain, its
    endpoints, and the offered rate -- the input both to the default
    full-strata placement of :func:`fat_tree_network` / :func:`isp_network`
    and to :class:`repro.placement.JointPlacementLoop`, which chooses the
    hosts itself."""

    name: str
    tasks: Tuple[Task, ...]
    source: str
    sink: str
    max_rate: float


def sparse_large_spec(num_nodes: int, num_commodities: int) -> RandomNetworkSpec:
    """A sparse many-commodity instance spec at roughly constant density.

    Wide shallow layers keep per-commodity subgraphs small relative to the
    extended edge set, so ``J*(E+V)`` dense work-cells dwarf the allowed
    cells -- the scale regime of ``bench_scale_ladder.py``'s rungs.
    """
    width = max(3, num_nodes // 8)
    return RandomNetworkSpec(
        num_nodes=num_nodes,
        num_commodities=num_commodities,
        depth_range=(4, 6),
        layer_width_range=(width, width + 2),
        extra_edge_probability=0.15,
    )


@dataclass
class FatTreeSpec:
    """Knobs of the fat-tree generator.

    ``k`` is the switch radix (even, >= 2): ``k`` pods, ``k/2`` edge and
    ``k/2`` aggregation switches per pod, ``(k/2)^2`` core switches and
    ``k/2`` hosts per edge switch.  Capacities shrink going up the tree
    (hosts do the heavy processing; switches mostly forward) while link
    bandwidth grows (core links are the fat ones).
    """

    k: int = 4
    num_streams: int = 4
    host_capacity_range: Tuple[float, float] = (40.0, 90.0)
    switch_capacity_range: Tuple[float, float] = (20.0, 45.0)
    edge_bandwidth_range: Tuple[float, float] = (20.0, 40.0)
    core_bandwidth_range: Tuple[float, float] = (40.0, 80.0)
    cost_range: Tuple[float, float] = (0.5, 2.0)
    gain_range: Tuple[float, float] = (0.7, 1.2)
    rate_range: Tuple[float, float] = (10.0, 40.0)
    utility_factory: Optional[Callable[[int], UtilityFunction]] = None

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ModelError("k must be an even integer >= 2")
        if self.num_streams < 1:
            raise ModelError("num_streams must be >= 1")
        if self.k < 4 and self.num_streams >= 1 and self.k == 2:
            # k=2 has two pods; still fine -- streams just all share them
            pass
        if self.utility_factory is None:
            self.utility_factory = lambda j: LinearUtility()


def _fat_tree_names(k: int) -> Tuple[List[str], Dict[int, List[str]], Dict[int, List[str]], Dict[int, List[str]]]:
    half = k // 2
    cores = [f"c{i}" for i in range(half * half)]
    edges = {p: [f"e{p}_{i}" for i in range(half)] for p in range(k)}
    aggs = {p: [f"a{p}_{i}" for i in range(half)] for p in range(k)}
    hosts = {
        p: [f"h{p}_{e * half + m}" for e in range(half) for m in range(half)]
        for p in range(k)
    }
    return cores, edges, aggs, hosts


def fat_tree_requests(
    spec: Optional[FatTreeSpec] = None, seed: int = 0
) -> Tuple[PhysicalNetwork, List[StreamRequest], Dict[str, Dict[str, List[str]]]]:
    """The fat-tree fabric plus its stream requests and default placements.

    Returns ``(physical, requests, placements)``: the switch/host fabric,
    one :class:`StreamRequest` per stream (the canonical 7-stage up/down
    chain between two distinct pods), and the default *full-strata*
    placement -- each task may run on every switch of its tier, leaving
    the actual choice to routing.  :func:`fat_tree_network` materialises
    these; :class:`repro.placement.JointPlacementLoop` instead picks
    placements itself.  Deterministic given ``(spec, seed)``.
    """
    spec = spec or FatTreeSpec()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFA7]))
    k, half = spec.k, spec.k // 2
    cores, edges, aggs, hosts = _fat_tree_names(k)

    physical = PhysicalNetwork()
    for name in cores:
        physical.add_server(name, float(rng.uniform(*spec.switch_capacity_range)))
    for p in range(k):
        for name in aggs[p] + edges[p]:
            physical.add_server(name, float(rng.uniform(*spec.switch_capacity_range)))
        for name in hosts[p]:
            physical.add_server(name, float(rng.uniform(*spec.host_capacity_range)))

    def both(tail: str, head: str, bandwidth: float) -> None:
        physical.add_link(tail, head, bandwidth)
        physical.add_link(head, tail, bandwidth)

    for p in range(k):
        for e in range(half):
            for m in range(half):
                both(
                    hosts[p][e * half + m],
                    edges[p][e],
                    float(rng.uniform(*spec.edge_bandwidth_range)),
                )
            for a in range(half):
                both(
                    edges[p][e],
                    aggs[p][a],
                    float(rng.uniform(*spec.edge_bandwidth_range)),
                )
        for a in range(half):
            for m in range(half):
                both(
                    aggs[p][a],
                    cores[a * half + m],
                    float(rng.uniform(*spec.core_bandwidth_range)),
                )

    stage_names = ("ingest", "up_edge", "up_agg", "core", "down_agg", "down_edge", "egress")
    requests: List[StreamRequest] = []
    placements: Dict[str, Dict[str, List[str]]] = {}
    for j in range(spec.num_streams):
        src_pod = int(rng.integers(k))
        dst_pod = int((src_pod + 1 + rng.integers(k - 1)) % k)
        source = hosts[src_pod][int(rng.integers(len(hosts[src_pod])))]
        sink = f"sink{j}"
        physical.add_sink(sink)
        for h in hosts[dst_pod]:
            physical.add_link(
                h, sink, float(rng.uniform(*spec.edge_bandwidth_range))
            )
        tasks = tuple(
            Task(
                f"{stage}_{j}",
                cost=float(rng.uniform(*spec.cost_range)),
                gain=float(rng.uniform(*spec.gain_range)),
            )
            for stage in stage_names
        )
        placements[f"stream{j}"] = {
            tasks[0].name: [source],
            tasks[1].name: edges[src_pod],
            tasks[2].name: aggs[src_pod],
            tasks[3].name: cores,
            tasks[4].name: aggs[dst_pod],
            tasks[5].name: edges[dst_pod],
            tasks[6].name: hosts[dst_pod],
        }
        requests.append(
            StreamRequest(
                name=f"stream{j}",
                tasks=tasks,
                source=source,
                sink=sink,
                max_rate=float(rng.uniform(*spec.rate_range)),
            )
        )
    return physical, requests, placements


def fat_tree_network(spec: Optional[FatTreeSpec] = None, seed: int = 0) -> StreamNetwork:
    """A k-ary fat-tree fabric with ``num_streams`` cross-pod task chains.

    Every stream's chain is the canonical 7-stage up/down path -- source
    host, source-pod edge and aggregation tiers, core, destination-pod
    aggregation and edge tiers, destination hosts -- followed by a
    per-stream sink fed by *all* destination-pod hosts, so the final
    placement stays a routing choice.  Unreachable hosts are pruned by the
    task-chain builder.  Deterministic given ``(spec, seed)``.
    """
    spec = spec or FatTreeSpec()
    physical, requests, placements = fat_tree_requests(spec, seed)
    network = StreamNetwork(physical=physical)
    for j, req in enumerate(requests):
        network.add_commodity(
            Commodity.from_task_chain(
                name=req.name,
                network=physical,
                tasks=list(req.tasks),
                placement=placements[req.name],
                source=req.source,
                sink=req.sink,
                max_rate=req.max_rate,
                utility=spec.utility_factory(j),  # type: ignore[misc]
            )
        )
    network.validate()
    return network


@dataclass
class IspSpec:
    """Knobs of the ISP (Barabási–Albert) generator.

    ``num_routers`` nodes are grown with preferential attachment
    (``attachment`` links per new node), giving the heavy-tailed degree
    profile of router-level ISP maps.  Streams are layered exact-hop DAGs
    between router pairs at chain length in ``chain_range``.
    """

    num_routers: int = 32
    attachment: int = 2
    num_streams: int = 4
    chain_range: Tuple[int, int] = (3, 5)
    capacity_range: Tuple[float, float] = (25.0, 80.0)
    bandwidth_range: Tuple[float, float] = (15.0, 60.0)
    cost_range: Tuple[float, float] = (0.5, 2.0)
    gain_range: Tuple[float, float] = (0.7, 1.2)
    rate_range: Tuple[float, float] = (10.0, 40.0)
    utility_factory: Optional[Callable[[int], UtilityFunction]] = None

    def __post_init__(self) -> None:
        if self.num_routers < 4:
            raise ModelError("num_routers must be >= 4")
        if not 1 <= self.attachment < self.num_routers:
            raise ModelError("attachment must be in [1, num_routers)")
        if self.num_streams < 1:
            raise ModelError("num_streams must be >= 1")
        lo, hi = self.chain_range
        if not 2 <= lo <= hi:
            raise ModelError("chain_range must satisfy 2 <= lo <= hi")
        if self.utility_factory is None:
            self.utility_factory = lambda j: LinearUtility()


def _bfs_distances(adj: Dict[str, List[str]], start: str) -> Dict[str, int]:
    dist = {start: 0}
    frontier = [start]
    while frontier:
        nxt: List[str] = []
        for u in frontier:
            for v in adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def isp_requests(
    spec: Optional[IspSpec] = None, seed: int = 0
) -> Tuple[PhysicalNetwork, List[StreamRequest], Dict[str, Dict[str, List[str]]]]:
    """The ISP graph plus its stream requests and default placements.

    Returns ``(physical, requests, placements)``: the router graph, one
    :class:`StreamRequest` per stream (a chain between a router pair at
    hop distance within ``chain_range``), and the default exact-hop-layer
    placement (task ``l`` on every router at exactly ``l`` hops from the
    source and ``d - l`` from the target).  Deterministic given
    ``(spec, seed)``.
    """
    import networkx as nx

    spec = spec or IspSpec()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x15B]))
    graph = nx.barabasi_albert_graph(
        spec.num_routers, spec.attachment, seed=int(rng.integers(2**31))
    )
    routers = [f"r{i}" for i in range(spec.num_routers)]

    physical = PhysicalNetwork()
    for name in routers:
        physical.add_server(name, float(rng.uniform(*spec.capacity_range)))
    adj: Dict[str, List[str]] = {name: [] for name in routers}
    for u, v in sorted(graph.edges()):
        tail, head = routers[u], routers[v]
        physical.add_link(tail, head, float(rng.uniform(*spec.bandwidth_range)))
        physical.add_link(head, tail, float(rng.uniform(*spec.bandwidth_range)))
        adj[tail].append(head)
        adj[head].append(tail)

    requests: List[StreamRequest] = []
    placements: Dict[str, Dict[str, List[str]]] = {}
    lo, hi = spec.chain_range
    for j in range(spec.num_streams):
        placement: Optional[Dict[str, List[str]]] = None
        tasks: List[Task] = []
        source = sink_router = ""
        for _attempt in range(200):
            source = routers[int(rng.integers(len(routers)))]
            dist_s = _bfs_distances(adj, source)
            candidates = [
                (r, d) for r, d in sorted(dist_s.items()) if lo <= d <= hi
            ]
            if not candidates:
                continue
            sink_router, depth = candidates[int(rng.integers(len(candidates)))]
            dist_t = _bfs_distances(adj, sink_router)
            layers = [
                sorted(
                    r
                    for r in routers
                    if dist_s.get(r) == level and dist_t.get(r) == depth - level
                )
                for level in range(depth + 1)
            ]
            if all(layers):
                tasks = [
                    Task(
                        f"hop{level}_{j}",
                        cost=float(rng.uniform(*spec.cost_range)),
                        gain=float(rng.uniform(*spec.gain_range)),
                    )
                    for level in range(depth + 1)
                ]
                placement = {
                    task.name: layer for task, layer in zip(tasks, layers)
                }
                break
        if placement is None:
            raise ModelError(
                f"no router pair at chain length {spec.chain_range} after 200 "
                f"attempts; grow num_routers or widen chain_range"
            )
        sink = f"sink{j}"
        physical.add_sink(sink)
        physical.add_link(
            sink_router, sink, float(rng.uniform(*spec.bandwidth_range))
        )
        placements[f"stream{j}"] = placement
        requests.append(
            StreamRequest(
                name=f"stream{j}",
                tasks=tuple(tasks),
                source=source,
                sink=sink,
                max_rate=float(rng.uniform(*spec.rate_range)),
            )
        )
    return physical, requests, placements


def isp_network(spec: Optional[IspSpec] = None, seed: int = 0) -> StreamNetwork:
    """A scale-free ISP graph with ``num_streams`` exact-hop stream DAGs.

    Routers are servers; every undirected BA edge becomes two directed
    links.  For each stream a router pair ``(s, t)`` at hop distance ``d``
    in ``chain_range`` is drawn; task ``l`` may be placed on any router at
    exactly ``l`` hops from ``s`` *and* ``d - l`` hops from ``t`` -- the
    near-shortest-path DAG -- and a per-stream sink hangs off ``t``.
    Deterministic given ``(spec, seed)``.
    """
    spec = spec or IspSpec()
    physical, requests, placements = isp_requests(spec, seed)
    network = StreamNetwork(physical=physical)
    for j, req in enumerate(requests):
        network.add_commodity(
            Commodity.from_task_chain(
                name=req.name,
                network=physical,
                tasks=list(req.tasks),
                placement=placements[req.name],
                source=req.source,
                sink=req.sink,
                max_rate=req.max_rate,
                utility=spec.utility_factory(j),  # type: ignore[misc]
            )
        )
    network.validate()
    return network
