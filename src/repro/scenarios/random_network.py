"""Random stream-network generators, including the paper's Figure-4 workload.

Section 6 of the paper evaluates on "a synthetic (random) network containing
40 nodes, and 3 source and sink pairs", with

* link capacities and node computing capacities ~ U[1, 100],
* node potentials ``g_n(j)`` ~ U[1, 10] (gains ``beta = g_head / g_tail``),
* resource consumption parameters ``c`` ~ U[1, 5],
* utility = total throughput (linear).

The paper does not specify the random graph construction or the offered
rates ``lambda_j``.  We generate each commodity as a *layered DAG* -- the
shape task-chain placement produces (Figure 1) and the only structure
consistent with the paper's standing assumptions ("the subgraphs
corresponding to individual streams are DAGs", "a server is assigned to
process at most one task for each commodity").  Offered rates default to
U[10, 50]; large enough that capacities bind and admission control is
active.  Both choices are recorded in DESIGN.md/EXPERIMENTS.md.

All generation is deterministic given ``seed``.

(Moved here from ``repro.workloads.random_network``, which remains as a
deprecated shim for one release.)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.commodity import Commodity, StreamNetwork
from repro.core.network import PhysicalNetwork
from repro.core.utility import LinearUtility, UtilityFunction
from repro.exceptions import ModelError

Edge = Tuple[str, str]

__all__ = ["RandomNetworkSpec", "random_stream_network", "paper_figure4_network"]


class RandomNetworkSpec:
    """Knobs of the random generator (defaults follow the paper's Figure 4)."""

    def __init__(
        self,
        num_nodes: int = 40,
        num_commodities: int = 3,
        depth_range: Tuple[int, int] = (4, 6),
        layer_width_range: Tuple[int, int] = (3, 5),
        capacity_range: Tuple[float, float] = (1.0, 100.0),
        potential_range: Tuple[float, float] = (1.0, 10.0),
        cost_range: Tuple[float, float] = (1.0, 5.0),
        rate_range: Tuple[float, float] = (10.0, 50.0),
        extra_edge_probability: float = 0.3,
        utility_factory: Optional[Callable[[int], UtilityFunction]] = None,
    ) -> None:
        if num_commodities < 1:
            raise ModelError("need at least one commodity")
        min_needed = num_commodities * 2 + num_commodities  # sources+sinks+slack
        if num_nodes < min_needed:
            raise ModelError(
                f"num_nodes={num_nodes} too small for {num_commodities} commodities"
            )
        self.num_nodes = num_nodes
        self.num_commodities = num_commodities
        self.depth_range = depth_range
        self.layer_width_range = layer_width_range
        self.capacity_range = capacity_range
        self.potential_range = potential_range
        self.cost_range = cost_range
        self.rate_range = rate_range
        self.extra_edge_probability = extra_edge_probability
        self.utility_factory = utility_factory or (lambda j: LinearUtility())


def random_stream_network(
    spec: Optional[RandomNetworkSpec] = None,
    seed: int = 0,
    max_attempts: int = 50,
) -> StreamNetwork:
    """Generate a random, connected, validated :class:`StreamNetwork`.

    Deterministic given ``(spec, seed)``.  Construction can occasionally
    yield a disconnected union graph (commodity subgraphs that never touch);
    such draws are rejected and regenerated from a derived sub-seed, so the
    result is still a pure function of the seed.
    """
    spec = spec or RandomNetworkSpec()
    for attempt in range(max_attempts):
        rng = np.random.default_rng(np.random.SeedSequence([seed, attempt]))
        network = _attempt_generation(spec, rng)
        if network is not None:
            return network
    raise ModelError(
        f"failed to generate a connected network in {max_attempts} attempts "
        f"(seed={seed}); loosen the spec"
    )


def _assign_layers(
    spec: RandomNetworkSpec,
    rng: np.random.Generator,
    processing_names: Sequence[str],
    sources: Sequence[str],
) -> Optional[List[List[List[str]]]]:
    """Assign processing nodes to each commodity's interior layers.

    Two properties are enforced by construction (both required for a valid
    paper-style instance):

    * **coverage** -- every processing node lands in at least one commodity's
      layer, so the union graph has no isolated nodes;
    * **sharing** -- surplus layer slots are filled with nodes already used
      by *other* commodities (never twice within one commodity, honouring
      "a server is assigned at most one task per commodity"), which couples
      the commodities' resource usage and glues the union graph together.
    """
    num_j = len(sources)
    interior: List[List[List[str]]] = []
    priority_slots: List[Tuple[int, int]] = []  # first slot of each layer
    extra_slots: List[Tuple[int, int]] = []
    for j in range(num_j):
        depth = int(rng.integers(spec.depth_range[0], spec.depth_range[1] + 1))
        layers: List[List[str]] = []
        for layer_idx in range(depth - 1):
            width = int(
                rng.integers(spec.layer_width_range[0], spec.layer_width_range[1] + 1)
            )
            layers.append([])
            priority_slots.append((j, layer_idx))
            extra_slots.extend([(j, layer_idx)] * (width - 1))
        interior.append(layers)

    rng.shuffle(priority_slots)
    rng.shuffle(extra_slots)
    slots = priority_slots + extra_slots

    member_of: List[set] = [set(s) for s in ([src] for src in sources)]
    unassigned = [n for n in processing_names if n not in sources]
    rng.shuffle(unassigned)

    # phase 1: coverage -- place every node somewhere
    slot_cursor = 0
    for node in unassigned:
        placed = False
        while slot_cursor < len(slots):
            j, layer_idx = slots[slot_cursor]
            slot_cursor += 1
            if node not in member_of[j]:
                interior[j][layer_idx].append(node)
                member_of[j].add(node)
                placed = True
                break
        if not placed:  # slots exhausted: append to a random interior layer
            candidates = [
                (j, layer_idx)
                for j in range(num_j)
                for layer_idx in range(len(interior[j]))
                if node not in member_of[j]
            ]
            if not candidates:
                return None
            j, layer_idx = candidates[int(rng.integers(len(candidates)))]
            interior[j][layer_idx].append(node)
            member_of[j].add(node)

    # phase 2: sharing -- fill the remaining slots from other commodities
    used = [n for n in processing_names]
    for j, layer_idx in slots[slot_cursor:]:
        candidates = [n for n in used if n not in member_of[j]]
        if not candidates:
            continue
        node = candidates[int(rng.integers(len(candidates)))]
        interior[j][layer_idx].append(node)
        member_of[j].add(node)

    # connectivity guarantee: the "overlap graph" on commodities (edge iff
    # two commodities share a node) must be connected, otherwise the union
    # graph falls apart.  Merge components by planting a node of one
    # commodity into an interior layer of another.
    overlap = nx.Graph()
    overlap.add_nodes_from(range(num_j))
    for a in range(num_j):
        for b in range(a + 1, num_j):
            if member_of[a] & member_of[b]:
                overlap.add_edge(a, b)
    components = [sorted(c) for c in nx.connected_components(overlap)]
    while len(components) > 1:
        a = components[0][0]
        b = components[1][0]
        candidates = [n for n in sorted(member_of[b]) if n not in member_of[a]]
        if not candidates or not interior[a]:
            return None
        node = candidates[int(rng.integers(len(candidates)))]
        layer_idx = int(rng.integers(len(interior[a])))
        interior[a][layer_idx].append(node)
        member_of[a].add(node)
        merged = components[0] + components[1]
        components = [merged] + components[2:]

    # every interior layer must be non-empty (priority slots usually ensure
    # this; tiny node pools can defeat them)
    for layers in interior:
        if any(not layer for layer in layers):
            return None
    return interior


def _attempt_generation(
    spec: RandomNetworkSpec, rng: np.random.Generator
) -> Optional[StreamNetwork]:
    num_sinks = spec.num_commodities
    num_processing = spec.num_nodes - num_sinks
    processing_names = [f"n{i}" for i in range(num_processing)]
    sink_names = [f"sink{j}" for j in range(spec.num_commodities)]

    physical = PhysicalNetwork()
    lo_c, hi_c = spec.capacity_range
    for name in processing_names:
        physical.add_server(name, capacity=float(rng.uniform(lo_c, hi_c)))
    for name in sink_names:
        physical.add_sink(name)

    # sources: distinct processing nodes, one per commodity
    source_indices = rng.choice(num_processing, size=spec.num_commodities, replace=False)
    sources = [processing_names[i] for i in source_indices]

    commodity_layers = _assign_layers(spec, rng, processing_names, sources)
    if commodity_layers is None:
        return None
    for j in range(spec.num_commodities):
        commodity_layers[j] = (
            [[sources[j]]] + commodity_layers[j] + [[sink_names[j]]]
        )

    # per-commodity edges between consecutive layers
    commodity_edges: List[List[Edge]] = []
    link_bandwidth: Dict[Edge, float] = {}
    for layers in commodity_layers:
        edges: List[Edge] = []
        for depth in range(len(layers) - 1):
            tails, heads = layers[depth], layers[depth + 1]
            # guarantee coverage: every tail gets >= 1 out-edge, every head
            # >= 1 in-edge, then sprinkle extras
            for t_idx, tail in enumerate(tails):
                head = heads[t_idx % len(heads)]
                edges.append((tail, head))
            for h_idx, head in enumerate(heads):
                tail = tails[h_idx % len(tails)]
                edges.append((tail, head))
            for tail in tails:
                for head in heads:
                    if rng.random() < spec.extra_edge_probability:
                        edges.append((tail, head))
        edges = list(dict.fromkeys(edges))
        commodity_edges.append(edges)
        for edge in edges:
            if edge not in link_bandwidth:
                link_bandwidth[edge] = float(rng.uniform(lo_c, hi_c))

    for (tail, head), bandwidth in link_bandwidth.items():
        physical.add_link(tail, head, bandwidth)

    stream_network = StreamNetwork(physical=physical)
    lo_g, hi_g = spec.potential_range
    lo_r, hi_r = spec.cost_range
    lo_l, hi_l = spec.rate_range
    for j in range(spec.num_commodities):
        edges = commodity_edges[j]
        # sorted so the draw order (hence the instance) is process independent
        nodes = sorted({n for e in edges for n in e})
        potentials = {n: float(rng.uniform(lo_g, hi_g)) for n in nodes}
        costs = {e: float(rng.uniform(lo_r, hi_r)) for e in edges}
        commodity = Commodity.from_subgraph(
            name=f"stream{j}",
            source=sources[j],
            sink=sink_names[j],
            max_rate=float(rng.uniform(lo_l, hi_l)),
            edges=edges,
            potentials=potentials,
            costs=costs,
            utility=spec.utility_factory(j),
            prune=True,
        )
        stream_network.add_commodity(commodity)

    try:
        stream_network.validate()
    except Exception:
        return None
    return stream_network


def paper_figure4_network(seed: int = 7) -> StreamNetwork:
    """The Figure-4 workload: 40 nodes, 3 commodities, the paper's parameter
    distributions, throughput utility.

    The default seed is fixed so EXPERIMENTS.md numbers are reproducible;
    pass another seed for replicates.
    """
    spec = RandomNetworkSpec(
        num_nodes=40,
        num_commodities=3,
        capacity_range=(1.0, 100.0),
        potential_range=(1.0, 10.0),
        cost_range=(1.0, 5.0),
        rate_range=(10.0, 50.0),
        utility_factory=lambda j: LinearUtility(),
    )
    return random_stream_network(spec, seed=seed)
