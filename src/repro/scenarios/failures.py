"""Correlated failure models: rack and AS outages as clustered event bursts.

Independent single-element failures (the ``link_failure`` / ``node_failure``
kinds of :class:`~repro.scenarios.churn.ChurnSpec`) miss the dominant
real-world pattern: a rack power loss or an AS-level outage takes out a
*cluster* of nearby elements at once.  :func:`correlated_failure_events`
models that as bursts -- an anchor node plus its BFS ball in the physical
topology, emitted as consecutive :class:`~repro.online.events.NodeFailure`
and :class:`~repro.online.events.LinkFailure` events (the orchestrator
applies one event per iteration, so a burst is a run of adjacent
iterations).

Every emitted event is applied to a shadow copy of the evolving network
via :func:`repro.online.rebuild.apply_event`, so the burst timeline is
replayable without raising; candidates that would disconnect the last
commodity are skipped, mirroring :func:`repro.scenarios.churn.churn_trace`.
Everything is deterministic given ``(spec, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.commodity import StreamNetwork
from repro.exceptions import ModelError
from repro.online.events import LinkFailure, NetworkEvent, NodeFailure
from repro.online.rebuild import apply_event

__all__ = ["CorrelatedFailureSpec", "correlated_failure_events"]


@dataclass
class CorrelatedFailureSpec:
    """Knobs of the correlated-failure generator.

    Each of ``num_bursts`` bursts anchors at a random interior processing
    node and fails the anchor's BFS ball of radius ``cluster_radius``
    (capped at ``cluster_size`` nodes -- "the rack"), plus a
    ``link_fraction`` share of the in-use links crossing the cluster
    boundary ("the uplinks").  Bursts start at ``start_iteration`` and are
    ``burst_gap`` iterations apart; events within a burst occupy
    consecutive iterations.
    """

    num_bursts: int = 2
    cluster_radius: int = 1
    cluster_size: int = 3
    link_fraction: float = 0.5
    start_iteration: int = 10
    burst_gap: int = 40

    def __post_init__(self) -> None:
        if self.num_bursts < 1:
            raise ModelError("num_bursts must be >= 1")
        if self.cluster_radius < 0:
            raise ModelError("cluster_radius must be >= 0")
        if self.cluster_size < 1:
            raise ModelError("cluster_size must be >= 1")
        if not 0.0 <= self.link_fraction <= 1.0:
            raise ModelError("link_fraction must be in [0, 1]")
        if self.start_iteration < 1:
            raise ModelError("start_iteration must be >= 1")
        if self.burst_gap < 2:
            raise ModelError("burst_gap must be >= 2")


def _undirected_adjacency(network: StreamNetwork) -> Dict[str, Set[str]]:
    adj: Dict[str, Set[str]] = {}
    for tail, head in network.physical.links:
        adj.setdefault(tail, set()).add(head)
        adj.setdefault(head, set()).add(tail)
    return adj


def _interior_nodes(shadow: StreamNetwork) -> List[str]:
    """Processing nodes that are neither a source nor a sink of any live
    commodity -- the only safe anchors (killing a source always drops its
    whole commodity, which makes short bursts degenerate)."""
    sources = {c.source for c in shadow.commodities}
    sinks = {c.sink for c in shadow.commodities}
    return sorted(
        {n for c in shadow.commodities for n in c.potentials} - sources - sinks
    )


def correlated_failure_events(
    network: StreamNetwork,
    spec: Optional[CorrelatedFailureSpec] = None,
    seed: int = 0,
) -> List[NetworkEvent]:
    """A replayable burst timeline of clustered node + link failures.

    Each burst fails a connected cluster (anchor + BFS ball) of interior
    processing nodes at consecutive iterations, then a sampled fraction of
    the in-use links crossing the cluster boundary.  Candidates that the
    shadow replay rejects (e.g. the failure would disconnect every
    commodity) are skipped rather than retried elsewhere: a burst that
    *partially* lands is exactly what a real outage with redundant
    capacity looks like.
    """
    spec = spec or CorrelatedFailureSpec()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFA11]))
    adj = _undirected_adjacency(network)

    shadow = network
    events: List[NetworkEvent] = []
    at_iteration = spec.start_iteration
    for _burst in range(spec.num_bursts):
        interior = _interior_nodes(shadow)
        if not interior:
            break
        anchor = interior[int(rng.integers(len(interior)))]
        # the "rack": BFS ball around the anchor, interior nodes only
        cluster = [anchor]
        seen = {anchor}
        frontier = [anchor]
        for _ in range(spec.cluster_radius):
            nxt: List[str] = []
            for u in frontier:
                for v in sorted(adj.get(u, ())):
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
            cluster.extend(v for v in nxt if v in set(interior))
        cluster = cluster[: spec.cluster_size]

        felled: Set[str] = set()
        for node in cluster:
            candidate: NetworkEvent = NodeFailure(
                at_iteration=at_iteration, node=node
            )
            try:
                shadow = apply_event(shadow, candidate).network
            except ModelError:
                continue  # redundant capacity absorbed part of the outage
            events.append(candidate)
            felled.add(node)
            at_iteration += 1

        # the "uplinks": in-use links crossing the cluster boundary
        in_use = {e for c in shadow.commodities for e in c.edges}
        boundary: List[Tuple[str, str]] = sorted(
            (tail, head)
            for (tail, head) in in_use
            if (tail in seen) != (head in seen)
        )
        for link in boundary:
            if rng.random() >= spec.link_fraction:
                continue
            candidate = LinkFailure(at_iteration=at_iteration, link=link)
            try:
                shadow = apply_event(shadow, candidate).network
            except ModelError:
                continue
            events.append(candidate)
            at_iteration += 1

        at_iteration += spec.burst_gap
    return events
