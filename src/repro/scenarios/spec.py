"""The declarative scenario layer: one frozen object per workload.

A :class:`ScenarioSpec` describes a complete experiment as data --
*topology* (which stream network to build), *demand* (how offered rates
evolve), *failures* (what breaks, and how correlated), and *placement*
(whether task placement is fixed or jointly optimized) -- plus a single
``seed``.  :meth:`ScenarioSpec.compile` turns it into a
:class:`CompiledScenario`: a ``(StreamNetwork, event timeline)`` pair
whose timeline has been validated event-by-event against a shadow copy of
the evolving network, so replaying it through
:class:`repro.online.OnlineOrchestrator` (or the serve daemon's load
driver) never raises.

Design rules:

* **Frozen and canonical.**  Specs are frozen dataclasses; component
  params are canonicalized to sorted JSON, so equal specs compare equal,
  hash equal, and round-trip bit-exactly through
  :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`.
* **Seed-deterministic.**  Everything derives from ``spec.seed``: the
  topology uses ``seed``, the demand trace ``seed + 1``, the failure
  model ``seed + 2``.  Same spec, same seed -> byte-identical timeline.
* **Composable.**  Demand and failure timelines are generated
  independently, then merged chronologically and re-validated through the
  shadow replay; events invalidated by the interleaving (e.g. a demand
  change for a stream a rack outage already removed) are dropped, exactly
  like the churn generator's redraw loop.

The named catalog lives in :mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.commodity import StreamNetwork
from repro.exceptions import ModelError
from repro.online.events import NetworkEvent
from repro.online.rebuild import apply_event
from repro.scenarios.churn import ChurnSpec, churn_network, churn_trace
from repro.scenarios.demand import diurnal_events, flash_crowd_events
from repro.scenarios.failures import (
    CorrelatedFailureSpec,
    correlated_failure_events,
)
from repro.scenarios.layered import (
    diamond_network,
    layered_network,
    tandem_network,
)
from repro.scenarios.named import (
    figure1_network,
    financial_pipeline_network,
    sensor_fusion_network,
)
from repro.scenarios.random_network import (
    RandomNetworkSpec,
    random_stream_network,
)
from repro.scenarios.topologies import (
    FatTreeSpec,
    IspSpec,
    fat_tree_network,
    isp_network,
    sparse_large_spec,
)

__all__ = [
    "TopologySpec",
    "DemandSpec",
    "FailureSpec",
    "PlacementSpec",
    "ScenarioSpec",
    "CompiledScenario",
    "TOPOLOGY_KINDS",
    "DEMAND_KINDS",
    "FAILURE_KINDS",
    "PLACEMENT_KINDS",
]

Params = Union[str, Mapping[str, Any]]


def _canonical_json(params: Params) -> str:
    """Sorted, separator-free JSON -- the canonical form all specs store."""
    if isinstance(params, str):
        try:
            parsed = json.loads(params)
        except json.JSONDecodeError as exc:
            raise ModelError(f"params is not valid JSON: {exc}") from None
    else:
        parsed = dict(params)
    if not isinstance(parsed, dict):
        raise ModelError("params must be a JSON object")
    try:
        return json.dumps(parsed, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ModelError(f"params must be JSON-serializable: {exc}") from None


# kind -> builder(seed, **params) -> StreamNetwork.  Deterministic builders
# (diamond, figure1, ...) simply ignore the seed.
_TOPOLOGY_BUILDERS: Dict[str, Callable[..., StreamNetwork]] = {
    "random": lambda seed, **p: random_stream_network(
        RandomNetworkSpec(**p), seed=seed
    ),
    "churn-random": lambda seed, **p: churn_network(seed=seed, **p),
    "sparse": lambda seed, num_nodes=120, num_commodities=16, **p: (
        random_stream_network(
            sparse_large_spec(num_nodes, num_commodities), seed=seed
        )
    ),
    "fat-tree": lambda seed, **p: fat_tree_network(FatTreeSpec(**p), seed=seed),
    "isp": lambda seed, **p: isp_network(IspSpec(**p), seed=seed),
    "tandem": lambda seed, **p: tandem_network(**p),
    "layered": lambda seed, **p: layered_network(**p),
    "diamond": lambda seed, **p: diamond_network(**p),
    "figure1": lambda seed, **p: figure1_network(**p),
    "sensor-fusion": lambda seed, **p: sensor_fusion_network(**p),
    "financial": lambda seed, **p: financial_pipeline_network(**p),
}

# kind -> builder(network, seed, **params) -> List[NetworkEvent]
_DEMAND_BUILDERS: Dict[str, Callable[..., List[NetworkEvent]]] = {
    "none": lambda network, seed, **p: [],
    "churn": lambda network, seed, **p: churn_trace(
        network, ChurnSpec(**p), seed=seed
    ),
    "diurnal": lambda network, seed, **p: diurnal_events(network, **p),
    "flash-crowd": lambda network, seed, **p: flash_crowd_events(network, **p),
}

# kind -> builder(network, seed, **params) -> List[NetworkEvent]
_FAILURE_BUILDERS: Dict[str, Callable[..., List[NetworkEvent]]] = {
    "none": lambda network, seed, **p: [],
    "correlated": lambda network, seed, **p: correlated_failure_events(
        network, CorrelatedFailureSpec(**p), seed=seed
    ),
}

_PLACEMENT_KINDS = ("static", "joint")

TOPOLOGY_KINDS = tuple(sorted(_TOPOLOGY_BUILDERS))
DEMAND_KINDS = tuple(sorted(_DEMAND_BUILDERS))
FAILURE_KINDS = tuple(sorted(_FAILURE_BUILDERS))
PLACEMENT_KINDS = _PLACEMENT_KINDS


class _ComponentSpec:
    """Shared canonicalization/validation for the kind+params components."""

    kind: str
    params: Params
    _KINDS: tuple = ()
    _LABEL = "component"

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ModelError(
                f"unknown {self._LABEL} kind {self.kind!r}; expected one of "
                f"{sorted(self._KINDS)}"
            )
        object.__setattr__(self, "params", _canonical_json(self.params))

    @property
    def options(self) -> Dict[str, Any]:
        """The params as a plain dict (JSON round-tripped)."""
        assert isinstance(self.params, str)
        return json.loads(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.options}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_ComponentSpec":
        return cls(  # type: ignore[call-arg]
            kind=data.get("kind", "none"), params=data.get("params", {})
        )


@dataclass(frozen=True)
class TopologySpec(_ComponentSpec):
    """Which :class:`StreamNetwork` to build (see ``TOPOLOGY_KINDS``)."""

    kind: str = "random"
    params: Params = "{}"
    _KINDS = tuple(_TOPOLOGY_BUILDERS)
    _LABEL = "topology"

    def build(self, seed: int) -> StreamNetwork:
        return _TOPOLOGY_BUILDERS[self.kind](seed, **self.options)


@dataclass(frozen=True)
class DemandSpec(_ComponentSpec):
    """How offered rates evolve over the timeline (``DEMAND_KINDS``)."""

    kind: str = "none"
    params: Params = "{}"
    _KINDS = tuple(_DEMAND_BUILDERS)
    _LABEL = "demand"

    def build(self, network: StreamNetwork, seed: int) -> List[NetworkEvent]:
        return _DEMAND_BUILDERS[self.kind](network, seed, **self.options)


@dataclass(frozen=True)
class FailureSpec(_ComponentSpec):
    """What breaks, and how correlated (``FAILURE_KINDS``)."""

    kind: str = "none"
    params: Params = "{}"
    _KINDS = tuple(_FAILURE_BUILDERS)
    _LABEL = "failure"

    def build(self, network: StreamNetwork, seed: int) -> List[NetworkEvent]:
        return _FAILURE_BUILDERS[self.kind](network, seed, **self.options)


@dataclass(frozen=True)
class PlacementSpec(_ComponentSpec):
    """Whether task placement is fixed (``static``) or co-optimized with
    routing/admission by :class:`repro.placement.JointPlacementLoop`
    (``joint``; params forward to the loop constructor)."""

    kind: str = "static"
    params: Params = "{}"
    _KINDS = _PLACEMENT_KINDS
    _LABEL = "placement"


def _merge_timelines(
    network: StreamNetwork,
    demand: List[NetworkEvent],
    failures: List[NetworkEvent],
) -> List[NetworkEvent]:
    """Chronologically merge two validated timelines into one.

    When either side is empty the other is returned untouched (it is
    already shadow-validated, and bit-parity with the legacy generators
    matters for committed benchmark baselines).  Otherwise events are
    merged by intended iteration (demand wins ties), renumbered to
    strictly increasing iterations, and re-validated against a shadow
    replay of the *combined* timeline; events the interleaving has
    invalidated are dropped.
    """
    if not failures:
        return demand
    if not demand:
        return failures
    merged = sorted(demand + failures, key=lambda e: e.at_iteration)
    shadow = network
    events: List[NetworkEvent] = []
    last = 0
    for event in merged:
        at = max(last + 1, event.at_iteration)
        candidate = dataclasses.replace(event, at_iteration=at)
        try:
            shadow = apply_event(shadow, candidate).network
        except ModelError:
            continue
        events.append(candidate)
        last = at
    return events


@dataclass(frozen=True)
class CompiledScenario:
    """The executable form of a spec: a network plus a replayable timeline."""

    spec: "ScenarioSpec"
    network: StreamNetwork
    events: List[NetworkEvent]

    def horizon(self, tail: int = 20) -> int:
        """Iterations needed to replay the full timeline plus a ``tail`` of
        quiet convergence iterations."""
        last = self.events[-1].at_iteration if self.events else 0
        return last + max(tail, 1)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative workload; see the module docstring.

    ``seed`` drives everything: topology uses ``seed``, demand
    ``seed + 1``, failures ``seed + 2`` (matching the long-standing
    benchmark convention of ``TRACE_SEED = NETWORK_SEED + 1``).
    """

    name: str = "custom"
    topology: TopologySpec = field(default_factory=TopologySpec)
    demand: DemandSpec = field(default_factory=DemandSpec)
    failures: FailureSpec = field(default_factory=FailureSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("scenario name must be non-empty")

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return dataclasses.replace(self, seed=seed)

    def compile(self) -> CompiledScenario:
        """Build the network and the shadow-validated event timeline."""
        network = self.topology.build(self.seed)
        demand = self.demand.build(network, self.seed + 1)
        failures = self.failures.build(network, self.seed + 2)
        events = _merge_timelines(network, demand, failures)
        return CompiledScenario(spec=self, network=network, events=events)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "demand": self.demand.to_dict(),
            "failures": self.failures.to_dict(),
            "placement": self.placement.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {
            "name",
            "seed",
            "topology",
            "demand",
            "failures",
            "placement",
        }
        unknown = set(data) - known
        if unknown:
            raise ModelError(f"unknown scenario fields: {sorted(unknown)}")
        def component(key: str, factory: Any) -> Any:
            raw = data.get(key)
            return factory.from_dict(raw) if raw is not None else factory()
        return cls(
            name=data.get("name", "custom"),
            seed=int(data.get("seed", 0)),
            topology=component("topology", TopologySpec),
            demand=component("demand", DemandSpec),
            failures=component("failures", FailureSpec),
            placement=component("placement", PlacementSpec),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
