"""Demand traces: slot-level arrival processes and event-timeline shapes.

Two layers live here:

* **slot traces** -- the original "bursty and unpredictable" arrival
  generators (Section 1 of the paper): :func:`constant_trace`,
  :func:`poisson_trace`, :func:`onoff_trace`, :func:`mmpp_trace`, plus the
  new non-stationary :func:`diurnal_trace` and :func:`flash_crowd_trace`
  profiles.  All return slotted *volume* arrays (data units per slot) and
  feed the :class:`~repro.core.admission.AdmissionController` examples.
* **event timelines** -- :func:`diurnal_events` and
  :func:`flash_crowd_events` compile the same demand shapes into
  shadow-validated :class:`~repro.online.events.DemandChange` timelines
  replayable through :class:`repro.online.OnlineOrchestrator` and the
  serve daemon -- the ``diurnal`` / ``flash-crowd`` demand kinds of
  :class:`repro.scenarios.ScenarioSpec`.

Everything is deterministic given a seed.  (The slot traces moved here
from ``repro.workloads.traces``, which remains as a deprecated shim for
one release.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.commodity import StreamNetwork
from repro.exceptions import ModelError
from repro.online.events import DemandChange, NetworkEvent
from repro.online.rebuild import apply_event

__all__ = [
    "constant_trace",
    "poisson_trace",
    "onoff_trace",
    "mmpp_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "TraceStats",
    "trace_stats",
    "diurnal_rate",
    "diurnal_events",
    "flash_crowd_events",
]


def constant_trace(rate: float, num_slots: int) -> np.ndarray:
    """Deterministic fluid arrivals: ``rate`` units every slot."""
    if rate < 0:
        raise ModelError("rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    return np.full(num_slots, float(rate))


def poisson_trace(rate: float, num_slots: int, seed: int = 0) -> np.ndarray:
    """Poisson arrivals with mean ``rate`` per slot."""
    if rate < 0:
        raise ModelError("rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.poisson(rate, size=num_slots).astype(float)


def onoff_trace(
    peak_rate: float,
    num_slots: int,
    on_probability: float = 0.3,
    mean_burst_length: float = 5.0,
    seed: int = 0,
) -> np.ndarray:
    """Markovian on/off bursts: ``peak_rate`` while ON, silence while OFF.

    ``on_probability`` sets the stationary ON fraction, so the long-run mean
    rate is ``peak_rate * on_probability``.
    """
    if peak_rate < 0:
        raise ModelError("peak_rate must be >= 0")
    if not 0.0 < on_probability < 1.0:
        raise ModelError("on_probability must be in (0, 1)")
    if mean_burst_length <= 0:
        raise ModelError("mean_burst_length must be > 0")
    rng = np.random.default_rng(seed)
    p_off = 1.0 / mean_burst_length  # ON -> OFF
    p_on = p_off * on_probability / (1.0 - on_probability)  # OFF -> ON
    trace = np.zeros(num_slots)
    on = rng.random() < on_probability
    for t in range(num_slots):
        trace[t] = peak_rate if on else 0.0
        if on:
            on = rng.random() >= p_off
        else:
            on = rng.random() < p_on
    return trace


def mmpp_trace(
    rates: Optional[np.ndarray] = None,
    num_slots: int = 1000,
    mean_state_length: float = 20.0,
    seed: int = 0,
) -> np.ndarray:
    """Markov-modulated Poisson process with uniform state switching.

    ``rates`` lists the Poisson intensity of each modulating state (defaults
    to a calm/normal/spike profile).  State holding times are geometric with
    the given mean.
    """
    if rates is None:
        rates = np.array([2.0, 10.0, 40.0])
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0 or np.any(rates < 0):
        raise ModelError("rates must be a non-empty 1-D non-negative array")
    if mean_state_length <= 1:
        raise ModelError("mean_state_length must be > 1")
    rng = np.random.default_rng(seed)
    switch_probability = 1.0 / mean_state_length
    trace = np.empty(num_slots)
    state = int(rng.integers(rates.size))
    for t in range(num_slots):
        trace[t] = rng.poisson(rates[state])
        if rng.random() < switch_probability:
            state = int(rng.integers(rates.size))
    return trace


@dataclass
class TraceStats:
    mean: float
    peak: float
    burstiness: float  # peak / mean (1.0 for constant traces)
    coefficient_of_variation: float


def trace_stats(trace: np.ndarray) -> TraceStats:
    """Summary statistics used by the admission-control examples."""
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise ModelError("empty trace")
    mean = float(trace.mean())
    peak = float(trace.max())
    std = float(trace.std())
    return TraceStats(
        mean=mean,
        peak=peak,
        burstiness=peak / mean if mean > 0 else float("inf"),
        coefficient_of_variation=std / mean if mean > 0 else float("inf"),
    )

def diurnal_rate(
    t: float,
    period: float,
    amplitude: float,
    phase: float = 0.0,
) -> float:
    """The diurnal multiplier at time ``t``: ``1 + amplitude*sin(...)``.

    ``period`` is the full day length in the same unit as ``t``;
    ``amplitude`` in [0, 1) keeps the multiplier strictly positive.
    """
    if period <= 0:
        raise ModelError("period must be > 0")
    if not 0.0 <= amplitude < 1.0:
        raise ModelError("amplitude must be in [0, 1)")
    return 1.0 + amplitude * math.sin(2.0 * math.pi * (t / period + phase))


def diurnal_trace(
    base_rate: float,
    num_slots: int,
    period: float = 96.0,
    amplitude: float = 0.6,
    noise: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """A sinusoidal day/night arrival curve with multiplicative noise.

    The mean rate swings between ``base_rate*(1-amplitude)`` and
    ``base_rate*(1+amplitude)`` over each ``period`` slots; per-slot noise
    is lognormal-ish (clipped normal multiplier) so the curve stays
    non-negative.
    """
    if base_rate < 0:
        raise ModelError("base_rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    if noise < 0:
        raise ModelError("noise must be >= 0")
    if period <= 0:
        raise ModelError("period must be > 0")
    if not 0.0 <= amplitude < 1.0:
        raise ModelError("amplitude must be in [0, 1)")
    rng = np.random.default_rng(seed)
    t = np.arange(num_slots, dtype=float)
    curve = 1.0 + amplitude * np.sin(2.0 * np.pi * t / period)
    jitter = np.clip(1.0 + noise * rng.standard_normal(num_slots), 0.0, None)
    return base_rate * curve * jitter


def flash_crowd_trace(
    base_rate: float,
    num_slots: int,
    spike_at: int,
    spike_factor: float = 4.0,
    decay: float = 0.85,
    noise: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """A flash crowd: steady arrivals, then a sudden spike decaying back.

    At slot ``spike_at`` the rate jumps to ``base_rate*spike_factor`` and
    decays geometrically (factor ``decay`` per slot) back toward the base.
    """
    if base_rate < 0:
        raise ModelError("base_rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    if not 0 <= spike_at < num_slots:
        raise ModelError("spike_at must be inside the trace")
    if spike_factor < 1.0:
        raise ModelError("spike_factor must be >= 1")
    if not 0.0 < decay < 1.0:
        raise ModelError("decay must be in (0, 1)")
    rng = np.random.default_rng(seed)
    t = np.arange(num_slots, dtype=float)
    excess = np.zeros(num_slots)
    after = t >= spike_at
    excess[after] = (spike_factor - 1.0) * decay ** (t[after] - spike_at)
    jitter = np.clip(1.0 + noise * rng.standard_normal(num_slots), 0.0, None)
    return base_rate * (1.0 + excess) * jitter


def _demand_events_from_multipliers(
    network: StreamNetwork,
    multipliers: Sequence[Sequence[float]],
    iteration_gap: int,
    floor: float,
) -> List[NetworkEvent]:
    """Compile per-sample rate multipliers into a replayable timeline.

    ``multipliers[s][j]`` scales commodity ``j``'s *original* max rate at
    sample ``s``.  Each sample occupies ``iteration_gap`` iterations; the
    J commodities of a sample get consecutive iterations (the orchestrator
    applies one event per iteration).  Every event is applied to a shadow
    network first, so the timeline replays without raising.
    """
    if iteration_gap < len(network.commodities) + 1:
        raise ModelError(
            "iteration_gap must exceed the commodity count so per-sample "
            "events get distinct iterations"
        )
    base_rates = {c.name: c.max_rate for c in network.commodities}
    names = [c.name for c in network.commodities]
    shadow = network
    events: List[NetworkEvent] = []
    for s, row in enumerate(multipliers):
        if len(row) != len(names):
            raise ModelError("one multiplier per commodity per sample")
        start = (s + 1) * iteration_gap
        alive = {c.name for c in shadow.commodities}
        offset = 0
        for name, mult in zip(names, row):
            if name not in alive:
                continue  # departed in some upstream composition; skip
            candidate = DemandChange(
                at_iteration=start + offset,
                commodity=name,
                new_rate=max(base_rates[name] * float(mult), floor),
            )
            result = apply_event(shadow, candidate)
            shadow = result.network
            events.append(candidate)
            offset += 1
    return events


def diurnal_events(
    network: StreamNetwork,
    num_samples: int = 12,
    period_samples: float = 8.0,
    amplitude: float = 0.6,
    iteration_gap: int = 20,
    stagger: bool = True,
    floor: float = 1e-6,
) -> List[NetworkEvent]:
    """A diurnal :class:`DemandChange` timeline for ``network``.

    Each commodity's max rate follows ``base * diurnal_rate(s, ...)``
    sampled at ``num_samples`` points; with ``stagger`` the commodities get
    evenly spaced phase offsets, so peaks do not all collide (streams in
    different timezones).  Deterministic: no randomness at all.
    """
    if num_samples < 1:
        raise ModelError("num_samples must be >= 1")
    n = len(network.commodities)
    rows = [
        [
            diurnal_rate(
                float(s),
                period_samples,
                amplitude,
                phase=(j / n if stagger else 0.0),
            )
            for j in range(n)
        ]
        for s in range(num_samples)
    ]
    return _demand_events_from_multipliers(network, rows, iteration_gap, floor)


def flash_crowd_events(
    network: StreamNetwork,
    num_samples: int = 10,
    spike_sample: int = 3,
    spike_factor: float = 4.0,
    decay: float = 0.6,
    hot_commodities: int = 1,
    iteration_gap: int = 20,
    floor: float = 1e-6,
) -> List[NetworkEvent]:
    """A flash-crowd :class:`DemandChange` timeline for ``network``.

    The first ``hot_commodities`` streams spike to ``spike_factor``x their
    base rate at ``spike_sample`` and decay geometrically back; the rest
    hold their base rate (their events are elided -- no-op changes would
    just burn orchestrator iterations).  Deterministic.
    """
    if num_samples < 1:
        raise ModelError("num_samples must be >= 1")
    if not 0 <= spike_sample < num_samples:
        raise ModelError("spike_sample must be inside the sample range")
    if spike_factor < 1.0:
        raise ModelError("spike_factor must be >= 1")
    if not 0.0 < decay < 1.0:
        raise ModelError("decay must be in (0, 1)")
    n = len(network.commodities)
    hot = max(1, min(hot_commodities, n))
    rows: List[List[float]] = []
    for s in range(num_samples):
        if s < spike_sample:
            rows.append([1.0] * n)
            continue
        mult = 1.0 + (spike_factor - 1.0) * decay ** (s - spike_sample)
        rows.append([mult if j < hot else 1.0 for j in range(n)])
    # elide exact no-ops by compiling only rows that change something
    events = _demand_events_from_multipliers(network, rows, iteration_gap, floor)
    base = {c.name: c.max_rate for c in network.commodities}
    return [
        e
        for e in events
        if not (
            isinstance(e, DemandChange)
            and abs(e.new_rate - base[e.commodity]) < 1e-12
        )
    ]
