"""Synthetic arrival traces: the "bursty and unpredictable" inputs the paper
motivates (Section 1).

All generators return slotted *volume* traces (data units per slot) and are
deterministic given a seed.  They feed the
:class:`~repro.core.admission.AdmissionController` examples and tests: the
optimiser provisions sustained rates, the token bucket enforces them against
these traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ModelError

__all__ = [
    "constant_trace",
    "poisson_trace",
    "onoff_trace",
    "mmpp_trace",
    "TraceStats",
    "trace_stats",
]


def constant_trace(rate: float, num_slots: int) -> np.ndarray:
    """Deterministic fluid arrivals: ``rate`` units every slot."""
    if rate < 0:
        raise ModelError("rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    return np.full(num_slots, float(rate))


def poisson_trace(rate: float, num_slots: int, seed: int = 0) -> np.ndarray:
    """Poisson arrivals with mean ``rate`` per slot."""
    if rate < 0:
        raise ModelError("rate must be >= 0")
    if num_slots < 1:
        raise ModelError("num_slots must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.poisson(rate, size=num_slots).astype(float)


def onoff_trace(
    peak_rate: float,
    num_slots: int,
    on_probability: float = 0.3,
    mean_burst_length: float = 5.0,
    seed: int = 0,
) -> np.ndarray:
    """Markovian on/off bursts: ``peak_rate`` while ON, silence while OFF.

    ``on_probability`` sets the stationary ON fraction, so the long-run mean
    rate is ``peak_rate * on_probability``.
    """
    if peak_rate < 0:
        raise ModelError("peak_rate must be >= 0")
    if not 0.0 < on_probability < 1.0:
        raise ModelError("on_probability must be in (0, 1)")
    if mean_burst_length <= 0:
        raise ModelError("mean_burst_length must be > 0")
    rng = np.random.default_rng(seed)
    p_off = 1.0 / mean_burst_length  # ON -> OFF
    p_on = p_off * on_probability / (1.0 - on_probability)  # OFF -> ON
    trace = np.zeros(num_slots)
    on = rng.random() < on_probability
    for t in range(num_slots):
        trace[t] = peak_rate if on else 0.0
        if on:
            on = rng.random() >= p_off
        else:
            on = rng.random() < p_on
    return trace


def mmpp_trace(
    rates: Optional[np.ndarray] = None,
    num_slots: int = 1000,
    mean_state_length: float = 20.0,
    seed: int = 0,
) -> np.ndarray:
    """Markov-modulated Poisson process with uniform state switching.

    ``rates`` lists the Poisson intensity of each modulating state (defaults
    to a calm/normal/spike profile).  State holding times are geometric with
    the given mean.
    """
    if rates is None:
        rates = np.array([2.0, 10.0, 40.0])
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or rates.size == 0 or np.any(rates < 0):
        raise ModelError("rates must be a non-empty 1-D non-negative array")
    if mean_state_length <= 1:
        raise ModelError("mean_state_length must be > 1")
    rng = np.random.default_rng(seed)
    switch_probability = 1.0 / mean_state_length
    trace = np.empty(num_slots)
    state = int(rng.integers(rates.size))
    for t in range(num_slots):
        trace[t] = rng.poisson(rates[state])
        if rng.random() < switch_probability:
            state = int(rng.integers(rates.size))
    return trace


@dataclass
class TraceStats:
    mean: float
    peak: float
    burstiness: float  # peak / mean (1.0 for constant traces)
    coefficient_of_variation: float


def trace_stats(trace: np.ndarray) -> TraceStats:
    """Summary statistics used by the admission-control examples."""
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise ModelError("empty trace")
    mean = float(trace.mean())
    peak = float(trace.max())
    std = float(trace.std())
    return TraceStats(
        mean=mean,
        peak=peak,
        burstiness=peak / mean if mean > 0 else float("inf"),
        coefficient_of_variation=std / mean if mean > 0 else float("inf"),
    )
