"""Deprecated: moved to :mod:`repro.scenarios.demand`."""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads.traces",
    target="repro.scenarios.demand",
    names=(
        "constant_trace",
        "poisson_trace",
        "onoff_trace",
        "mmpp_trace",
        "TraceStats",
        "trace_stats",
    ),
)
