"""Deprecated: moved to :mod:`repro.scenarios.named`."""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads.scenarios",
    target="repro.scenarios.named",
    names=("figure1_network", "sensor_fusion_network", "financial_pipeline_network"),
)
