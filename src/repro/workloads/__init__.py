"""Workload generators: random networks, controlled topologies, arrival traces."""

from repro.workloads.churn import ChurnSpec, churn_network, churn_trace
from repro.workloads.layered import diamond_network, layered_network, tandem_network
from repro.workloads.random_network import (
    RandomNetworkSpec,
    paper_figure4_network,
    random_stream_network,
)
from repro.workloads.scenarios import (
    figure1_network,
    financial_pipeline_network,
    sensor_fusion_network,
)
from repro.workloads.traces import (
    TraceStats,
    constant_trace,
    mmpp_trace,
    onoff_trace,
    poisson_trace,
    trace_stats,
)

__all__ = [
    "ChurnSpec",
    "churn_network",
    "churn_trace",
    "diamond_network",
    "layered_network",
    "tandem_network",
    "RandomNetworkSpec",
    "paper_figure4_network",
    "random_stream_network",
    "figure1_network",
    "financial_pipeline_network",
    "sensor_fusion_network",
    "TraceStats",
    "constant_trace",
    "mmpp_trace",
    "onoff_trace",
    "poisson_trace",
    "trace_stats",
]
