"""Deprecated: workload construction moved to :mod:`repro.scenarios`.

This package is a compatibility shim.  Every name it used to export now
lives in ``repro.scenarios`` (same signatures, same seeds, same outputs);
the first access to each legacy name emits a :class:`DeprecationWarning`
naming the replacement.  The shims will be removed next release --
migrate imports to ``repro.scenarios``.
"""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads",
    target="repro.scenarios",
    names=(
        "ChurnSpec",
        "churn_network",
        "churn_trace",
        "diamond_network",
        "layered_network",
        "tandem_network",
        "RandomNetworkSpec",
        "paper_figure4_network",
        "random_stream_network",
        "figure1_network",
        "financial_pipeline_network",
        "sensor_fusion_network",
        "TraceStats",
        "constant_trace",
        "mmpp_trace",
        "onoff_trace",
        "poisson_trace",
        "trace_stats",
    ),
)
