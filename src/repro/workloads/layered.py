"""Deprecated: moved to :mod:`repro.scenarios.layered`."""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads.layered",
    target="repro.scenarios.layered",
    names=("tandem_network", "layered_network", "diamond_network"),
)
