"""Deprecation machinery for the ``repro.workloads`` -> ``repro.scenarios``
move.

Each legacy module replaces its body with a lazy ``__getattr__`` built by
:func:`make_shim`: the first access to each legacy name warns once per
process (mirroring the ``repro.api`` hot-state shims) with the exact
replacement spelled out, then resolves against the new home.  Nothing is
imported eagerly, so merely having ``repro.workloads`` on an import path
stays silent until a deprecated name is actually used.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Any, Callable, List, Sequence, Set, Tuple

# (shim module, legacy name) pairs that have already warned this process
_WARNED: Set[Tuple[str, str]] = set()


def _reset_warned() -> None:
    """Forget past warnings (test hook: lets warn-once be asserted)."""
    _WARNED.clear()


def make_shim(
    shim: str,
    target: str,
    names: Sequence[str],
) -> Tuple[Callable[[str], Any], Callable[[], List[str]], List[str]]:
    """Build ``(__getattr__, __dir__, __all__)`` for a deprecated module.

    ``shim`` is the legacy module path (for the warning text), ``target``
    the new home every name in ``names`` resolves to.
    """

    def __getattr__(name: str) -> Any:
        if name in names:
            key = (shim, name)
            if key not in _WARNED:
                _WARNED.add(key)
                warnings.warn(
                    f"importing {name!r} from {shim} is deprecated and will "
                    f"be removed next release; use {target}.{name}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return getattr(importlib.import_module(target), name)
        raise AttributeError(f"module {shim!r} has no attribute {name!r}")

    def __dir__() -> List[str]:
        return sorted(names)

    return __getattr__, __dir__, list(names)
