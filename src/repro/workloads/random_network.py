"""Deprecated: moved to :mod:`repro.scenarios.random_network`."""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads.random_network",
    target="repro.scenarios.random_network",
    names=("RandomNetworkSpec", "random_stream_network", "paper_figure4_network"),
)
