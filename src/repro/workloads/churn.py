"""Deprecated: moved to :mod:`repro.scenarios.churn`."""

from repro.workloads._shim import make_shim

__getattr__, __dir__, __all__ = make_shim(
    shim="repro.workloads.churn",
    target="repro.scenarios.churn",
    names=("ChurnSpec", "churn_network", "churn_trace", "EVENT_KINDS"),
)
