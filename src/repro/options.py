"""The unified solver-option surface: one frozen :class:`SolveOptions`.

The keyword surface of :func:`repro.solve` accreted one axis at a time --
``workers=`` (PR 3), ``backend=``/``staleness=`` (PR 4), ``validate=``
(PR 5) -- and the CLI and :class:`repro.online.OnlineOrchestrator` each
re-spelled the same knobs.  :class:`SolveOptions` is the single source of
truth: every entry point (``solve()``, the CLI, the orchestrator) accepts
one frozen options object, and the drifted per-call kwargs survive as
deprecated aliases that construct the same object internally (see the
migration table in docs/api.md).

Round-trip law (pinned by tests/test_options.py)::

    SolveOptions.from_kwargs(**opts.to_kwargs()) == opts

and ``solve(net, options=opts)`` is bit-identical to
``solve(net, **opts.to_kwargs())``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Union

__all__ = ["SolveOptions"]


@dataclass(frozen=True)
class SolveOptions:
    """Every knob a solve run takes, as one immutable value.

    Attributes
    ----------
    method:
        ``"gradient"`` (default) / ``"distributed"`` / ``"optimal"`` /
        ``"backpressure"``.
    config:
        The method's config object (:class:`~repro.core.GradientConfig` or
        :class:`~repro.core.BackpressureConfig`), or ``None`` for defaults.
    workers:
        Parallel shard count: ``None`` (serial), an int, or ``"auto"``.
    backend:
        Backend name (``"serial"``/``"thread"``/``"process"``/``"auto"``)
        or a borrowed :class:`~repro.parallel.ExecutionBackend` instance.
    staleness:
        Bounded-staleness batch depth for the process backend (``None`` /
        ``0`` keeps the synchronous bit-identical schedule).  Under
        ``execution="async"`` the same number bounds how many epochs a
        node's neighbour view may lag before it must wait.
    execution:
        Execution model for ``method="distributed"``: ``None``/``"sync"``
        for the phase-barrier runner, ``"async"`` for the barrier-free
        event-driven engine (:class:`repro.simulation.AsyncGradientRun`).
    validate:
        ``False`` / ``True`` / ``"strict"`` -- the invariant-catalog audit.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation` hook.
    full_result:
        Return the full ``RunResult`` instead of just the ``Solution``.
    """

    method: str = "gradient"
    config: Any = None
    workers: Union[int, str, None] = None
    backend: Any = None
    staleness: Optional[int] = None
    execution: Optional[str] = None
    validate: Union[bool, str] = False
    instrumentation: Any = None
    full_result: bool = False

    def to_kwargs(self) -> dict:
        """The equivalent legacy keyword dict (the deprecated alias form)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SolveOptions":
        """Build options from the legacy keyword spelling.

        Unknown keys raise ``TypeError`` -- the per-field config aliases
        (``eta=`` and friends) belong to the config object, not here.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise TypeError(
                f"SolveOptions got unexpected keyword arguments {unknown}"
            )
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "SolveOptions":
        """A copy with the given fields replaced (frozen-safe)."""
        merged = self.to_kwargs()
        merged.update(changes)
        return SolveOptions.from_kwargs(**merged)
