"""Exporters: the stable JSON metrics schema and Chrome-trace format.

Two machine-readable views of one instrumented run:

* :func:`metrics_document` / :func:`write_metrics_json` -- the
  ``repro.metrics/1`` schema: registry sections (counters, gauges,
  histogram summaries) plus the full event timeline.  The same document
  shape is embedded by ``python -m repro solve --json`` and written by the
  benchmark harness (``BENCH_*.json``), so dashboards parse one format.
* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Trace Event
  Format consumed by ``chrome://tracing`` / Perfetto: phase spans become
  complete ``"X"`` slices, everything else instant ``"i"`` marks.
  Timestamps are microseconds, as the format requires.

Schema stability: additions are allowed within a major schema id; renames
or removals bump ``repro.metrics/<n>``.  Field names are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.instrumentation import Instrumentation

__all__ = [
    "METRICS_SCHEMA",
    "metrics_document",
    "write_metrics_json",
    "chrome_trace",
    "write_chrome_trace",
]

METRICS_SCHEMA = "repro.metrics/1"

_TRACE_PID = 1
# one Chrome-trace "thread" lane per record kind keeps the timeline readable
_TRACE_TIDS = {"phase": 1, "iteration": 2, "messages": 3, "event": 4}


def metrics_document(
    inst: Instrumentation, include_events: bool = True, **extra: Any
) -> Dict[str, Any]:
    """The ``repro.metrics/1`` JSON document of one instrumented run.

    ``extra`` entries land under ``"context"`` (run labels, model names,
    solver parameters -- anything the caller wants alongside the numbers).
    ``include_events=False`` drops the event timeline, keeping only the
    registry sections -- the compact form ``--json`` embeds inline.
    """
    doc: Dict[str, Any] = {"schema": METRICS_SCHEMA}
    if extra:
        doc["context"] = dict(extra)
    doc.update(inst.registry.as_dict())
    if include_events:
        doc["events"] = inst.events.as_dicts()
    return doc


def write_metrics_json(
    inst: Instrumentation, path: Union[str, Path], **extra: Any
) -> Dict[str, Any]:
    doc = metrics_document(inst, **extra)
    Path(path).write_text(json.dumps(doc, indent=2, default=_json_default))
    return doc


def chrome_trace(inst: Instrumentation) -> Dict[str, Any]:
    """The run timeline in Chrome Trace Event Format (JSON-object flavour)."""
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "args": {"name": "repro"},
        }
    ]
    for kind, tid in sorted(_TRACE_TIDS.items(), key=lambda kv: kv[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": kind},
            }
        )
    for event in inst.events:
        tid = _TRACE_TIDS.get(event.kind, _TRACE_TIDS["event"])
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.kind,
            "pid": _TRACE_PID,
            "tid": tid,
            "ts": event.ts * 1e6,
        }
        if event.dur is not None:
            entry["ph"] = "X"
            entry["dur"] = event.dur * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scope: thread
        if event.data:
            entry["args"] = _jsonable(event.data)
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(inst: Instrumentation, path: Union[str, Path]) -> Dict[str, Any]:
    doc = chrome_trace(inst)
    Path(path).write_text(json.dumps(doc, default=_json_default))
    return doc


def _json_default(value: Any) -> Any:
    """``json.dumps`` fallback for numpy scalars/arrays in event payloads."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


def _jsonable(data: Dict[str, Any]) -> Dict[str, Any]:
    """Best-effort JSON coercion for event payloads (numpy scalars etc.)."""
    out: Dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, (str, bool, int, float)) or value is None:
            out[key] = value
        elif hasattr(value, "item"):  # numpy scalar
            out[key] = value.item()
        elif hasattr(value, "tolist"):  # numpy array
            out[key] = value.tolist()
        else:
            out[key] = str(value)
    return out
