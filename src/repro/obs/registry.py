"""Metric primitives: counters, gauges, histograms, and their registry.

The paper's Section-6 evaluation argues in *quantities* -- messages per
iteration, sequential rounds, iterations to 95% of optimal -- and the
ROADMAP's perf trajectory argues in *timings*.  Both need a neutral place
to accumulate numbers that every layer (core engine, distributed runner,
back-pressure baseline, online orchestrator, benchmarks, CLI) can write to
without knowing who reads them.  :class:`MetricsRegistry` is that place:

* :class:`Counter` -- monotone totals (``messages_total``, ``flow_solves``);
* :class:`Gauge` -- last-write-wins values (``final_utility``, ``speedup``);
* :class:`Histogram` -- full sample distributions with percentile summaries
  (``phase.gamma.seconds``, per-iteration wall-clock).

Everything is plain Python floats and lists: no locks, no background
threads, no external deps.  A run's registry serialises via
:meth:`MetricsRegistry.as_dict` into the stable JSON schema documented in
``docs/observability.md`` (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotone non-negative total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def as_dict(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins value (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> Optional[float]:
        return self.value


class Histogram:
    """All observed samples plus summary statistics.

    Samples are kept verbatim (a float list) so exporters can compute exact
    percentiles; at the instrumentation cadence used here (a handful of
    observations per iteration) that is a few hundred KB for the longest
    runs, far below the cost of approximate sketches' complexity.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[int(rank)]

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": 0}
        ordered = sorted(self.samples)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[max(0, min(n - 1, round(q / 100.0 * (n - 1))))]

        return {
            "count": n,
            "sum": float(sum(ordered)),
            "mean": float(sum(ordered) / n),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": pct(50.0),
            "p90": pct(90.0),
            "p99": pct(99.0),
        }

    def as_dict(self) -> Dict[str, float]:
        return self.summary()


class MetricsRegistry:
    """Create-or-get registry of named metrics.

    Names are dotted paths by convention (``phase.flow_solve.seconds``,
    ``messages.forecast``); a name is bound to one metric kind for the
    registry's lifetime and re-requesting it with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"requested as {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """The registry as three name-sorted sections (the JSON schema)."""
        doc: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section = {Counter: "counters", Gauge: "gauges", Histogram: "histograms"}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            doc[section[type(metric)]][name] = metric.as_dict()
        return doc
