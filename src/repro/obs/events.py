"""Structured event log: the run's timeline, one record per occurrence.

Where the registry (:mod:`repro.obs.registry`) aggregates, the event log
*remembers*: each record carries a kind, a name, a timestamp relative to the
instrumentation epoch, an optional duration (phase spans), and free-form
data.  The four record kinds emitted by the built-in instrumentation points:

``phase``
    A timed span (``dur`` set): one solver phase such as ``flow_solve``,
    ``gamma``, or a distributed protocol wave.
``iteration``
    One sampled trajectory point (cost, utility, max utilization) at the
    run's ``record_every`` cadence.
``messages``
    Per-phase message/byte/round counts from the distributed runner.
``event``
    Anything else: online network events, recovery reports, run milestones.

The log is what the Chrome-trace exporter walks (phases become complete
``"X"`` slices, the rest instant ``"i"`` marks) and what the JSON metrics
document embeds verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One record of the run timeline."""

    kind: str  # "phase" | "iteration" | "messages" | "event"
    name: str
    ts: float  # seconds since the instrumentation epoch
    dur: Optional[float] = None  # seconds; phase spans only
    data: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind, "name": self.name, "ts": self.ts}
        if self.dur is not None:
            doc["dur"] = self.dur
        if self.data:
            doc["data"] = dict(self.data)
        return doc


class EventLog:
    """Append-only list of :class:`Event` records."""

    def __init__(self) -> None:
        self.records: List[Event] = []

    def add(
        self,
        kind: str,
        name: str,
        ts: float,
        dur: Optional[float] = None,
        **data: Any,
    ) -> Event:
        event = Event(kind=kind, name=name, ts=ts, dur=dur, data=data)
        self.records.append(event)
        return event

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.records if e.kind == kind]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [e.as_dict() for e in self.records]
