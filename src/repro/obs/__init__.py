"""Observability subsystem: metrics, phase timers, event log, exporters.

Quick tour::

    from repro.obs import Instrumentation

    inst = Instrumentation()
    result = GradientAlgorithm(ext, config).run(instrumentation=inst)
    inst.export_metrics("m.json")     # repro.metrics/1 JSON document
    inst.export_trace("t.json")       # chrome://tracing / Perfetto timeline

Every run-loop entry point (``GradientAlgorithm.run``,
``DistributedGradientRun.run``, ``BackpressureAlgorithm.run``,
``OnlineOrchestrator.run``, the top-level ``repro.solve``) accepts an
``instrumentation=`` hook and defaults to the zero-overhead
:data:`NULL_INSTRUMENTATION`.  See ``docs/observability.md`` for metric
names and schema details.
"""

from repro.obs.events import Event, EventLog
from repro.obs.export import (
    METRICS_SCHEMA,
    chrome_trace,
    metrics_document,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    NullInstrumentation,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timers import NULL_SPAN, NullSpan, PhaseSpan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "EventLog",
    "PhaseSpan",
    "NullSpan",
    "NULL_SPAN",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "METRICS_SCHEMA",
    "metrics_document",
    "write_metrics_json",
    "chrome_trace",
    "write_chrome_trace",
]
