"""Per-phase wall-clock timers with a negligible-overhead no-op default.

Two context managers share one protocol:

* :class:`PhaseSpan` measures a wall-clock interval with a monotonic clock
  and reports ``(name, start, duration, data)`` to a sink callback on exit;
* :data:`NULL_SPAN` is a shared, reusable no-op whose ``__enter__`` /
  ``__exit__`` do nothing -- the disabled path costs two attribute-free
  method calls (~100 ns), far below the microseconds a single gradient
  iteration spends in NumPy, which is how instrumentation stays "0% when
  disabled" without ``if`` pyramids at every call site.

The sink indirection keeps this module free of any knowledge of registries
or event logs; :class:`repro.obs.instrumentation.Instrumentation` supplies a
sink that feeds both.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

__all__ = ["PhaseSpan", "NullSpan", "NULL_SPAN"]

# sink(name, start_ts, duration, data) -- timestamps in epoch-relative seconds
SpanSink = Callable[[str, float, float, Dict[str, Any]], None]


class PhaseSpan:
    """Times one ``with`` block and reports it to ``sink`` on exit.

    ``clock`` must be monotonic (defaults to :func:`time.perf_counter`);
    ``epoch`` is subtracted from raw clock readings so all spans of a run
    share one origin (what the Chrome-trace timeline requires).
    """

    __slots__ = ("name", "data", "_sink", "_clock", "_epoch", "_start")

    def __init__(
        self,
        name: str,
        sink: SpanSink,
        clock: Callable[[], float] = time.perf_counter,
        epoch: float = 0.0,
        data: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.data = data or {}
        self._sink = sink
        self._clock = clock
        self._epoch = epoch
        self._start = 0.0

    def __enter__(self) -> "PhaseSpan":
        self._start = self._clock() - self._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._clock() - self._epoch
        self._sink(self.name, self._start, end - self._start, self.data)


class NullSpan:
    """The do-nothing span; one shared instance serves every disabled site."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
