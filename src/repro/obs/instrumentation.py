"""The ``Instrumentation`` hook object threaded through every run loop.

One object bundles the three observability primitives -- a
:class:`~repro.obs.registry.MetricsRegistry`, an
:class:`~repro.obs.events.EventLog`, and phase timers -- behind the small
surface the algorithms call:

``phase(name, **data)``
    Context manager timing one solver phase; feeds both a ``phase`` event
    and the ``phase.<name>.seconds`` histogram.
``iteration(iteration, **data)``
    One sampled trajectory point (recorded at the run's ``record_every``
    cadence); also bumps the ``iterations_recorded`` counter.
``messages(phase, messages, bytes, rounds, **data)``
    Protocol-cost accounting from the distributed runner: total and
    per-phase counters plus round histograms.
``count(name, n)`` / ``gauge(name, value)``
    Raw registry access for anything else.
``event(name, **data)``
    Free-form instant event (online network events, run milestones).

Contract with the algorithms
----------------------------
Instrumentation is **read-only**: hooks receive already-computed values
(from the shared :class:`~repro.core.context.IterationContext`) and never
trigger recomputation, so an instrumented run performs *exactly* the same
floating-point work as a bare one -- iterates stay bit-identical and no
extra flow solves happen (the overhead-guard test pins this).

Every run-loop entry point defaults to :data:`NULL_INSTRUMENTATION`, whose
methods are empty and whose ``phase`` returns a shared no-op span: the
disabled cost is a few dead calls per *iteration* (not per node/edge),
unmeasurable next to the NumPy kernels.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry
from repro.obs.timers import NULL_SPAN, NullSpan, PhaseSpan

__all__ = ["Instrumentation", "NullInstrumentation", "NULL_INSTRUMENTATION"]


class Instrumentation:
    """Live metrics + events collector for one run (or several, pooled)."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self._clock = clock
        self._epoch = clock()

    # -- time ----------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this instrumentation object was created."""
        return self._clock() - self._epoch

    # -- hooks ----------------------------------------------------------------------
    def phase(self, name: str, **data: Any) -> PhaseSpan:
        """Time a ``with`` block as solver phase ``name``."""
        return PhaseSpan(
            name,
            sink=self._on_span,
            clock=self._clock,
            epoch=self._epoch,
            data=data,
        )

    def _on_span(
        self, name: str, start: float, duration: float, data: Dict[str, Any]
    ) -> None:
        self.events.add("phase", name, ts=start, dur=duration, **data)
        self.registry.histogram(f"phase.{name}.seconds").observe(duration)

    def phase_observation(
        self, name: str, duration: float, *, worker: Optional[int] = None, **data: Any
    ) -> None:
        """Record an already-measured phase duration (no ``with`` block).

        The parallel backend uses this for timings measured *inside* worker
        processes: the worker clocks its shard and ships the float back, and
        the master records it here under the same ``phase.<name>.seconds``
        naming scheme so :func:`repro.analysis.report.timing_table` (and the
        CLI ``profile`` command) render per-worker rows automatically.
        """
        if worker is not None:
            data.setdefault("worker", worker)
        self.events.add("phase", name, ts=self.now(), dur=duration, **data)
        self.registry.histogram(f"phase.{name}.seconds").observe(duration)

    def iteration(self, iteration: int, **data: Any) -> None:
        self.events.add("iteration", "iteration", ts=self.now(), iteration=iteration, **data)
        self.registry.counter("iterations_recorded").inc()

    def messages(
        self,
        phase: str,
        messages: int,
        bytes: int,
        rounds: int,
        **data: Any,
    ) -> None:
        reg = self.registry
        reg.counter("messages_total").inc(messages)
        reg.counter("bytes_total").inc(bytes)
        reg.counter(f"messages.{phase}").inc(messages)
        reg.counter(f"bytes.{phase}").inc(bytes)
        reg.histogram(f"rounds.{phase}").observe(rounds)
        self.events.add(
            "messages",
            phase,
            ts=self.now(),
            messages=messages,
            bytes=bytes,
            rounds=rounds,
            **data,
        )

    def count(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def event(self, name: str, **data: Any) -> None:
        self.events.add("event", name, ts=self.now(), **data)

    # -- export ---------------------------------------------------------------------
    def metrics_document(
        self, include_events: bool = True, **extra: Any
    ) -> Dict[str, Any]:
        from repro.obs.export import metrics_document

        return metrics_document(self, include_events=include_events, **extra)

    def export_metrics(self, path, **extra: Any) -> Dict[str, Any]:
        from repro.obs.export import write_metrics_json

        return write_metrics_json(self, path, **extra)

    def export_trace(self, path) -> Dict[str, Any]:
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(self, path)


class NullInstrumentation:
    """The disabled sink: every hook is a no-op, ``phase`` costs nothing.

    Shares the :class:`Instrumentation` surface by duck typing (no registry
    or event log is ever allocated), so call sites hold one unconditional
    reference instead of branching.
    """

    enabled = False
    registry: Optional[MetricsRegistry] = None
    events: Optional[EventLog] = None

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def phase(self, name: str, **data: Any) -> NullSpan:
        return NULL_SPAN

    def phase_observation(
        self, name: str, duration: float, *, worker: Optional[int] = None, **data: Any
    ) -> None:
        pass

    def iteration(self, iteration: int, **data: Any) -> None:
        pass

    def messages(
        self, phase: str, messages: int, bytes: int, rounds: int, **data: Any
    ) -> None:
        pass

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **data: Any) -> None:
        pass


NULL_INSTRUMENTATION = NullInstrumentation()
