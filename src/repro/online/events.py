"""Timeline events for online re-optimisation studies.

The paper closes Section 3 observing that the barrier's reserved headroom
"could be used to better accommodate changing demands, or for faster
recovery in the case of node or link failures".  These events model exactly
those disturbances; :mod:`repro.online.orchestrator` replays them against a
running instance of the algorithm and measures re-convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.commodity import Commodity
from repro.exceptions import ModelError

__all__ = [
    "NetworkEvent",
    "DemandChange",
    "LinkFailure",
    "NodeFailure",
    "CapacityChange",
    "CommodityArrival",
    "CommodityDeparture",
]


@dataclass(frozen=True)
class NetworkEvent:
    """Base class: something that happens at a given iteration."""

    at_iteration: int

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ModelError("event iteration must be >= 0")


@dataclass(frozen=True)
class DemandChange(NetworkEvent):
    """Commodity ``commodity`` changes its offered rate to ``new_rate``."""

    commodity: str = ""
    new_rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.commodity:
            raise ModelError("DemandChange needs a commodity name")
        if not self.new_rate > 0:
            raise ModelError("new_rate must be > 0 (drop the commodity instead)")


@dataclass(frozen=True)
class LinkFailure(NetworkEvent):
    """The physical link ``link`` fails (both its bandwidth and the
    commodity edges riding it disappear)."""

    link: Tuple[str, str] = ("", "")

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.link[0] or not self.link[1]:
            raise ModelError("LinkFailure needs a (tail, head) link")


@dataclass(frozen=True)
class NodeFailure(NetworkEvent):
    """Processing node ``node`` fails: it and all adjacent links disappear."""

    node: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ModelError("NodeFailure needs a node name")


@dataclass(frozen=True)
class CapacityChange(NetworkEvent):
    """Node ``node``'s compute budget changes to ``new_capacity`` (models
    degraded mode, co-located tenants, or elastic scale-up)."""

    node: str = ""
    new_capacity: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ModelError("CapacityChange needs a node name")
        if not self.new_capacity > 0:
            raise ModelError("new_capacity must be > 0 (use NodeFailure instead)")


@dataclass(frozen=True)
class CommodityArrival(NetworkEvent):
    """A new stream session joins the system.

    ``commodity`` must be fully specified against the *current* physical
    topology; admission control then decides how much of its offered rate
    the system actually carries (Section 3's dummy-source construction).
    """

    commodity: Optional[Commodity] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.commodity is None:
            raise ModelError("CommodityArrival needs a Commodity")


@dataclass(frozen=True)
class CommodityDeparture(NetworkEvent):
    """The stream session named ``commodity`` leaves the system."""

    commodity: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.commodity:
            raise ModelError("CommodityDeparture needs a commodity name")
