"""Online re-optimisation: demand changes, failures, warm-start recovery.

Makes the paper's Section-3 motivation ("remaining capacity could be used to
better accommodate changing demands, or for faster recovery in the case of
node or link failures") measurable: replay event timelines against the
running algorithm and quantify recovery.
"""

from repro.online.events import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NetworkEvent,
    NodeFailure,
)
from repro.online.orchestrator import (
    OnlineOrchestrator,
    OnlineRecord,
    OnlineResult,
    RecoveryReport,
)
from repro.online.rebuild import (
    RebuildResult,
    apply_event,
    emergency_shed,
    remap_routing,
)

__all__ = [
    "CapacityChange",
    "CommodityArrival",
    "CommodityDeparture",
    "DemandChange",
    "LinkFailure",
    "NetworkEvent",
    "NodeFailure",
    "OnlineOrchestrator",
    "OnlineRecord",
    "OnlineResult",
    "RecoveryReport",
    "RebuildResult",
    "apply_event",
    "emergency_shed",
    "remap_routing",
]
