"""Online orchestration: run the algorithm through a timeline of events.

:class:`OnlineOrchestrator` interleaves gradient iterations with network
events (failures, demand surges, capacity changes, commodity churn).  At
each event it

1. advances the model one *epoch* through the delta compiler
   (:func:`repro.core.delta.compile_event` / ``apply_delta``): scalar
   events patch the extended network in place, structural events splice a
   successor re-deriving only the commodities the event touched,
2. carries the routing state across at the array level
   (:func:`repro.core.delta.carry_routing`) -- a *warm start*, exercising
   the paper's claim that reserved headroom speeds up recovery,
3. optionally applies :func:`emergency_shed` so hard capacities hold
   immediately, and
4. refreshes the execution backend (``algo.refresh``) -- a parallel
   backend republishes only dirty shared-memory segments and keeps its
   worker pool alive -- then keeps iterating, recording the utility
   trajectory and, per event, how many iterations the algorithm needs to
   re-enter 95% of the *new* optimum.

``incremental=False`` selects the legacy full-rebuild path
(:func:`repro.online.rebuild.apply_event` + a from-scratch
:func:`build_extended_network` + a fresh algorithm binding); it is kept as
the oracle reference the delta path is validated against
(``repro.validate.DifferentialOracle.compare_rebuild``) and produces
bit-identical trajectories.

A cold-start comparison (fresh shed-everything routing after each event) is
available via ``warm_start=False``; the recovery benchmark contrasts the
two.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.convergence import iterations_to_fraction
from repro.core.commodity import StreamNetwork
from repro.core.delta import apply_delta, carry_routing, compile_event
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import evaluate_cost
from repro.core.optimal import solve_optimal
from repro.core.routing import feasibility_report, initial_routing
from repro.core.solution import Solution, build_solution
from repro.core.transform import build_extended_network
from repro.exceptions import ModelError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.online.events import NetworkEvent
from repro.online.rebuild import apply_event, emergency_shed, remap_routing

__all__ = ["OnlineRecord", "RecoveryReport", "OnlineResult", "OnlineOrchestrator"]


@dataclass
class OnlineRecord:
    """One sampled point of the online trajectory (global iteration time)."""

    iteration: int
    utility: float
    max_utilization: float
    event: Optional[str] = None
    cost: float = float("nan")  # penalised objective A at the sample


@dataclass
class RecoveryReport:
    """Recovery metrics for one event."""

    event: NetworkEvent
    at_iteration: int
    pre_event_utility: float
    post_event_utility: float  # immediately after remap (+ shedding)
    new_optimal_utility: float
    iterations_to_95: Optional[int]  # iterations after the event
    dropped_commodities: List[str] = field(default_factory=list)
    # model epoch after the event (0 on the legacy full-rebuild path, which
    # rebuilds from scratch and therefore restarts the version counter)
    epoch: int = 0

    @property
    def utility_dip(self) -> float:
        return self.pre_event_utility - self.post_event_utility


@dataclass
class OnlineResult:
    """Outcome of an online run; implements the ``RunResult`` protocol.

    ``history`` is the canonical trajectory accessor (``records`` remains as
    the founding field name).  The protocol is implemented directly rather
    than via :class:`~repro.core.result.RunResultMixin` because
    ``final_utility`` is a dataclass *field* here (the last evaluated
    utility), which would collide with the mixin's read-only property.
    """

    records: List[OnlineRecord]
    recoveries: List[RecoveryReport]
    final_utility: float
    solution: Optional[Solution] = None

    @property
    def history(self) -> List[OnlineRecord]:
        return self.records

    @property
    def utilities(self) -> np.ndarray:
        return np.array([r.utility for r in self.records])

    @property
    def costs(self) -> np.ndarray:
        return np.array([r.cost for r in self.records])

    @property
    def recorded_iterations(self) -> np.ndarray:
        return np.array([r.iteration for r in self.records])

    @property
    def iterations(self) -> np.ndarray:
        """Deprecated alias of :attr:`recorded_iterations`.

        Every other result type's ``iterations`` is the *count* of
        iterations executed; this one returned the recorded iteration
        numbers.  The protocol spelling removes the ambiguity.
        """
        warnings.warn(
            "OnlineResult.iterations is deprecated; use recorded_iterations",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.recorded_iterations


class OnlineOrchestrator:
    """Drive the gradient algorithm through a timeline of network events."""

    def __init__(
        self,
        network: StreamNetwork,
        events: Sequence[NetworkEvent],
        config: Optional[GradientConfig] = None,
        warm_start: bool = True,
        shed_on_event: bool = True,
        record_every: int = 10,
        incremental: bool = True,
        backend=None,
        workers: Optional[int] = None,
        options=None,
    ) -> None:
        self.initial_network = network
        self.events = sorted(events, key=lambda e: e.at_iteration)
        for a, b in zip(self.events, self.events[1:]):
            if a.at_iteration == b.at_iteration:
                raise ModelError("one event per iteration, please")
        if options is not None:
            # the unified SolveOptions spelling (repro.options): carries
            # config/backend/workers; the bare kwargs are its deprecated
            # aliases and may not be combined with it
            from repro.options import SolveOptions

            if not isinstance(options, SolveOptions):
                raise ModelError(
                    f"options= takes a SolveOptions, got {type(options).__name__}"
                )
            if config is not None or backend is not None or workers is not None:
                raise ModelError(
                    "pass either options= or the config=/backend=/workers= "
                    "aliases, not both"
                )
            if options.method != "gradient":
                raise ModelError(
                    "the online orchestrator drives the gradient method; "
                    f"got options.method={options.method!r}"
                )
            config = options.config
            backend = options.backend
            workers = options.workers
        self.config = config or GradientConfig()
        self.warm_start = warm_start
        self.shed_on_event = shed_on_event
        self.record_every = record_every
        self.incremental = incremental
        from repro.parallel.backend import ExecutionBackend

        if isinstance(backend, ExecutionBackend) and workers is not None:
            raise ModelError("pass either backend= or workers=, not both")
        # a caller-supplied backend instance is borrowed (the caller closes
        # it); one we resolve from workers= / a backend name is owned and
        # closed at the end of run()
        self._backend = backend
        self._workers = workers
        self._epoch = 0
        self._epoch_deprecation_warned = False

    @classmethod
    def from_scenario(
        cls, spec, seed: Optional[int] = None, **kwargs
    ) -> "OnlineOrchestrator":
        """Build an orchestrator from a :class:`~repro.scenarios.ScenarioSpec`.

        ``spec`` is a spec instance or a catalog name
        (``"serve-diurnal-30"``); ``seed`` overrides the spec's pinned
        seed.  The spec's compiled ``(network, events)`` pair feeds the
        constructor; every other keyword argument is forwarded.
        """
        # lazy import: repro.scenarios uses the online event/rebuild layer
        # for shadow validation, so a module-scope import would be circular
        from repro.scenarios import ScenarioSpec, scenario

        if isinstance(spec, str):
            spec = scenario(spec, seed=seed)
        elif isinstance(spec, ScenarioSpec):
            if seed is not None:
                spec = spec.with_seed(seed)
        else:
            raise ModelError(
                f"from_scenario takes a ScenarioSpec or a catalog name, "
                f"got {type(spec).__name__}"
            )
        compiled = spec.compile()
        return cls(compiled.network, compiled.events, **kwargs)

    def current_epoch(self) -> int:
        """The model epoch after the most recently applied event.

        ``0`` before :meth:`run` starts and on the legacy full-rebuild path
        (``incremental=False``), which rebuilds from scratch and restarts
        the version counter.  This is the supported accessor -- the serve
        daemon and tests key off it; the bare ``epoch`` attribute is a
        deprecated alias.
        """
        return self._epoch

    @property
    def epoch(self) -> int:
        """Deprecated alias of :meth:`current_epoch` (warns once per
        instance, so a polling loop does not flood the log)."""
        if not self._epoch_deprecation_warned:
            self._epoch_deprecation_warned = True
            warnings.warn(
                "OnlineOrchestrator.epoch is deprecated; use current_epoch()",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._epoch

    def run(self, total_iterations: int, instrumentation=None) -> OnlineResult:
        """Run the timeline; ``instrumentation`` logs network events,
        re-optimisation phases, and the sampled trajectory (read-only)."""
        if total_iterations < 1:
            raise ModelError("total_iterations must be >= 1")
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        from repro.parallel.backend import resolve_backend

        ext = build_extended_network(self.initial_network)
        self._epoch = int(ext.epoch)
        backend = resolve_backend(
            self._backend, self._workers, ext=ext, instrumentation=inst
        )
        owns_backend = backend is not self._backend
        try:
            return self._run(total_iterations, inst, instrumentation, backend, ext)
        finally:
            if owns_backend:
                backend.close()

    def _run(
        self, total_iterations: int, inst, instrumentation, backend, ext
    ) -> OnlineResult:
        network = self.initial_network
        algo = GradientAlgorithm(ext, self.config, backend=backend)
        routing = initial_routing(ext)

        records: List[OnlineRecord] = []
        recoveries: List[RecoveryReport] = []
        pending = list(self.events)

        def snapshot(iteration: int, event_label: Optional[str] = None) -> float:
            breakdown = evaluate_cost(ext, routing, self.config.cost_model)
            report = feasibility_report(ext, routing)
            records.append(
                OnlineRecord(
                    iteration=iteration,
                    utility=breakdown.utility,
                    max_utilization=report.max_utilization,
                    event=event_label,
                    cost=float(breakdown.total),
                )
            )
            if inst.enabled:
                inst.iteration(
                    iteration,
                    cost=float(breakdown.total),
                    utility=breakdown.utility,
                    max_utilization=report.max_utilization,
                    **({"event": event_label} if event_label else {}),
                )
            return breakdown.utility

        snapshot(0)
        eta = self.config.eta
        eta_floor = eta * self.config.eta_min_factor
        eta_ceiling = eta * self.config.eta_max_factor
        previous_cost = evaluate_cost(ext, routing, self.config.cost_model).total

        for iteration in range(1, total_iterations + 1):
            while pending and pending[0].at_iteration == iteration:
                event = pending.pop(0)
                pre_utility = evaluate_cost(
                    ext, routing, self.config.cost_model
                ).utility

                if inst.enabled:
                    inst.event(
                        "network_event",
                        event=type(event).__name__,
                        iteration=iteration,
                        detail=str(event),
                    )
                event_name = type(event).__name__
                with inst.phase("rebuild", event=event_name):
                    old_ext = ext
                    if self.incremental:
                        with inst.phase("rebuild.delta.compile", event=event_name):
                            delta = compile_event(ext, event)
                        with inst.phase("rebuild.delta.apply", event=event_name):
                            applied = apply_delta(ext, delta)
                        ext = applied.ext
                        self._epoch = int(ext.epoch)
                        network = ext.stream_network
                        dropped = list(delta.dropped_commodities)
                        if self.warm_start:
                            routing = carry_routing(
                                old_ext, routing, ext, applied.maps
                            )
                            if self.shed_on_event:
                                routing = emergency_shed(ext, routing)
                        else:
                            routing = initial_routing(ext)
                        algo.refresh(applied)
                        inst.count("rebuild.delta.applied")
                        inst.count(f"rebuild.delta.{event_name}")
                        inst.count(
                            "rebuild.delta.structural"
                            if applied.structural
                            else "rebuild.delta.scalar"
                        )
                        inst.gauge("rebuild.epoch", float(ext.epoch))
                    else:
                        rebuilt = apply_event(network, event)
                        network = rebuilt.network
                        ext = build_extended_network(
                            network, require_connected=False
                        )
                        dropped = rebuilt.dropped_commodities
                        self._epoch = int(ext.epoch)
                        if self.warm_start:
                            routing = remap_routing(old_ext, routing, ext)
                            if self.shed_on_event:
                                routing = emergency_shed(ext, routing)
                        else:
                            routing = initial_routing(ext)
                        algo = GradientAlgorithm(
                            ext, self.config, backend=backend
                        )

                with inst.phase("reference_optimum"):
                    new_optimum = solve_optimal(ext).utility
                post_utility = snapshot(
                    iteration, event_label=event_name
                )
                recoveries.append(
                    RecoveryReport(
                        event=event,
                        at_iteration=iteration,
                        pre_event_utility=pre_utility,
                        post_event_utility=post_utility,
                        new_optimal_utility=new_optimum,
                        iterations_to_95=None,  # filled below
                        dropped_commodities=dropped,
                        epoch=ext.epoch,
                    )
                )
                # fresh landscape: restart the step-scale adaptation
                eta = self.config.eta
                previous_cost = evaluate_cost(
                    ext, routing, self.config.cost_model
                ).total

            with inst.phase("iteration", iteration=iteration):
                routing = algo.step(routing, eta=eta, instrumentation=instrumentation)
            if self.config.adaptive_eta:
                cost = evaluate_cost(ext, routing, self.config.cost_model).total
                if cost > previous_cost * (1.0 + 1e-12):
                    eta = max(eta * self.config.eta_backoff, eta_floor)
                else:
                    eta = min(eta * self.config.eta_growth, eta_ceiling)
                previous_cost = cost
            if iteration % self.record_every == 0 or iteration == total_iterations:
                snapshot(iteration)

        final_utility = evaluate_cost(ext, routing, self.config.cost_model).utility
        solution = build_solution(
            ext,
            routing,
            self.config.cost_model,
            method="gradient-online",
            iterations=total_iterations,
        )

        # recovery times: first recorded iteration (after the event) whose
        # utility reaches 95% of the new optimum
        for report in recoveries:
            later = [
                (r.iteration, r.utility)
                for r in records
                if r.iteration >= report.at_iteration
            ]
            iters = [i for i, __ in later]
            utils = [u for __, u in later]
            if report.new_optimal_utility > 0:
                hit = iterations_to_fraction(
                    iters, utils, report.new_optimal_utility, 0.95
                )
                report.iterations_to_95 = (
                    hit - report.at_iteration if hit is not None else None
                )

        if inst.enabled:
            inst.gauge("final_utility", final_utility)
            inst.gauge("events_applied", len(recoveries))
            for report in recoveries:
                inst.event(
                    "recovery",
                    event=type(report.event).__name__,
                    at_iteration=report.at_iteration,
                    utility_dip=report.utility_dip,
                    iterations_to_95=report.iterations_to_95,
                )
        return OnlineResult(
            records=records,
            recoveries=recoveries,
            final_utility=final_utility,
            solution=solution,
        )
