"""Online orchestration: run the algorithm through a timeline of events.

:class:`OnlineOrchestrator` interleaves gradient iterations with network
events (failures, demand surges, capacity changes).  At each event it

1. rebuilds the model (:func:`repro.online.rebuild.apply_event`),
2. carries the routing state across (:func:`remap_routing`) -- a *warm
   start*, exercising the paper's claim that reserved headroom speeds up
   recovery,
3. optionally applies :func:`emergency_shed` so hard capacities hold
   immediately, and
4. keeps iterating, recording the utility trajectory and, per event, how
   many iterations the algorithm needs to re-enter 95% of the *new*
   optimum.

A cold-start comparison (fresh shed-everything routing after each event) is
available via ``warm_start=False``; the recovery benchmark contrasts the
two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.convergence import iterations_to_fraction
from repro.core.commodity import StreamNetwork
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.marginals import evaluate_cost
from repro.core.optimal import solve_optimal
from repro.core.routing import feasibility_report, initial_routing
from repro.core.transform import build_extended_network
from repro.exceptions import ModelError
from repro.online.events import NetworkEvent
from repro.online.rebuild import apply_event, emergency_shed, remap_routing

__all__ = ["OnlineRecord", "RecoveryReport", "OnlineResult", "OnlineOrchestrator"]


@dataclass
class OnlineRecord:
    """One sampled point of the online trajectory (global iteration time)."""

    iteration: int
    utility: float
    max_utilization: float
    event: Optional[str] = None


@dataclass
class RecoveryReport:
    """Recovery metrics for one event."""

    event: NetworkEvent
    at_iteration: int
    pre_event_utility: float
    post_event_utility: float  # immediately after remap (+ shedding)
    new_optimal_utility: float
    iterations_to_95: Optional[int]  # iterations after the event
    dropped_commodities: List[str] = field(default_factory=list)

    @property
    def utility_dip(self) -> float:
        return self.pre_event_utility - self.post_event_utility


@dataclass
class OnlineResult:
    records: List[OnlineRecord]
    recoveries: List[RecoveryReport]
    final_utility: float

    @property
    def utilities(self) -> np.ndarray:
        return np.array([r.utility for r in self.records])

    @property
    def iterations(self) -> np.ndarray:
        return np.array([r.iteration for r in self.records])


class OnlineOrchestrator:
    """Drive the gradient algorithm through a timeline of network events."""

    def __init__(
        self,
        network: StreamNetwork,
        events: Sequence[NetworkEvent],
        config: Optional[GradientConfig] = None,
        warm_start: bool = True,
        shed_on_event: bool = True,
        record_every: int = 10,
    ) -> None:
        self.initial_network = network
        self.events = sorted(events, key=lambda e: e.at_iteration)
        for a, b in zip(self.events, self.events[1:]):
            if a.at_iteration == b.at_iteration:
                raise ModelError("one event per iteration, please")
        self.config = config or GradientConfig()
        self.warm_start = warm_start
        self.shed_on_event = shed_on_event
        self.record_every = record_every

    def run(self, total_iterations: int) -> OnlineResult:
        if total_iterations < 1:
            raise ModelError("total_iterations must be >= 1")
        network = self.initial_network
        ext = build_extended_network(network)
        algo = GradientAlgorithm(ext, self.config)
        routing = initial_routing(ext)

        records: List[OnlineRecord] = []
        recoveries: List[RecoveryReport] = []
        pending = list(self.events)

        def snapshot(iteration: int, event_label: Optional[str] = None) -> float:
            breakdown = evaluate_cost(ext, routing, self.config.cost_model)
            report = feasibility_report(ext, routing)
            records.append(
                OnlineRecord(
                    iteration=iteration,
                    utility=breakdown.utility,
                    max_utilization=report.max_utilization,
                    event=event_label,
                )
            )
            return breakdown.utility

        snapshot(0)
        eta = self.config.eta
        eta_floor = eta * self.config.eta_min_factor
        eta_ceiling = eta * self.config.eta_max_factor
        previous_cost = evaluate_cost(ext, routing, self.config.cost_model).total

        for iteration in range(1, total_iterations + 1):
            while pending and pending[0].at_iteration == iteration:
                event = pending.pop(0)
                pre_utility = evaluate_cost(
                    ext, routing, self.config.cost_model
                ).utility

                rebuilt = apply_event(network, event)
                network = rebuilt.network
                old_ext = ext
                ext = build_extended_network(network, require_connected=False)
                if self.warm_start:
                    routing = remap_routing(old_ext, routing, ext)
                    if self.shed_on_event:
                        routing = emergency_shed(ext, routing)
                else:
                    routing = initial_routing(ext)
                algo = GradientAlgorithm(ext, self.config)

                new_optimum = solve_optimal(ext).utility
                post_utility = snapshot(
                    iteration, event_label=type(event).__name__
                )
                recoveries.append(
                    RecoveryReport(
                        event=event,
                        at_iteration=iteration,
                        pre_event_utility=pre_utility,
                        post_event_utility=post_utility,
                        new_optimal_utility=new_optimum,
                        iterations_to_95=None,  # filled below
                        dropped_commodities=rebuilt.dropped_commodities,
                    )
                )
                # fresh landscape: restart the step-scale adaptation
                eta = self.config.eta
                previous_cost = evaluate_cost(
                    ext, routing, self.config.cost_model
                ).total

            routing = algo.step(routing, eta=eta)
            if self.config.adaptive_eta:
                cost = evaluate_cost(ext, routing, self.config.cost_model).total
                if cost > previous_cost * (1.0 + 1e-12):
                    eta = max(eta * self.config.eta_backoff, eta_floor)
                else:
                    eta = min(eta * self.config.eta_growth, eta_ceiling)
                previous_cost = cost
            if iteration % self.record_every == 0 or iteration == total_iterations:
                snapshot(iteration)

        final_utility = evaluate_cost(ext, routing, self.config.cost_model).utility

        # recovery times: first recorded iteration (after the event) whose
        # utility reaches 95% of the new optimum
        for report in recoveries:
            later = [
                (r.iteration, r.utility)
                for r in records
                if r.iteration >= report.at_iteration
            ]
            iters = [i for i, __ in later]
            utils = [u for __, u in later]
            if report.new_optimal_utility > 0:
                hit = iterations_to_fraction(
                    iters, utils, report.new_optimal_utility, 0.95
                )
                report.iterations_to_95 = (
                    hit - report.at_iteration if hit is not None else None
                )

        return OnlineResult(
            records=records, recoveries=recoveries, final_utility=final_utility
        )
