"""Apply network events and carry the routing state across the rebuild.

Three jobs:

* :func:`apply_event` -- produce a *new* :class:`StreamNetwork` reflecting a
  demand change, capacity change, link/node failure, or commodity
  arrival/departure.  Commodities whose sink becomes unreachable are dropped
  (and reported): their traffic simply cannot be served any more.  Commodity
  objects untouched by the event are *shared* with the input network, which
  is what lets the delta compiler (:mod:`repro.core.delta`) detect the dirty
  set by object identity.
* :func:`remap_routing` -- translate a routing state from the old extended
  graph onto the new one via the array-level remap of
  :func:`repro.core.delta.carry_routing`: surviving edges keep their
  fractions (renormalised per node where mass was lost), nodes with no
  surviving information fall back to the shed-everything default, so the
  result is always a valid routing decision.
* :func:`emergency_shed` -- after a capacity-reducing event the carried
  routing may oversubscribe surviving nodes.  This scales every commodity's
  admission down (moving the surplus onto the dummy difference link -- the
  transformation's built-in load-shedding path) until the hard capacities
  hold again, via bisection on a global admission factor.  This is the
  "load shedding on failure" reflex a production system would wire to the
  same mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.commodity import Commodity, StreamNetwork
from repro.core.delta import build_index_maps, carry_routing
from repro.core.network import NodeKind, PhysicalNetwork
from repro.core.routing import RoutingState, feasibility_report
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ModelError, ValidationError
from repro.online.events import (
    CapacityChange,
    CommodityArrival,
    CommodityDeparture,
    DemandChange,
    LinkFailure,
    NetworkEvent,
    NodeFailure,
)

Edge = Tuple[str, str]

__all__ = [
    "RebuildResult",
    "apply_event",
    "apply_scalar_overrides",
    "remap_routing",
    "emergency_shed",
]


class RebuildResult:
    """Outcome of applying one event: the new model plus what was lost."""

    def __init__(
        self, network: StreamNetwork, dropped_commodities: List[str]
    ) -> None:
        self.network = network
        self.dropped_commodities = dropped_commodities


def _copy_physical(
    source: PhysicalNetwork,
    drop_nodes: Optional[set] = None,
    drop_links: Optional[set] = None,
    capacity_overrides: Optional[Dict[str, float]] = None,
) -> PhysicalNetwork:
    drop_nodes = drop_nodes or set()
    drop_links = drop_links or set()
    capacity_overrides = capacity_overrides or {}
    new = PhysicalNetwork()
    for node in source.nodes.values():
        if node.name in drop_nodes:
            continue
        if node.kind is NodeKind.SINK:
            new.add_sink(node.name)
        else:
            new.add_server(
                node.name, capacity_overrides.get(node.name, node.capacity)
            )
    for link in source.links.values():
        if link.key in drop_links:
            continue
        if link.tail in drop_nodes or link.head in drop_nodes:
            continue
        new.add_link(link.tail, link.head, link.bandwidth)
    return new


def _rebuild_commodity(
    commodity: Commodity,
    physical: PhysicalNetwork,
    new_rate: Optional[float] = None,
) -> Optional[Commodity]:
    """Re-derive a commodity on a (possibly reduced) physical network.

    Returns ``None`` when the sink is no longer reachable from the source
    (or the reduced subgraph is otherwise unservable).  Only the expected
    :class:`ValidationError` is treated as "commodity lost"; anything else
    is a real bug and propagates.
    """
    surviving = [e for e in commodity.edges if physical.has_link(*e)]
    if commodity.source not in physical.nodes or commodity.sink not in physical.nodes:
        return None
    try:
        return Commodity.from_subgraph(
            name=commodity.name,
            source=commodity.source,
            sink=commodity.sink,
            max_rate=new_rate if new_rate is not None else commodity.max_rate,
            edges=surviving,
            potentials={
                n: commodity.potentials[n]
                for e in surviving
                for n in e
            },
            costs={e: commodity.costs[e] for e in surviving},
            utility=commodity.utility,
            prune=True,
        )
    except ValidationError:
        return None


def apply_scalar_overrides(
    network: StreamNetwork,
    rates: Optional[Dict[str, float]] = None,
    capacities: Optional[Dict[str, float]] = None,
) -> StreamNetwork:
    """The post-run network for a merged run of scalar events, in one pass.

    Equivalent to chaining the corresponding :class:`DemandChange` /
    :class:`CapacityChange` events through :func:`apply_event` with
    last-write-wins values -- scalar events cannot change topology, so only
    the final value per target matters -- but pays one physical copy and
    one rebuild per *touched commodity* instead of one full surgery per
    event.  The serve daemon's batch coalescing
    (:func:`repro.serve.batching.merge_scalar_run`) rides this.

    Raises :class:`~repro.exceptions.ModelError` on unknown names, sink
    capacity changes, or a commodity made unservable by its final rate --
    the same failures the chained path reports.
    """
    rates = rates or {}
    capacities = capacities or {}
    for name in rates:
        network.commodity(name)  # raises on unknown name
    for node in capacities:
        if node not in network.physical.nodes:
            raise ModelError(f"unknown node {node!r}")
        if network.physical.node(node).is_sink:
            raise ModelError("sinks have no capacity to change")
    physical = (
        _copy_physical(network.physical, capacity_overrides=dict(capacities))
        if capacities
        else network.physical
    )
    commodities: List[Commodity] = []
    for commodity in network.commodities:
        if commodity.name not in rates:
            # commodities never reference node capacities: share the object
            commodities.append(commodity)
            continue
        fresh = _rebuild_commodity(
            commodity, physical, new_rate=rates[commodity.name]
        )
        if fresh is None:
            raise ModelError(
                f"commodity {commodity.name!r} became unservable under a "
                "pure demand change; the topology should be unchanged"
            )
        commodities.append(fresh)
    return StreamNetwork(physical=physical, commodities=commodities)


def apply_event(network: StreamNetwork, event: NetworkEvent) -> RebuildResult:
    """Return the post-event model; never mutates the input network.

    Commodities the event does not touch are carried over as the *same*
    objects (no deep copy, no re-derivation): a ``DemandChange`` rebuilds
    only its target, a ``CapacityChange`` rebuilds nothing (commodities do
    not reference node capacities), failures rebuild only the commodities
    whose subgraph contains the failed element.  The delta compiler keys
    its dirty-set detection off exactly this sharing.
    """
    if isinstance(event, DemandChange):
        target = network.commodity(event.commodity)  # raises on unknown name
        physical = network.physical
        commodities: List[Commodity] = []
        for commodity in network.commodities:
            if commodity is not target:
                commodities.append(commodity)
                continue
            fresh = _rebuild_commodity(commodity, physical, new_rate=event.new_rate)
            if fresh is None:
                raise ModelError(
                    f"commodity {commodity.name!r} became unservable under a "
                    "pure demand change; the topology should be unchanged"
                )
            commodities.append(fresh)
        return RebuildResult(
            StreamNetwork(physical=physical, commodities=commodities), []
        )

    if isinstance(event, CapacityChange):
        if event.node not in network.physical.nodes:
            raise ModelError(f"unknown node {event.node!r}")
        if network.physical.node(event.node).is_sink:
            raise ModelError("sinks have no capacity to change")
        physical = _copy_physical(
            network.physical, capacity_overrides={event.node: event.new_capacity}
        )
        # commodities never reference node capacities -- share every object
        return RebuildResult(
            StreamNetwork(physical=physical, commodities=list(network.commodities)),
            [],
        )

    if isinstance(event, CommodityArrival):
        arriving = event.commodity
        if arriving is None:  # pragma: no cover - rejected by the event itself
            raise ModelError("CommodityArrival needs a Commodity")
        if any(c.name == arriving.name for c in network.commodities):
            raise ModelError(f"duplicate commodity {arriving.name!r}")
        if any(c.sink == arriving.sink for c in network.commodities):
            raise ModelError(
                f"sink {arriving.sink!r} already serves another commodity "
                "(paper, Section 2: one sink per commodity)"
            )
        arriving.validate_against(network.physical)
        return RebuildResult(
            StreamNetwork(
                physical=network.physical,
                commodities=list(network.commodities) + [arriving],
            ),
            [],
        )

    if isinstance(event, CommodityDeparture):
        network.commodity(event.commodity)  # raises on unknown name
        remaining = [c for c in network.commodities if c.name != event.commodity]
        if not remaining:
            raise ModelError("last commodity departed; nothing to run")
        return RebuildResult(
            StreamNetwork(physical=network.physical, commodities=remaining), []
        )

    if isinstance(event, LinkFailure):
        if not network.physical.has_link(*event.link):
            raise ModelError(f"unknown link {event.link!r}")
        physical = _copy_physical(network.physical, drop_links={event.link})
        dirty = {c.name for c in network.commodities if event.link in c.edges}
    elif isinstance(event, NodeFailure):
        if event.node not in network.physical.nodes:
            raise ModelError(f"unknown node {event.node!r}")
        if network.physical.node(event.node).is_sink:
            raise ModelError("modelling sink failure is not supported")
        physical = _copy_physical(network.physical, drop_nodes={event.node})
        dirty = {c.name for c in network.commodities if event.node in c.potentials}
    else:
        raise ModelError(f"unknown event type {type(event).__name__}")

    commodities = []
    dropped: List[str] = []
    for commodity in network.commodities:
        if commodity.name not in dirty:
            commodities.append(commodity)
            continue
        fresh = _rebuild_commodity(commodity, physical)
        if fresh is None:
            dropped.append(commodity.name)
        else:
            commodities.append(fresh)
    if not commodities:
        raise ModelError("event disconnected every commodity; nothing to run")
    return RebuildResult(
        StreamNetwork(physical=physical, commodities=commodities), dropped
    )


def remap_routing(
    old_ext: ExtendedNetwork,
    old_routing: RoutingState,
    new_ext: ExtendedNetwork,
) -> RoutingState:
    """Carry routing fractions from ``old_ext`` onto ``new_ext``.

    Surviving edges keep their fractions (renormalised per node where mass
    was lost); nodes with no surviving out-fraction mass fall back to the
    shed-everything default.  The result is always a valid routing decision
    on ``new_ext``.  Implemented as the array-level remap of
    :mod:`repro.core.delta`; the old per-edge dict keys are gone.
    """
    return carry_routing(
        old_ext, old_routing, new_ext, build_index_maps(old_ext, new_ext)
    )


def emergency_shed(
    ext: ExtendedNetwork,
    routing: RoutingState,
    utilization_target: float = 0.98,
    bisection_steps: int = 40,
) -> RoutingState:
    """Scale admissions down until no node exceeds ``utilization_target``.

    Each commodity's dummy splits ``(phi_in, phi_diff)``; we scale every
    ``phi_in`` by a common factor ``s`` in ``[0, 1]`` (surplus goes to the
    difference link).  Interior routing fractions are untouched, so the
    relative path split survives -- and with the fractions fixed, every
    node's load is *linear* in ``s``, so the largest feasible scale is
    simply ``utilization_target / peak``: one feasibility report, no
    search.  ``bisection_steps`` bounds the fallback search kept for the
    (numerically pathological) case where the closed-form scale still
    verifies infeasible.
    """
    if not 0.0 < utilization_target <= 1.0:
        raise ModelError("utilization_target must be in (0, 1]")

    base = routing.copy()

    def with_admission_scale(scale: float) -> RoutingState:
        scaled = base.copy()
        for view in ext.commodities:
            j = view.index
            admit = base.phi[j, view.input_edge] * scale
            scaled.phi[j, view.input_edge] = admit
            scaled.phi[j, view.difference_edge] = 1.0 - admit
        return scaled

    def peak_utilization(candidate: RoutingState) -> float:
        return feasibility_report(ext, candidate).max_utilization

    peak = peak_utilization(base)
    if peak <= utilization_target:
        return base
    hi = min(1.0, utilization_target / peak)
    candidate = with_admission_scale(hi)
    if peak_utilization(candidate) <= utilization_target:
        return candidate
    lo = 0.0
    for __ in range(bisection_steps):
        mid = 0.5 * (lo + hi)
        if peak_utilization(with_admission_scale(mid)) <= utilization_target:
            lo = mid
        else:
            hi = mid
    return with_admission_scale(lo)
