"""Shared-memory array plumbing for the process-parallel backend.

The parallel backend moves the per-iteration arrays (``phi``, ``traffic``,
per-commodity usage rows, ``dadf``, the next iterate) between the master and
its worker processes through :mod:`multiprocessing.shared_memory` blocks that
are created **once** per backend lifetime.  Per iteration the only data that
crosses the pickle boundary is a few-byte task descriptor (phase name, shard
bounds, the step scale); every array read and write is a plain memcpy-free
NumPy view into the shared blocks.

:class:`SharedArraySet` owns creation/attachment symmetry: the master calls
:meth:`create` per array and ships ``specs`` (name -> (shm name, shape,
dtype)) to the workers through the pool initializer, where
:func:`attach_arrays` rebuilds the same views.
"""

from __future__ import annotations

import atexit
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ArraySpec", "SharedArraySet", "attach_arrays"]

# name -> (shared-memory block name, shape, dtype string)
ArraySpec = Dict[str, Tuple[str, Tuple[int, ...], str]]

# Every live master-side set, so a single atexit hook can unlink whatever a
# crashed or careless run left open.  Relying on __del__ alone is not
# enough: at interpreter shutdown the GC may never run it (reference
# cycles, re-raised exceptions holding frames alive), and then the resource
# tracker prints "leaked shared_memory objects" warnings and re-unlinks
# segments out from under the namespace.  The hook runs before the
# tracker's own atexit scan, so a clean interpreter exit stays silent.
_LIVE_SETS: "weakref.WeakSet[SharedArraySet]" = weakref.WeakSet()


@atexit.register
def _close_leaked_sets() -> None:
    for leaked in list(_LIVE_SETS):
        try:
            leaked.close()
        except Exception:
            pass


class _untracked_attach:
    """Suppress resource-tracker registration while attaching to a block.

    Attaching registers the segment with the resource tracker as if this
    process owned it (fixed upstream only in Python 3.13 via ``track=False``,
    bpo-39959).  With a forked pool the tracker process is *shared* with the
    master, so both a worker-exit cleanup attempt and a later ``unregister``
    from the worker corrupt the master's bookkeeping (double-unregister
    KeyErrors, spurious "leaked shared_memory" warnings).  Only the creating
    process may own the segment; workers must merely map it, so the cleanest
    fix on every affected version is to not register the attachment at all.
    """

    def __enter__(self) -> None:
        from multiprocessing import resource_tracker

        self._orig = resource_tracker.register

        def register(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                self._orig(name, rtype)

        resource_tracker.register = register

    def __exit__(self, *exc_info: object) -> None:
        from multiprocessing import resource_tracker

        resource_tracker.register = self._orig


class SharedArraySet:
    """The master-side bundle of named shared-memory NumPy arrays."""

    def __init__(self) -> None:
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.specs: ArraySpec = {}
        _LIVE_SETS.add(self)

    def create(self, name: str, shape: Tuple[int, ...], dtype: str = "float64") -> np.ndarray:
        """Allocate one zero-initialised shared array and return its view."""
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        self._blocks[name] = block
        view: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        view.fill(0)
        self.arrays[name] = view
        self.specs[name] = (block.name, tuple(shape), str(dtype))
        return view

    def replace(
        self, name: str, shape: Tuple[int, ...], dtype: str = "float64"
    ) -> np.ndarray:
        """Re-publish one array under a new shape; other segments are untouched.

        Unlinking a segment that workers still map is safe on POSIX: their
        existing mappings stay valid until they close them, which they do
        when re-attaching during a refresh.  Only segments whose shape
        actually changed should pay this; same-shape arrays keep their block
        (and their contents).
        """
        self.arrays.pop(name)  # drop the view before closing its buffer
        block = self._blocks.pop(name)
        self.specs.pop(name)
        try:
            block.close()
            block.unlink()
        except FileNotFoundError:
            pass
        return self.create(name, shape, dtype)

    def close(self) -> None:
        """Release the master's mappings and unlink every block."""
        # drop the array views first: a live view keeps the mmap referenced
        # and SharedMemory.close() would raise BufferError underneath it
        self.arrays.clear()
        self.specs.clear()
        for block in self._blocks.values():
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:
                pass  # already unlinked (double close is allowed)
        self._blocks.clear()
        _LIVE_SETS.discard(self)


def attach_arrays(
    specs: ArraySpec,
) -> Tuple[Dict[str, np.ndarray], List[shared_memory.SharedMemory]]:
    """Worker-side mirror of :class:`SharedArraySet.create`.

    Returns the name -> array views plus the attached blocks (the caller must
    keep the blocks alive as long as the views are used, and close them on
    worker shutdown).
    """
    arrays: Dict[str, np.ndarray] = {}
    blocks: List[shared_memory.SharedMemory] = []
    for name, (shm_name, shape, dtype) in specs.items():
        with _untracked_attach():
            block = shared_memory.SharedMemory(name=shm_name, create=False)
        blocks.append(block)
        arrays[name] = np.ndarray(shape, dtype=dtype, buffer=block.buf)
    return arrays, blocks
