"""Thread-parallel execution backend: one address space, zero serialization.

The process backend (:class:`~repro.parallel.backend.ParallelBackend`) pays
for its isolation twice per iteration: every dispatch crosses a pickle
boundary and every array crosses a shared-memory mapping.  For mid-sized
instances that overhead dwarfs the per-commodity compute -- the TAB-PARALLEL
regression this module fixes.  :class:`ThreadBackend` runs the *same*
per-commodity kernels on a :class:`~concurrent.futures.ThreadPoolExecutor`
instead: the workers share the master's arrays directly, so a dispatch is a
few-microsecond queue hop and nothing is ever copied or pickled.

Threads can parallelise this workload because the hot kernels spend their
time inside NumPy ufuncs and linear solves, which release the GIL on the
array sizes where parallelism is worth having in the first place (see
docs/parallelism.md for the crossover numbers).

The bit-identity contract is inherited unchanged:

* each worker thread runs the per-commodity kernels
  (``solve_traffic_commodity``, ``marginal_cost_to_destination``,
  ``compute_blocked_sets``, ``apply_gamma_batch`` over the per-commodity
  plan) that are already pinned bit-identical to the serial engine's merged
  kernels;
* every kernel reads and writes **only its own commodity's rows** (pinned by
  the blocking/marginals tests), so threads on disjoint shards share arrays
  without a single racing byte;
* the only cross-commodity coupling -- the usage reduce (eq. (4)) -- happens
  on the master via the same fixed-order ``np.add.reduce`` call as the
  serial path, so thread completion order cannot influence an output bit.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.blocking import compute_blocked_sets
from repro.core.context import IterationContext
from repro.core.gradient import GradientConfig, apply_gamma_batch
from repro.core.marginals import (
    edge_marginals,
    evaluate_cost,
    link_cost_derivative,
    marginal_cost_to_destination,
)
from repro.core.routing import RoutingState, external_inputs, solve_traffic_commodity
from repro.core.state import ModelState, use_array_core
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ParallelExecutionError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.parallel.backend import ExecutionBackend, _split_shards

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Thread-pool sharded execution of the gradient iteration.

    Parameters
    ----------
    workers:
        Worker thread count (default: ``os.cpu_count()``).  The effective
        pool size is capped at the commodity count -- no thread is started
        just to receive an empty shard.
    inject_fault:
        Test hook: the name of a dispatch phase (``"flow_solve"`` /
        ``"step"``) in which every worker raises, to exercise crash cleanup.
        Never set this outside tests.

    Use as a context manager (or call :meth:`close`) to join the worker
    threads deterministically; unlike the process backend there are no
    kernel resources to leak, so ``close()`` is hygiene, not safety.
    """

    name = "thread"

    def __init__(
        self,
        workers: Optional[int] = None,
        inject_fault: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._inject_fault = inject_fault
        self._ext: Optional[ExtendedNetwork] = None
        self._config: Optional[GradientConfig] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._shards: List[Tuple[int, int]] = []
        # master-owned scratch the worker threads write their rows into
        self._traffic: Optional[np.ndarray] = None
        self._usage: Optional[np.ndarray] = None
        self._phi_next: Optional[np.ndarray] = None
        self._dadf: Optional[np.ndarray] = None
        self._loaded_for: Optional[RoutingState] = None
        # array-core mode (repro.core.state): shards run the row-block CSR
        # kernels of the shared ModelState instead of per-commodity walks
        self._mode: Optional[str] = None
        self._state: Optional[ModelState] = None
        self._shard_index: Dict[int, int] = {}
        self._dadr: Optional[np.ndarray] = None
        self._delta: Optional[np.ndarray] = None
        self._blocked: Optional[np.ndarray] = None

    # -- lifecycle -----------------------------------------------------------------
    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        if ext is self._ext and config is self._config:
            return
        self._ext = ext
        self._config = config
        self._loaded_for = None
        self._phi_next = None  # shapes may have changed; reallocate lazily

    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        """Adopt the delta's epoch; the thread pool itself survives.

        Threads read ``self._ext`` on every task, so a refresh is one
        attribute swap -- no pickling, no republished segments.  Structural
        deltas invalidate the scratch shapes, which reallocate lazily.
        """
        ext = applied.ext
        structural = bool(getattr(applied, "structural", True))
        self._ext = ext
        self._loaded_for = None
        if structural:
            self._phi_next = None
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        inst.count("thread.refresh")

    def _ensure_started(self) -> None:
        ext = self._ext
        if ext is None:
            raise ParallelExecutionError(
                "ThreadBackend used before bind(); construct it via "
                "GradientAlgorithm(..., backend=...) or call bind(ext, config)"
            )
        shape_je = (ext.num_commodities, ext.num_edges)
        mode = "array" if use_array_core() else "object"
        if (
            self._phi_next is None
            or self._phi_next.shape != shape_je
            or mode != self._mode
        ):
            self._mode = mode
            self._phi_next = np.zeros(shape_je)
            self._traffic = np.zeros((ext.num_commodities, ext.num_nodes))
            self._shards = _split_shards(ext.num_commodities, self.workers)
            self._shard_index = {lo: k for k, (lo, _hi) in enumerate(self._shards)}
            if mode == "array":
                # row-block sharding over the shared ModelState: per-shard
                # usage partials (summed in shard order on the master) plus
                # full-width dadr/delta/blocked scratch written row-wise
                self._state = ModelState.of(ext)
                self._usage = np.zeros((len(self._shards), ext.num_edges))
                self._dadr = np.zeros((ext.num_commodities, ext.num_nodes))
                self._delta = np.zeros(shape_je)
                self._blocked = np.zeros(shape_je, dtype=bool)
                _ = ext.merged_gamma_plan
                for lo, hi in self._shards:
                    # prebuild the block plans on the master so worker
                    # threads never race the plan cache
                    self._state.block(lo, hi)
            else:
                self._state = None
                self._usage = np.zeros(shape_je)
                # touch the lazy per-commodity plans once so iteration-time
                # tasks never pay (or re-time) the plan construction
                _ = ext.flow_plans, ext.gamma_plans
            if self._pool is not None and self._pool._max_workers != len(self._shards):
                pool, self._pool = self._pool, None
                pool.shutdown(wait=True)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards), thread_name_prefix="repro-shard"
            )

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._traffic = self._usage = self._phi_next = None
        self._dadf = None
        self._loaded_for = None
        self._mode = None
        self._state = None
        self._dadr = self._delta = self._blocked = None

    # -- dispatch ------------------------------------------------------------------
    def _run_shard(
        self,
        phase: str,
        worker_index: int,
        lo: int,
        hi: int,
        fn: Callable[..., None],
        *args: Any,
    ) -> Tuple[int, Dict[str, float]]:
        if self._inject_fault is not None and self._inject_fault == phase:
            raise RuntimeError(
                f"injected worker fault during {phase!r} (test hook)"
            )
        start = time.perf_counter()
        timings = fn(lo, hi, *args)
        if timings is None:
            timings = {phase: time.perf_counter() - start}
        return worker_index, timings

    def _dispatch(
        self, phase: str, fn: Callable[..., None], *args: Any
    ) -> List[Tuple[int, Dict[str, float]]]:
        assert self._pool is not None
        futures: List[Future] = [
            self._pool.submit(self._run_shard, phase, k, lo, hi, fn, *args)
            for k, (lo, hi) in enumerate(self._shards)
        ]
        results: List[Tuple[int, Dict[str, float]]] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            # a partially written scratch row set describes no consistent
            # state; drop everything so the caller restarts cleanly
            self.close()
            raise ParallelExecutionError(
                f"thread worker failed during the {phase!r} phase: "
                f"{first_error!r} (the thread pool has been shut down)"
            ) from first_error
        return results

    def _observe_worker_timings(self, inst: Any, results: List[Any]) -> None:
        if not inst.enabled:
            return
        for worker_index, timings in results:
            for name, duration in timings.items():
                inst.phase_observation(
                    f"worker{worker_index}.{name}", duration, worker=worker_index
                )

    # -- shard bodies (run on worker threads; rows [lo, hi) only) --------------------
    def _forecast_shard(self, lo: int, hi: int, phi: np.ndarray) -> None:
        ext = self._ext
        traffic = self._traffic
        usage = self._usage
        for j in range(lo, hi):
            row = solve_traffic_commodity(ext, j, phi[j])
            traffic[j] = row
            # same elementwise association as the serial (t * phi) * cost
            usage[j] = row[ext.edge_tail] * phi[j] * ext.cost[j]

    def _step_shard(
        self, lo: int, hi: int, routing: RoutingState, eta: float
    ) -> Dict[str, float]:
        ext = self._ext
        cfg = self._config
        traffic = self._traffic
        phi_next = self._phi_next
        dadf = self._dadf
        phi = routing.phi
        # per-sub-kernel timings, same keys as the process worker's step
        # shard, so `profile` renders identical per-worker rows either way
        timings = {"marginals": 0.0, "blocking": 0.0, "gamma": 0.0}
        for j in range(lo, hi):
            start = time.perf_counter()
            dadr = marginal_cost_to_destination(ext, j, routing, dadf)
            delta = edge_marginals(ext, j, dadf, dadr)
            timings["marginals"] += time.perf_counter() - start
            blocked: Optional[np.ndarray] = None
            if cfg.use_blocking:
                start = time.perf_counter()
                blocked = compute_blocked_sets(
                    ext, j, routing, traffic, dadr, delta, eta
                )
                if not blocked.any():
                    # an all-False mask is indistinguishable from no blocking;
                    # take the kernel's cheaper unblocked path (same bits)
                    blocked = None
                timings["blocking"] += time.perf_counter() - start
            start = time.perf_counter()
            row = phi[j].copy()
            apply_gamma_batch(
                row, ext.gamma_plans[j], traffic[j], delta, blocked, eta,
                cfg.traffic_tol,
            )
            phi_next[j] = row
            timings["gamma"] += time.perf_counter() - start
        return timings

    # -- array-core shard bodies (row-block CSR kernels over ModelState) -------------
    def _forecast_shard_array(self, lo: int, hi: int, phi: np.ndarray) -> None:
        state = self._state
        t_flat = self._traffic.reshape(-1)
        phi_flat = phi.reshape(-1)
        state.solve_traffic_block(t_flat, phi_flat, lo, hi)
        # per-shard (E,) usage partial; the master sums partials in shard
        # order, which reproduces the full CSR row-sum association exactly
        self._usage[self._shard_index[lo]] = state.usage_partial_block(
            phi_flat, t_flat, lo, hi
        )

    def _step_shard_array(
        self, lo: int, hi: int, routing: RoutingState, eta: float
    ) -> Dict[str, float]:
        state = self._state
        cfg = self._config
        phi = routing.phi
        phi_flat = phi.reshape(-1)
        t_flat = self._traffic.reshape(-1)
        dadf = self._dadf
        dadr_flat = self._dadr.reshape(-1)
        delta_flat = self._delta.reshape(-1)
        timings = {"marginals": 0.0, "blocking": 0.0, "gamma": 0.0}
        start = time.perf_counter()
        self._dadr[lo:hi] = 0.0
        state.marginal_costs_block(dadr_flat, phi_flat, dadf, lo, hi)
        self._delta[lo:hi] = 0.0
        state.edge_marginals_block(delta_flat, dadf, dadr_flat, lo, hi)
        timings["marginals"] = time.perf_counter() - start
        blocked_flat: Optional[np.ndarray] = None
        if cfg.use_blocking:
            start = time.perf_counter()
            self._blocked[lo:hi] = False
            if state.blocked_sets_block(
                self._blocked.reshape(-1),
                phi_flat,
                t_flat,
                dadr_flat,
                delta_flat,
                eta,
                lo,
                hi,
            ):
                blocked_flat = self._blocked.reshape(-1)
            timings["blocking"] = time.perf_counter() - start
        start = time.perf_counter()
        self._phi_next[lo:hi] = phi[lo:hi]
        plan = state.block(lo, hi).gamma_plan
        if plan is not None:
            apply_gamma_batch(
                self._phi_next.reshape(-1),
                plan,
                t_flat,
                delta_flat,
                blocked_flat,
                eta,
                cfg.traffic_tol,
            )
        timings["gamma"] = time.perf_counter() - start
        return timings

    # -- the two iteration halves ----------------------------------------------------
    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        """Threaded flow solve + master-side reduce and cost evaluation."""
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        ext = self._ext
        cfg = self._config
        with inst.phase("flow_solve"):
            if self._mode == "array":
                # seed external inputs once; shards overwrite their rows'
                # interior nodes via the forward CSR sweep
                np.copyto(self._traffic, external_inputs(ext))
                forecast = self._forecast_shard_array
            else:
                forecast = self._forecast_shard
            results = self._dispatch("flow_solve", forecast, routing.phi)
            # deterministic fixed-order reduce: same call, same bits, same
            # association as the serial resource_usage (array mode reduces
            # per-shard partials in ascending-commodity shard order) --
            # thread completion order cannot influence a single output bit
            edge_usage = np.add.reduce(self._usage, axis=0)
            node_usage = np.zeros(ext.num_nodes, dtype=float)
            np.add.at(node_usage, ext.edge_tail, edge_usage)
            traffic = self._traffic.copy()
            breakdown = evaluate_cost(
                ext, routing, cfg.cost_model, traffic, usage=(edge_usage, node_usage)
            )
            dadf = link_cost_derivative(ext, cfg.cost_model, edge_usage, node_usage)
        inst.count("flow_solves")
        if inst.enabled:
            inst.gauge("parallel.workers", float(len(self._shards)))
        self._observe_worker_timings(inst, results)
        self._dadf = dadf
        self._loaded_for = routing
        return IterationContext(
            routing=routing,
            traffic=traffic,
            edge_usage=edge_usage,
            node_usage=node_usage,
            breakdown=breakdown,
            dadf=dadf if with_derivatives else None,
            dadr=None,
            delta=None,
        )

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        """One application of ``Gamma``, sharded across the worker threads."""
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        cfg = self._config
        if eta is None:
            eta = cfg.eta
        if context is None or self._loaded_for is not routing:
            # the scratch traffic/dadf describe some other routing state;
            # refresh them for this one
            self.build_context(routing, instrumentation=instrumentation)
        step_fn = self._step_shard_array if self._mode == "array" else self._step_shard
        with inst.phase("thread_step"):
            results = self._dispatch("step", step_fn, routing, eta)
            new_phi = self._phi_next.copy()
        self._observe_worker_timings(inst, results)
        return RoutingState(new_phi)
