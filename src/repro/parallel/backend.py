"""Execution backends for the gradient engine: serial and process-parallel.

The paper's distributed algorithm is embarrassingly parallel across
commodities within an iteration: given the routing state ``phi`` and the
global link-cost derivative ``dadf``, each commodity's flow balance,
marginal-cost wave, blocked sets and ``Gamma`` update touch only its own
rows.  :class:`ParallelBackend` shards that per-commodity work across a
:class:`~concurrent.futures.ProcessPoolExecutor`, keeping the iterates
**bit-identical** to the serial engine:

* workers run the per-commodity kernels that are already pinned
  bit-identical to the merged cross-commodity kernels the serial engine
  uses (``solve_traffic_commodity``, ``marginal_cost_to_destination``,
  ``compute_blocked_sets``, ``apply_gamma_batch`` over the per-commodity
  plan);
* the only cross-commodity coupling -- summing per-commodity resource usage
  into ``edge_usage`` (eq. (4)) -- is reduced on the master by the *same*
  fixed-order ``np.add.reduce`` call over the same ``(J, E)`` bits as the
  serial path, regardless of worker completion order;
* everything else the master computes (cost breakdown, ``dadf``) runs the
  identical serial functions on those identical bits.

:class:`SerialBackend` is the default and is a verbatim move of the previous
inline code paths of :class:`~repro.core.gradient.GradientAlgorithm`, so
``backend=None`` is a zero-behavior change.

See ``docs/parallelism.md`` for the design discussion and when sharding
actually pays off.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocking import compute_all_blocked_sets
from repro.core.context import IterationContext, build_iteration_context
from repro.core.gradient import GradientConfig, apply_gamma_batch
from repro.core.marginals import evaluate_cost, link_cost_derivative
from repro.core.routing import RoutingState
from repro.core.state import ModelState, use_array_core
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ParallelExecutionError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.parallel.shm import SharedArraySet
from repro.parallel.worker import init_worker, run_shard

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "resolve_backend",
    "auto_backend",
    "available_cpus",
    "BACKEND_NAMES",
    "REPRO_BACKEND_ENV",
]


# eta halvings the batched dispatch may spend rescuing one rejected-batch
# redo step before settling for the least-bad trial (see
# ParallelBackend.advance): 4 halvings reach eta/16, far below the scale at
# which the blocked-set discontinuities that cause rejections operate
_REDO_MAX_BACKOFFS = 4


class ExecutionBackend:
    """Interface every execution backend implements.

    A backend is *bound* to one ``(ExtendedNetwork, GradientConfig)`` pair by
    the algorithm that owns it, then asked for the two halves of an
    iteration: :meth:`build_context` (the flow solve and everything derived
    from it) and :meth:`step` (one application of the update map ``Gamma``).
    Backends must keep iterates bit-identical to :class:`SerialBackend`.
    """

    name = "abstract"
    workers = 1
    # how many iterations the backend may run between global ``dadf``
    # refreshes: 0 means fully synchronous (bit-identical to serial); K > 0
    # is the bounded-staleness relaxed mode of the process backend
    staleness = 0

    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        raise NotImplementedError

    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        raise NotImplementedError

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        raise NotImplementedError

    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        """Advance the bound model one epoch without rebinding.

        ``applied`` is a :class:`repro.core.delta.AppliedDelta`.  Unlike
        :meth:`bind` with a new network -- which tears pooled resources
        down -- a refresh republishes only what the delta dirtied, so a
        parallel backend keeps its worker pool and its unchanged
        shared-memory segments alive.
        """
        raise NotImplementedError

    def advance(
        self,
        routing: RoutingState,
        context: Optional[IterationContext],
        iterations: int,
        eta: Optional[float] = None,
        instrumentation: Any = None,
    ) -> Tuple[RoutingState, IterationContext]:
        """Run ``iterations`` gradient iterations, returning the final pair.

        The default is the synchronous loop -- one :meth:`step` plus one
        :meth:`build_context` per iteration, the exact calls the run loop
        would make itself, so overriding backends relax *only* what their
        documented contract allows.  :class:`ParallelBackend` with
        ``staleness=K`` overrides this to execute up to ``K + 1``
        iterations per worker round-trip with a frozen global ``dadf``
        (see docs/parallelism.md for the bounded-staleness contract).
        """
        if context is None:
            context = self.build_context(routing, instrumentation=instrumentation)
        for _ in range(iterations):
            routing = self.step(
                routing, eta=eta, context=context, instrumentation=instrumentation
            )
            context = self.build_context(routing, instrumentation=instrumentation)
        return routing, context

    def close(self) -> None:
        """Release any pooled resources; safe to call repeatedly."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The in-process reference backend (the previous inline code paths)."""

    name = "serial"
    workers = 1

    def __init__(self) -> None:
        self._ext: Optional[ExtendedNetwork] = None
        self._config: Optional[GradientConfig] = None

    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        self._ext = ext
        self._config = config

    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        self._ext = applied.ext

    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        return build_iteration_context(
            self._ext,
            routing,
            self._config.cost_model,
            with_derivatives=with_derivatives,
            instrumentation=instrumentation,
        )

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        ext = self._ext
        cfg = self._config
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        if eta is None:
            eta = cfg.eta
        if context is None:
            context = self.build_context(routing, instrumentation=instrumentation)
        new_phi = routing.phi.copy()

        blocked: Optional[np.ndarray]
        if cfg.use_blocking:
            with inst.phase("blocking"):
                blocked = compute_all_blocked_sets(
                    ext, routing, context.traffic, context.dadr, context.delta, eta
                ).reshape(-1)
            if not blocked.any():
                # an empty blocked set is indistinguishable from no blocking;
                # let the kernel take its cheaper unblocked path
                blocked = None
        else:
            blocked = None
        # one kernel call for every commodity: the merged plan's flattened
        # (j*V + v, j*E + e) ids index the raveled views below
        with inst.phase("gamma"):
            apply_gamma_batch(
                new_phi.reshape(-1),
                ext.merged_gamma_plan,
                context.traffic.reshape(-1),
                context.delta.reshape(-1),
                blocked,
                eta,
                cfg.traffic_tol,
            )

        return RoutingState(new_phi)


def _split_shards(num_commodities: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal commodity ranges, one per logical worker.

    Contiguity matters: the master's fixed-order reduce and the bit-identity
    argument rely on every commodity being computed exactly once and on the
    reduce order being the commodity order, not the shard order.
    """
    n = max(1, min(workers, num_commodities))
    base, extra = divmod(num_commodities, n)
    shards: List[Tuple[int, int]] = []
    lo = 0
    for k in range(n):
        hi = lo + base + (1 if k < extra else 0)
        shards.append((lo, hi))
        lo = hi
    return shards


class ParallelBackend(ExecutionBackend):
    """Process-parallel sharded execution of the gradient iteration.

    Parameters
    ----------
    workers:
        Worker process count (default: ``os.cpu_count()``).  The effective
        pool size is capped at the commodity count -- the sharding axis.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ...); default: the platform default.
    inject_fault:
        Test hook: the name of a worker phase (``"forecast"`` / ``"step"`` /
        ``"batch"``) in which every worker raises, to exercise crash
        cleanup.  Never set this outside tests.
    staleness:
        Batched-dispatch relaxation (default 0).  With ``staleness=K`` the
        run loop may execute up to ``K + 1`` iterations per worker
        round-trip: workers iterate privately on their own commodity rows
        with the global link-cost derivative ``dadf`` frozen at the batch
        start (at most ``K`` iterations stale), which is exactly the
        tolerance the paper's Section-5 asynchronous protocol grants and
        ``benchmarks/bench_stale_marginals.py`` quantifies.  ``staleness=0``
        keeps today's two-dispatches-per-iteration schedule and the
        bit-identity guarantee.

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and the shared-memory blocks deterministically.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        inject_fault: Optional[str] = None,
        staleness: int = 0,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not isinstance(staleness, int) or isinstance(staleness, bool) or staleness < 0:
            raise ValueError(f"staleness must be a non-negative int, got {staleness!r}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.staleness = staleness
        self._start_method = start_method
        self._inject_fault = inject_fault
        self._ext: Optional[ExtendedNetwork] = None
        self._config: Optional[GradientConfig] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shm: Optional[SharedArraySet] = None
        self._shards: List[Tuple[int, int]] = []
        self._loaded_for: Optional[RoutingState] = None
        # fixed for the pool's lifetime; later refreshes re-shard within it
        self._pool_size: int = 0
        self._barrier: Optional[Any] = None
        # resolved at pool start and shipped to the workers: does this pool
        # run the array core's row-block kernels (repro.core.state)?
        self._array: bool = False

    # -- lifecycle -----------------------------------------------------------------
    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        if ext is self._ext and config is self._config:
            return
        if self._pool is not None:
            # rebinding to a new problem invalidates the published arrays
            self.close()
        self._ext = ext
        self._config = config

    def _ensure_started(self) -> None:
        if self._pool is not None:
            return
        if self._ext is None:
            raise ParallelExecutionError(
                "ParallelBackend used before bind(); construct it via "
                "GradientAlgorithm(..., backend=...) or call bind(ext, config)"
            )
        ext = self._ext
        # resolve the model core once for the pool's lifetime; the flag is
        # shipped to every worker so the two sides can never disagree
        self._array = use_array_core()
        # build the lazy plans once on the master so the pickled network the
        # workers receive already carries them
        _ = ext.flow_plans, ext.gamma_plans, ext.merged_gamma_plan
        if self._array:
            ModelState.of(ext)
        shm = SharedArraySet()
        try:
            shape_je = (ext.num_commodities, ext.num_edges)
            self._shards = _split_shards(ext.num_commodities, self.workers)
            self._pool_size = len(self._shards)
            shm.create("phi", shape_je)
            shm.create("phi_next", shape_je)
            # array core: one (E,) usage partial per shard, summed by the
            # master in shard order -- O(S * E) shm instead of O(J * E)
            shm.create(
                "usage",
                (self._pool_size, ext.num_edges) if self._array else shape_je,
            )
            shm.create("traffic", (ext.num_commodities, ext.num_nodes))
            shm.create("dadf", (ext.num_edges,))
            import multiprocessing

            ctx = (
                multiprocessing.get_context(self._start_method)
                if self._start_method
                else multiprocessing.get_context()
            )
            # the barrier is the exactly-once delivery mechanism of
            # refresh(): every worker blocks in its refresh task until all
            # pool members have received theirs
            self._barrier = ctx.Barrier(self._pool_size)
            self._pool = ProcessPoolExecutor(
                max_workers=self._pool_size,
                initializer=init_worker,
                initargs=(
                    ext, shm.specs, self._inject_fault, self._barrier,
                    self._array,
                ),
                mp_context=ctx,
            )
        except BaseException:
            shm.close()
            raise
        self._shm = shm

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
        self._loaded_for = None
        self._barrier = None
        self._pool_size = 0

    def __del__(self) -> None:  # best-effort safety net; close() is the API
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch ------------------------------------------------------------------
    def _collect(self, phase: str, futures: List[Future]) -> List[Any]:
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # worker death raises BrokenProcessPool
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            # the pool may be broken; tear everything down so the caller is
            # left with a clean error instead of a wedged executor
            self.close()
            raise ParallelExecutionError(
                f"parallel worker failed during the {phase!r} phase: "
                f"{first_error!r} (the worker pool has been shut down)"
            ) from first_error
        return results

    def _dispatch(
        self, phase: str, args: Sequence[Any] = (), indexed: bool = False
    ) -> List[Any]:
        assert self._pool is not None
        if indexed:
            # phases that publish per-shard results (the array core's usage
            # partials) receive their shard index as the first argument
            futures: List[Future] = [
                self._pool.submit(run_shard, phase, lo, hi, k, *args)
                for k, (lo, hi) in enumerate(self._shards)
            ]
        else:
            futures = [
                self._pool.submit(run_shard, phase, lo, hi, *args)
                for lo, hi in self._shards
            ]
        return self._collect(phase, futures)

    def _reduce_usage(self, arrays: Dict[str, np.ndarray]) -> np.ndarray:
        """Deterministic fixed-order usage reduce (eq. (4)).

        Object core: the same ``np.add.reduce`` over the same ``(J, E)``
        bits as the serial path.  Array core: per-shard ``(E,)`` partials
        summed in ascending-commodity shard order -- contiguous sub-sums of
        the serial CSR row sum, so the association (and every output bit)
        is unchanged.  Either way worker completion order cannot influence
        a single bit.
        """
        rows = arrays["usage"]
        if self._array:
            rows = rows[: len(self._shards)]
        return np.add.reduce(rows, axis=0)

    # -- epoch refresh -------------------------------------------------------------
    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        """Advance the pool to the delta's epoch without restarting it.

        Scalar deltas ship the few-byte patch; every worker applies it to
        its own network copy and no shared memory moves.  Structural deltas
        ship the spliced successor network and re-publish only the
        shared-memory segments whose shape actually changed.  Exactly-once
        delivery is enforced by a pool-wide barrier: each worker blocks in
        its refresh task until all ``_pool_size`` tasks have landed, so the
        executor cannot hand two of them to one worker.
        """
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        ext = applied.ext
        if self._pool is None:
            # nothing published yet: adopt the new epoch and start lazily
            self._ext = ext
            return
        if applied.structural:
            # build the lazy plans before pickling, as _ensure_started does
            _ = ext.flow_plans, ext.gamma_plans, ext.merged_gamma_plan
            if self._array:
                ModelState.of(ext)
            shm = self._shm
            shapes = {
                "phi": (ext.num_commodities, ext.num_edges),
                "phi_next": (ext.num_commodities, ext.num_edges),
                "usage": (
                    (self._pool_size, ext.num_edges)
                    if self._array
                    else (ext.num_commodities, ext.num_edges)
                ),
                "traffic": (ext.num_commodities, ext.num_nodes),
                "dadf": (ext.num_edges,),
            }
            dirty = [
                name
                for name, shape in shapes.items()
                if shm.arrays[name].shape != shape
            ]
            for name in dirty:
                shm.replace(name, shapes[name])
            payload = ("ext", ext, shm.specs if dirty else None, ext.epoch)
            self._shards = _split_shards(ext.num_commodities, self._pool_size)
            if inst.enabled:
                inst.count("parallel.refresh.segments_republished", len(dirty))
        else:
            payload = ("patch", applied.delta.scalar, None, ext.epoch)
        with inst.phase("parallel_refresh", epoch=ext.epoch):
            assert self._pool is not None
            futures = [
                self._pool.submit(run_shard, "refresh", k, k, payload)
                for k in range(self._pool_size)
            ]
            results = self._collect("refresh", futures)
        self._observe_worker_timings(inst, results)
        self._ext = ext
        self._loaded_for = None
        inst.count("parallel.refresh")

    def _observe_worker_timings(self, inst: Any, results: List[Any]) -> None:
        if not inst.enabled:
            return
        for worker_index, (_lo, timings) in enumerate(results):
            for name, duration in timings.items():
                inst.phase_observation(
                    f"worker{worker_index}.{name}", duration, worker=worker_index
                )

    # -- the two iteration halves ----------------------------------------------------
    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        """Parallel flow solve + master-side reduce and cost evaluation.

        The returned context always carries ``dadf`` but never ``dadr`` /
        ``delta``: the parallel :meth:`step` recomputes the per-commodity
        derivative wave inside the workers (one fewer synchronisation
        barrier per iteration).
        """
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        ext = self._ext
        cfg = self._config
        arrays = self._shm.arrays
        with inst.phase("flow_solve"):
            np.copyto(arrays["phi"], routing.phi)
            results = self._dispatch("forecast", indexed=True)
            edge_usage = self._reduce_usage(arrays)
            node_usage = np.zeros(ext.num_nodes, dtype=float)
            np.add.at(node_usage, ext.edge_tail, edge_usage)
            traffic = arrays["traffic"].copy()
            breakdown = evaluate_cost(
                ext, routing, cfg.cost_model, traffic, usage=(edge_usage, node_usage)
            )
            dadf = link_cost_derivative(ext, cfg.cost_model, edge_usage, node_usage)
            np.copyto(arrays["dadf"], dadf)
        inst.count("flow_solves")
        if inst.enabled:
            inst.gauge("parallel.workers", float(len(self._shards)))
        self._observe_worker_timings(inst, results)
        self._loaded_for = routing
        return IterationContext(
            routing=routing,
            traffic=traffic,
            edge_usage=edge_usage,
            node_usage=node_usage,
            breakdown=breakdown,
            dadf=dadf if with_derivatives else None,
            dadr=None,
            delta=None,
        )

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        """One application of ``Gamma``, sharded across the worker pool."""
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        cfg = self._config
        if eta is None:
            eta = cfg.eta
        if context is None or self._loaded_for is not routing:
            # the shared traffic/dadf buffers describe some other routing
            # state; refresh them for this one
            self.build_context(routing, instrumentation=instrumentation)
        arrays = self._shm.arrays
        with inst.phase("parallel_step"):
            np.copyto(arrays["phi"], routing.phi)
            results = self._dispatch(
                "step", (eta, cfg.use_blocking, cfg.traffic_tol)
            )
            new_phi = arrays["phi_next"].copy()
        self._observe_worker_timings(inst, results)
        return RoutingState(new_phi)

    def advance(
        self,
        routing: RoutingState,
        context: Optional[IterationContext],
        iterations: int,
        eta: Optional[float] = None,
        instrumentation: Any = None,
    ) -> Tuple[RoutingState, IterationContext]:
        """Batched dispatch: up to ``staleness + 1`` iterations per round-trip.

        Within one batch every worker iterates privately on its own
        commodity rows -- re-solving its local flow balance and re-applying
        ``Gamma`` each inner iteration -- while the global ``dadf`` stays
        frozen at its batch-start value (at most ``staleness`` iterations
        old).  After the batch the master performs the usual fixed-order
        usage reduce and recomputes a *fresh* ``dadf``, so staleness never
        accumulates across batches.  With ``staleness=0`` this is exactly
        the synchronous per-iteration schedule (bit-identical to serial).

        Every batch is guarded by a monotonicity check: if the batch-final
        penalised cost exceeds the batch-start cost, the frozen derivative
        overshot (this happens near the capacity barrier, where ``dadf``
        steepens faster than any bounded-staleness estimate can track) and
        the whole batch is discarded and the span re-run on the synchronous
        per-iteration schedule.  Accepting such a batch is how a "2% drift"
        mode turns into a 40% utility regression; rejecting it costs one
        wasted round-trip and keeps the drift bound honest
        (``parallel.batch_rejected`` counts the rollbacks).
        """
        if self.staleness <= 0 or iterations <= 1:
            return super().advance(
                routing, context, iterations, eta=eta,
                instrumentation=instrumentation,
            )
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        ext = self._ext
        cfg = self._config
        if eta is None:
            eta = cfg.eta
        done = 0
        while done < iterations:
            span = min(self.staleness + 1, iterations - done)
            if context is None or self._loaded_for is not routing:
                # the shared traffic/dadf buffers describe some other
                # routing state; refresh them for this one
                context = self.build_context(routing, instrumentation=instrumentation)
            if span == 1:
                routing = self.step(
                    routing, eta=eta, context=context, instrumentation=instrumentation
                )
                context = self.build_context(routing, instrumentation=instrumentation)
                done += 1
                continue
            previous, previous_context = routing, context
            arrays = self._shm.arrays
            with inst.phase("parallel_batch", iterations=span):
                np.copyto(arrays["phi"], routing.phi)
                results = self._dispatch(
                    "batch", (span, eta, cfg.use_blocking, cfg.traffic_tol),
                    indexed=True,
                )
                new_phi = arrays["phi_next"].copy()
                # same fixed-order reduce and master-side derivative as the
                # synchronous build_context, over the batch-final rows
                edge_usage = self._reduce_usage(arrays)
                node_usage = np.zeros(ext.num_nodes, dtype=float)
                np.add.at(node_usage, ext.edge_tail, edge_usage)
                traffic = arrays["traffic"].copy()
                routing = RoutingState(new_phi)
                breakdown = evaluate_cost(
                    ext, routing, cfg.cost_model, traffic,
                    usage=(edge_usage, node_usage),
                )
                dadf = link_cost_derivative(
                    ext, cfg.cost_model, edge_usage, node_usage
                )
                np.copyto(arrays["dadf"], dadf)
            self._observe_worker_timings(inst, results)
            if breakdown.total > previous_context.breakdown.total * (1 + 1e-9):
                # the frozen dadf overshot: discard the batch and redo the
                # span synchronously from the batch-start iterate.  The
                # batch clobbered the shared traffic/dadf buffers, so
                # restore them to match previous_context before stepping
                # (_loaded_for still points at `previous`).
                inst.count("parallel.batch_rejected")
                np.copyto(arrays["traffic"], previous_context.traffic)
                np.copyto(arrays["dadf"], previous_context.dadf)
                routing, context = previous, previous_context
                for _ in range(span):
                    # Safeguarded synchronous step.  The knife-edge states
                    # that trigger batch rejection sit on a blocked-set
                    # boundary where even the *exact* full-eta step can
                    # ascend (the accumulated drift flips a discrete
                    # blocking decision and Gamma reroutes a large flow
                    # share at once), so backtrack eta until the penalised
                    # cost stops increasing.  Trial evaluations run
                    # master-side and never touch the shared buffers, so
                    # each retry redispatches the same restored state.
                    best_routing, best_cost = None, np.inf
                    step_eta = eta
                    for _attempt in range(_REDO_MAX_BACKOFFS + 1):
                        candidate = self.step(
                            routing, eta=step_eta, context=context,
                            instrumentation=instrumentation,
                        )
                        cand_cost = evaluate_cost(
                            ext, candidate, cfg.cost_model
                        ).total
                        if cand_cost < best_cost:
                            best_routing, best_cost = candidate, cand_cost
                        if cand_cost <= context.breakdown.total * (1 + 1e-9):
                            break
                        inst.count("parallel.batch_backoffs")
                        step_eta *= 0.5
                    routing = best_routing
                    context = self.build_context(
                        routing, instrumentation=instrumentation
                    )
                done += span
                continue
            # each inner iteration re-solved every commodity's flow balance
            inst.count("flow_solves", span)
            inst.count("parallel.batches")
            self._loaded_for = routing
            context = IterationContext(
                routing=routing,
                traffic=traffic,
                edge_usage=edge_usage,
                node_usage=node_usage,
                breakdown=breakdown,
                dadf=dadf,
                dadr=None,
                delta=None,
            )
            done += span
        return routing, context


# -- backend selection ---------------------------------------------------------------

BACKEND_NAMES = ("serial", "thread", "process", "auto")

# environment default for resolve_backend() when neither backend= nor
# workers= is passed -- how the CI tier-1 matrix runs the whole suite on the
# threaded backend without touching call sites
REPRO_BACKEND_ENV = "REPRO_BACKEND"

# auto-selection thresholds, calibrated on the TAB-PARALLEL instances (see
# docs/parallelism.md for the measurements).  ``work cells`` is the size
# proxy J * (E + V): the per-commodity kernel work of one iteration touches
# each commodity's edge and node rows about once.  The serial engine's
# merged kernels amortise Python/NumPy dispatch across commodities, so a
# sharded backend starts ~3x behind on small instances and only wins once
# per-shard array work dominates -- hence thresholds well above the sizes
# where serial finishes an iteration in a few hundred microseconds.
AUTO_THREAD_MIN_CELLS = 20_000
AUTO_PROCESS_MIN_CELLS = 200_000
# measured-timing overrides (preferred when an instrumented run has already
# recorded per-iteration wall-clock): a thread round-trip costs ~0.2 ms, a
# process round-trip ~2 ms, so parallelism needs iterations at least an
# order of magnitude above that to pay
AUTO_THREAD_MIN_SECONDS = 4e-3
AUTO_PROCESS_MIN_SECONDS = 4e-2


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _work_cells(ext: ExtendedNetwork) -> int:
    return ext.num_commodities * (ext.num_edges + ext.num_nodes)


def _measured_iteration_seconds(instrumentation: Any) -> Optional[float]:
    """Mean recorded per-iteration wall-clock, if the caller's run has one."""
    if instrumentation is None or not getattr(instrumentation, "enabled", False):
        return None
    registry = getattr(instrumentation, "registry", None)
    if registry is None or "phase.iteration.seconds" not in registry:
        return None
    histogram = registry.histogram("phase.iteration.seconds")
    if histogram.count == 0:
        return None
    return histogram.total / histogram.count


def auto_backend(
    ext: Optional[ExtendedNetwork] = None,
    workers: Any = None,
    staleness: Optional[int] = None,
    instrumentation: Any = None,
) -> ExecutionBackend:
    """Pick serial/thread/process from CPUs, problem size, and timings.

    The decision procedure, in order:

    1. the worker cap is ``min(requested workers, available CPUs,
       commodity count)`` -- one effective worker means serial, always
       (sharding on a single core can only add overhead);
    2. a measured per-iteration wall-clock from the caller's
       instrumentation (the ``phase.iteration.seconds`` histogram of a
       previous run) beats any static proxy when present;
    3. otherwise the ``J * (E + V)`` work-cell proxy decides.

    ``staleness`` is treated as *permission*, not a demand: it takes effect
    only when the process backend is selected (the thread and serial
    engines are synchronous and strictly more accurate).
    """
    from repro.parallel.threads import ThreadBackend

    cpus = available_cpus()
    cap = cpus if workers in (None, "auto") else min(int(workers), cpus)
    if ext is not None:
        cap = min(cap, ext.num_commodities)
    cells = _work_cells(ext) if ext is not None else None
    measured = _measured_iteration_seconds(instrumentation)

    if cap <= 1:
        kind = "serial"
    elif measured is not None:
        if measured >= AUTO_PROCESS_MIN_SECONDS:
            kind = "process"
        elif measured >= AUTO_THREAD_MIN_SECONDS:
            kind = "thread"
        else:
            kind = "serial"
    elif cells is not None:
        if cells >= AUTO_PROCESS_MIN_CELLS:
            kind = "process"
        elif cells >= AUTO_THREAD_MIN_CELLS:
            kind = "thread"
        else:
            kind = "serial"
    else:
        # no size information at all: threads are the safe parallel choice
        # (worst case a few hundred microseconds of queue hops, never the
        # process pool's multi-millisecond pickles)
        kind = "thread"

    inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    if inst.enabled:
        inst.event(
            "backend.auto",
            kind=kind,
            workers=cap,
            cpus=cpus,
            **({"work_cells": cells} if cells is not None else {}),
            **({"measured_iteration_seconds": measured} if measured is not None else {}),
        )
    if kind == "serial":
        return SerialBackend()
    if kind == "thread":
        return ThreadBackend(workers=cap)
    return ParallelBackend(workers=cap, staleness=staleness or 0)


def resolve_backend(
    backend: Any = None,
    workers: Any = None,
    ext: Optional[ExtendedNetwork] = None,
    staleness: Optional[int] = None,
    instrumentation: Any = None,
) -> ExecutionBackend:
    """The backend implied by the uniform ``backend=`` / ``workers=`` pair.

    ``backend`` is an :class:`ExecutionBackend` instance (returned as-is,
    borrowed -- the caller keeps ownership) or one of the names in
    :data:`BACKEND_NAMES`:

    * ``"serial"`` -- the in-process reference engine;
    * ``"thread"`` -- :class:`~repro.parallel.threads.ThreadBackend`,
      zero-copy sharding over a thread pool;
    * ``"process"`` -- :class:`ParallelBackend`;
    * ``"auto"`` -- :func:`auto_backend` picks from CPUs, problem size
      (``ext``), and measured timings (``instrumentation``).

    ``workers`` is the convenience spelling used by :func:`repro.solve` and
    the CLI: an integer count or the string ``"auto"``.  A bare integer
    keeps its historical meaning (the process backend), except that
    ``workers=1`` now resolves to :class:`SerialBackend` -- a pool of one
    is pure overhead and the serial engine computes the same bits.

    When *neither* argument is given the :data:`REPRO_BACKEND_ENV`
    environment variable supplies a default backend name (unset: serial).

    ``staleness`` (process backend only) enables batched dispatch; see
    :class:`ParallelBackend`.  Combining it with ``"serial"``/``"thread"``
    is an error, and under ``"auto"`` it is permission rather than a
    demand.
    """
    if staleness is not None and (
        not isinstance(staleness, int) or isinstance(staleness, bool) or staleness < 0
    ):
        raise ValueError(f"staleness must be a non-negative int, got {staleness!r}")
    if isinstance(backend, ExecutionBackend):
        if workers is not None:
            raise ValueError("pass either backend= or workers=, not both")
        if staleness:
            raise ValueError(
                "staleness= cannot be combined with a backend instance; "
                "construct ParallelBackend(staleness=...) directly"
            )
        return backend

    if backend is None and workers is None:
        backend = os.environ.get(REPRO_BACKEND_ENV) or None
        if backend is None:
            if staleness:
                raise ValueError(
                    "staleness= requires the process backend; pass workers>=2, "
                    "backend='process', or backend='auto'"
                )
            return SerialBackend()

    count: Optional[int] = None
    if workers is not None and workers != "auto":
        count = int(workers)
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

    if backend is None:
        backend = "auto" if workers == "auto" else "process"
    if not isinstance(backend, str) or backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {backend!r}; expected an ExecutionBackend "
            f"instance or one of {BACKEND_NAMES}"
        )

    if backend == "auto":
        return auto_backend(
            ext=ext, workers=workers, staleness=staleness,
            instrumentation=instrumentation,
        )
    if backend == "serial":
        if count is not None and count != 1:
            raise ValueError(
                "backend='serial' is single-worker; drop workers= or pick "
                "'thread'/'process'/'auto'"
            )
        if staleness:
            raise ValueError("staleness= requires the process backend")
        return SerialBackend()
    if count == 1:
        # one worker: any pool is pure overhead and the serial engine
        # computes the same bits (staleness is moot -- synchronous serial
        # execution is strictly fresher than any relaxed schedule)
        return SerialBackend()
    if backend == "thread":
        if staleness:
            raise ValueError(
                "staleness= requires the process backend; the thread "
                "backend is synchronous"
            )
        from repro.parallel.threads import ThreadBackend

        return ThreadBackend(workers=count)
    return ParallelBackend(workers=count, staleness=staleness or 0)
