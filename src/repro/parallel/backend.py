"""Execution backends for the gradient engine: serial and process-parallel.

The paper's distributed algorithm is embarrassingly parallel across
commodities within an iteration: given the routing state ``phi`` and the
global link-cost derivative ``dadf``, each commodity's flow balance,
marginal-cost wave, blocked sets and ``Gamma`` update touch only its own
rows.  :class:`ParallelBackend` shards that per-commodity work across a
:class:`~concurrent.futures.ProcessPoolExecutor`, keeping the iterates
**bit-identical** to the serial engine:

* workers run the per-commodity kernels that are already pinned
  bit-identical to the merged cross-commodity kernels the serial engine
  uses (``solve_traffic_commodity``, ``marginal_cost_to_destination``,
  ``compute_blocked_sets``, ``apply_gamma_batch`` over the per-commodity
  plan);
* the only cross-commodity coupling -- summing per-commodity resource usage
  into ``edge_usage`` (eq. (4)) -- is reduced on the master by the *same*
  fixed-order ``np.add.reduce`` call over the same ``(J, E)`` bits as the
  serial path, regardless of worker completion order;
* everything else the master computes (cost breakdown, ``dadf``) runs the
  identical serial functions on those identical bits.

:class:`SerialBackend` is the default and is a verbatim move of the previous
inline code paths of :class:`~repro.core.gradient.GradientAlgorithm`, so
``backend=None`` is a zero-behavior change.

See ``docs/parallelism.md`` for the design discussion and when sharding
actually pays off.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocking import compute_all_blocked_sets
from repro.core.context import IterationContext, build_iteration_context
from repro.core.gradient import GradientConfig, apply_gamma_batch
from repro.core.marginals import evaluate_cost, link_cost_derivative
from repro.core.routing import RoutingState
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ParallelExecutionError
from repro.obs.instrumentation import NULL_INSTRUMENTATION
from repro.parallel.shm import SharedArraySet
from repro.parallel.worker import init_worker, run_shard

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "resolve_backend",
]


class ExecutionBackend:
    """Interface every execution backend implements.

    A backend is *bound* to one ``(ExtendedNetwork, GradientConfig)`` pair by
    the algorithm that owns it, then asked for the two halves of an
    iteration: :meth:`build_context` (the flow solve and everything derived
    from it) and :meth:`step` (one application of the update map ``Gamma``).
    Backends must keep iterates bit-identical to :class:`SerialBackend`.
    """

    name = "abstract"
    workers = 1

    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        raise NotImplementedError

    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        raise NotImplementedError

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        raise NotImplementedError

    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        """Advance the bound model one epoch without rebinding.

        ``applied`` is a :class:`repro.core.delta.AppliedDelta`.  Unlike
        :meth:`bind` with a new network -- which tears pooled resources
        down -- a refresh republishes only what the delta dirtied, so a
        parallel backend keeps its worker pool and its unchanged
        shared-memory segments alive.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources; safe to call repeatedly."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The in-process reference backend (the previous inline code paths)."""

    name = "serial"
    workers = 1

    def __init__(self) -> None:
        self._ext: Optional[ExtendedNetwork] = None
        self._config: Optional[GradientConfig] = None

    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        self._ext = ext
        self._config = config

    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        self._ext = applied.ext

    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        return build_iteration_context(
            self._ext,
            routing,
            self._config.cost_model,
            with_derivatives=with_derivatives,
            instrumentation=instrumentation,
        )

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        ext = self._ext
        cfg = self._config
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        if eta is None:
            eta = cfg.eta
        if context is None:
            context = self.build_context(routing, instrumentation=instrumentation)
        new_phi = routing.phi.copy()

        blocked: Optional[np.ndarray]
        if cfg.use_blocking:
            with inst.phase("blocking"):
                blocked = compute_all_blocked_sets(
                    ext, routing, context.traffic, context.dadr, context.delta, eta
                ).reshape(-1)
            if not blocked.any():
                # an empty blocked set is indistinguishable from no blocking;
                # let the kernel take its cheaper unblocked path
                blocked = None
        else:
            blocked = None
        # one kernel call for every commodity: the merged plan's flattened
        # (j*V + v, j*E + e) ids index the raveled views below
        with inst.phase("gamma"):
            apply_gamma_batch(
                new_phi.reshape(-1),
                ext.merged_gamma_plan,
                context.traffic.reshape(-1),
                context.delta.reshape(-1),
                blocked,
                eta,
                cfg.traffic_tol,
            )

        return RoutingState(new_phi)


def _split_shards(num_commodities: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal commodity ranges, one per logical worker.

    Contiguity matters: the master's fixed-order reduce and the bit-identity
    argument rely on every commodity being computed exactly once and on the
    reduce order being the commodity order, not the shard order.
    """
    n = max(1, min(workers, num_commodities))
    base, extra = divmod(num_commodities, n)
    shards: List[Tuple[int, int]] = []
    lo = 0
    for k in range(n):
        hi = lo + base + (1 if k < extra else 0)
        shards.append((lo, hi))
        lo = hi
    return shards


class ParallelBackend(ExecutionBackend):
    """Process-parallel sharded execution of the gradient iteration.

    Parameters
    ----------
    workers:
        Worker process count (default: ``os.cpu_count()``).  The effective
        pool size is capped at the commodity count -- the sharding axis.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ...); default: the platform default.
    inject_fault:
        Test hook: the name of a worker phase (``"forecast"`` / ``"step"``)
        in which every worker raises, to exercise crash cleanup.  Never set
        this outside tests.

    Use as a context manager (or call :meth:`close`) to release the worker
    pool and the shared-memory blocks deterministically.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        inject_fault: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._start_method = start_method
        self._inject_fault = inject_fault
        self._ext: Optional[ExtendedNetwork] = None
        self._config: Optional[GradientConfig] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shm: Optional[SharedArraySet] = None
        self._shards: List[Tuple[int, int]] = []
        self._loaded_for: Optional[RoutingState] = None
        # fixed for the pool's lifetime; later refreshes re-shard within it
        self._pool_size: int = 0
        self._barrier: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------------------
    def bind(self, ext: ExtendedNetwork, config: GradientConfig) -> None:
        if ext is self._ext and config is self._config:
            return
        if self._pool is not None:
            # rebinding to a new problem invalidates the published arrays
            self.close()
        self._ext = ext
        self._config = config

    def _ensure_started(self) -> None:
        if self._pool is not None:
            return
        if self._ext is None:
            raise ParallelExecutionError(
                "ParallelBackend used before bind(); construct it via "
                "GradientAlgorithm(..., backend=...) or call bind(ext, config)"
            )
        ext = self._ext
        # build the lazy plans once on the master so the pickled network the
        # workers receive already carries them
        _ = ext.flow_plans, ext.gamma_plans, ext.merged_gamma_plan
        shm = SharedArraySet()
        try:
            shape_je = (ext.num_commodities, ext.num_edges)
            shm.create("phi", shape_je)
            shm.create("phi_next", shape_je)
            shm.create("usage", shape_je)
            shm.create("traffic", (ext.num_commodities, ext.num_nodes))
            shm.create("dadf", (ext.num_edges,))
            self._shards = _split_shards(ext.num_commodities, self.workers)
            self._pool_size = len(self._shards)
            import multiprocessing

            ctx = (
                multiprocessing.get_context(self._start_method)
                if self._start_method
                else multiprocessing.get_context()
            )
            # the barrier is the exactly-once delivery mechanism of
            # refresh(): every worker blocks in its refresh task until all
            # pool members have received theirs
            self._barrier = ctx.Barrier(self._pool_size)
            self._pool = ProcessPoolExecutor(
                max_workers=self._pool_size,
                initializer=init_worker,
                initargs=(ext, shm.specs, self._inject_fault, self._barrier),
                mp_context=ctx,
            )
        except BaseException:
            shm.close()
            raise
        self._shm = shm

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
        self._loaded_for = None
        self._barrier = None
        self._pool_size = 0

    def __del__(self) -> None:  # best-effort safety net; close() is the API
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch ------------------------------------------------------------------
    def _collect(self, phase: str, futures: List[Future]) -> List[Any]:
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # worker death raises BrokenProcessPool
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            # the pool may be broken; tear everything down so the caller is
            # left with a clean error instead of a wedged executor
            self.close()
            raise ParallelExecutionError(
                f"parallel worker failed during the {phase!r} phase: "
                f"{first_error!r} (the worker pool has been shut down)"
            ) from first_error
        return results

    def _dispatch(self, phase: str, args: Sequence[Any] = ()) -> List[Any]:
        assert self._pool is not None
        futures: List[Future] = [
            self._pool.submit(run_shard, phase, lo, hi, *args)
            for lo, hi in self._shards
        ]
        return self._collect(phase, futures)

    # -- epoch refresh -------------------------------------------------------------
    def refresh(self, applied: Any, instrumentation: Any = None) -> None:
        """Advance the pool to the delta's epoch without restarting it.

        Scalar deltas ship the few-byte patch; every worker applies it to
        its own network copy and no shared memory moves.  Structural deltas
        ship the spliced successor network and re-publish only the
        shared-memory segments whose shape actually changed.  Exactly-once
        delivery is enforced by a pool-wide barrier: each worker blocks in
        its refresh task until all ``_pool_size`` tasks have landed, so the
        executor cannot hand two of them to one worker.
        """
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        ext = applied.ext
        if self._pool is None:
            # nothing published yet: adopt the new epoch and start lazily
            self._ext = ext
            return
        if applied.structural:
            # build the lazy plans before pickling, as _ensure_started does
            _ = ext.flow_plans, ext.gamma_plans, ext.merged_gamma_plan
            shm = self._shm
            shapes = {
                "phi": (ext.num_commodities, ext.num_edges),
                "phi_next": (ext.num_commodities, ext.num_edges),
                "usage": (ext.num_commodities, ext.num_edges),
                "traffic": (ext.num_commodities, ext.num_nodes),
                "dadf": (ext.num_edges,),
            }
            dirty = [
                name
                for name, shape in shapes.items()
                if shm.arrays[name].shape != shape
            ]
            for name in dirty:
                shm.replace(name, shapes[name])
            payload = ("ext", ext, shm.specs if dirty else None, ext.epoch)
            self._shards = _split_shards(ext.num_commodities, self._pool_size)
            if inst.enabled:
                inst.count("parallel.refresh.segments_republished", len(dirty))
        else:
            payload = ("patch", applied.delta.scalar, None, ext.epoch)
        with inst.phase("parallel_refresh", epoch=ext.epoch):
            assert self._pool is not None
            futures = [
                self._pool.submit(run_shard, "refresh", k, k, payload)
                for k in range(self._pool_size)
            ]
            results = self._collect("refresh", futures)
        self._observe_worker_timings(inst, results)
        self._ext = ext
        self._loaded_for = None
        inst.count("parallel.refresh")

    def _observe_worker_timings(self, inst: Any, results: List[Any]) -> None:
        if not inst.enabled:
            return
        for worker_index, (_lo, timings) in enumerate(results):
            for name, duration in timings.items():
                inst.phase_observation(
                    f"worker{worker_index}.{name}", duration, worker=worker_index
                )

    # -- the two iteration halves ----------------------------------------------------
    def build_context(
        self,
        routing: RoutingState,
        instrumentation: Any = None,
        with_derivatives: bool = True,
    ) -> IterationContext:
        """Parallel flow solve + master-side reduce and cost evaluation.

        The returned context always carries ``dadf`` but never ``dadr`` /
        ``delta``: the parallel :meth:`step` recomputes the per-commodity
        derivative wave inside the workers (one fewer synchronisation
        barrier per iteration).
        """
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        ext = self._ext
        cfg = self._config
        arrays = self._shm.arrays
        with inst.phase("flow_solve"):
            np.copyto(arrays["phi"], routing.phi)
            results = self._dispatch("forecast")
            # deterministic fixed-order reduce: same call, same (J, E) bits,
            # same association as the serial resource_usage -- worker
            # completion order cannot influence a single output bit
            edge_usage = np.add.reduce(arrays["usage"], axis=0)
            node_usage = np.zeros(ext.num_nodes, dtype=float)
            np.add.at(node_usage, ext.edge_tail, edge_usage)
            traffic = arrays["traffic"].copy()
            breakdown = evaluate_cost(
                ext, routing, cfg.cost_model, traffic, usage=(edge_usage, node_usage)
            )
            dadf = link_cost_derivative(ext, cfg.cost_model, edge_usage, node_usage)
            np.copyto(arrays["dadf"], dadf)
        inst.count("flow_solves")
        if inst.enabled:
            inst.gauge("parallel.workers", float(len(self._shards)))
        self._observe_worker_timings(inst, results)
        self._loaded_for = routing
        return IterationContext(
            routing=routing,
            traffic=traffic,
            edge_usage=edge_usage,
            node_usage=node_usage,
            breakdown=breakdown,
            dadf=dadf if with_derivatives else None,
            dadr=None,
            delta=None,
        )

    def step(
        self,
        routing: RoutingState,
        eta: Optional[float] = None,
        context: Optional[IterationContext] = None,
        instrumentation: Any = None,
    ) -> RoutingState:
        """One application of ``Gamma``, sharded across the worker pool."""
        inst = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        self._ensure_started()
        cfg = self._config
        if eta is None:
            eta = cfg.eta
        if context is None or self._loaded_for is not routing:
            # the shared traffic/dadf buffers describe some other routing
            # state; refresh them for this one
            self.build_context(routing, instrumentation=instrumentation)
        arrays = self._shm.arrays
        with inst.phase("parallel_step"):
            np.copyto(arrays["phi"], routing.phi)
            results = self._dispatch(
                "step", (eta, cfg.use_blocking, cfg.traffic_tol)
            )
            new_phi = arrays["phi_next"].copy()
        self._observe_worker_timings(inst, results)
        return RoutingState(new_phi)


def resolve_backend(
    backend: Optional[ExecutionBackend] = None,
    workers: Optional[int] = None,
) -> ExecutionBackend:
    """The backend implied by the uniform ``backend=`` / ``workers=`` pair.

    ``workers`` is the convenience spelling used by :func:`repro.solve` and
    the CLI: ``None`` keeps the serial default, any count >= 1 builds a
    :class:`ParallelBackend` (1 still exercises the pool path, which is
    useful for testing and for isolating the iteration from the caller's
    process).  Passing both is an error.
    """
    if backend is not None and workers is not None:
        raise ValueError("pass either backend= or workers=, not both")
    if backend is not None:
        return backend
    if workers is not None:
        return ParallelBackend(workers=workers)
    return SerialBackend()
