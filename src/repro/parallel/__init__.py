"""Parallel execution backends for the gradient engine.

See :mod:`repro.parallel.backend` for the backend classes and
``docs/parallelism.md`` for the design: per-commodity sharding over a
thread pool (:class:`ThreadBackend`, zero-copy) or a process pool
(:class:`ParallelBackend`, shared-memory array exchange, optional
bounded-staleness batched dispatch), the determinism contract that keeps
synchronous parallel iterates bit-identical to serial ones, and the
size-aware auto-selection behind ``workers="auto"``.
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    REPRO_BACKEND_ENV,
    ExecutionBackend,
    ParallelBackend,
    SerialBackend,
    auto_backend,
    available_cpus,
    resolve_backend,
)
from repro.parallel.threads import ThreadBackend

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ParallelBackend",
    "resolve_backend",
    "auto_backend",
    "available_cpus",
    "BACKEND_NAMES",
    "REPRO_BACKEND_ENV",
]
