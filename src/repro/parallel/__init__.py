"""Process-parallel execution backend for the gradient engine.

See :mod:`repro.parallel.backend` for the backend classes and
``docs/parallelism.md`` for the design: per-commodity sharding over a
process pool, shared-memory array exchange, and the determinism contract
that keeps parallel iterates bit-identical to serial ones.
"""

from repro.parallel.backend import (
    ExecutionBackend,
    ParallelBackend,
    SerialBackend,
    resolve_backend,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "resolve_backend",
]
