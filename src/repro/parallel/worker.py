"""Worker-process side of the process-parallel gradient backend.

Each worker owns a contiguous *shard* of commodities.  The pool initializer
receives the pickled :class:`~repro.core.transform.ExtendedNetwork` exactly
once (the static graph arrays never cross the pickle boundary again) and
attaches to the shared-memory arrays published by the master; after that,
per-iteration task descriptors are a few bytes each.

Three task phases exist; the first two mirror the halves of a serial
iteration, the third is the bounded-staleness batch:

``forecast``
    Solve the flow balance (eq. (3)) for each owned commodity and write its
    traffic row and per-commodity resource-usage row into shared memory.
    The master then performs the deterministic fixed-order reduce
    (``np.add.reduce`` over the commodity axis -- the *same call on the same
    bits* as the serial path) to obtain ``edge_usage``/``node_usage``.

``step``
    Given the master-computed ``dadf`` (eq. (11)), run the marginal-cost
    wave (eq. (9)), the edge marginals (eq. (15)), the blocked sets
    (eq. (18)) and the update map ``Gamma`` (eqs. (14)-(17)) for each owned
    commodity, writing the new routing row into the ``phi_next`` buffer.

``batch``
    Run several full iterations privately over the owned shard with the
    global ``dadf`` frozen at its dispatch value (the bounded-staleness
    relaxed mode of ``ParallelBackend(staleness=K)``); local traffic rows
    are re-solved every inner iteration, so only the *global* coupling is
    stale, exactly as the paper's Section-5 asynchronous protocol allows.

Every kernel invoked here is the *per-commodity* variant that is pinned
bit-identical to the merged cross-commodity kernels the serial engine runs,
which is what makes the parallel iterates bit-identical to serial ones.
"""

from __future__ import annotations

import atexit
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.blocking import compute_blocked_sets
from repro.core.delta import ScalarPatch, apply_scalar_patch
from repro.core.gradient import apply_gamma_batch
from repro.core.marginals import edge_marginals, marginal_cost_to_destination
from repro.core.routing import (
    RoutingState,
    external_inputs_rows,
    solve_traffic_commodity,
)
from repro.core.state import ModelState
from repro.core.transform import ExtendedNetwork
from repro.parallel.shm import ArraySpec, attach_arrays

__all__ = ["init_worker", "run_shard"]

# Process-global worker state, set once by the pool initializer.
_EXT: Optional[ExtendedNetwork] = None
_ARRAYS: Dict[str, np.ndarray] = {}
_BLOCKS: List[Any] = []
_FAULT: Optional[str] = None
_BARRIER: Optional[Any] = None
# array-core mode: the master resolves REPRO_MODEL_CORE once at pool start
# and ships the decision here, so master and workers can never disagree
_ARRAY_CORE: bool = False
# private per-worker scratch for the array-core step/batch bodies, keyed by
# shape so structural refreshes reallocate lazily
_SCRATCH: Dict[str, np.ndarray] = {}

# A refresh task must reach *every* worker exactly once; workers that
# finished theirs block on the barrier until the stragglers arrive.  The
# timeout only matters when a sibling dies mid-refresh -- it turns a
# would-be deadlock into a BrokenBarrierError the master can report.
_REFRESH_BARRIER_TIMEOUT = 60.0


def _close_shared_memory() -> None:
    global _ARRAYS, _BLOCKS
    _ARRAYS = {}
    for block in _BLOCKS:
        try:
            block.close()
        except Exception:
            pass
    _BLOCKS = []


def init_worker(
    ext: ExtendedNetwork,
    specs: ArraySpec,
    fault: Optional[str],
    barrier: Optional[Any] = None,
    array_core: bool = False,
) -> None:
    """Pool initializer: receive the graph once, attach the shared arrays."""
    global _EXT, _ARRAYS, _BLOCKS, _FAULT, _BARRIER, _ARRAY_CORE
    _EXT = ext
    _ARRAYS, _BLOCKS = attach_arrays(specs)
    _FAULT = fault
    _BARRIER = barrier
    _ARRAY_CORE = array_core
    if array_core:
        # build the shared ModelState eagerly so iteration-time tasks never
        # pay (or re-time) its construction
        ModelState.of(ext)
    else:
        # touch the lazy per-commodity plans once, for the same reason
        _ = ext.flow_plans, ext.gamma_plans
    atexit.register(_close_shared_memory)


def _refresh_worker(payload: Tuple[str, Any, Optional[ArraySpec], int]) -> None:
    """Apply one epoch advance in this worker, then rendezvous.

    ``payload`` is ``(kind, data, specs, epoch)``: ``kind == "patch"``
    applies a :class:`~repro.core.delta.ScalarPatch` to the worker's own
    network copy; ``kind == "ext"`` replaces it with the freshly pickled
    successor (its plans already built by the master).  When ``specs`` is
    given the shared-memory layout changed: drop every old mapping and
    re-attach -- unchanged segments resolve to the same blocks, replaced
    ones to their successors.  The closing barrier guarantees exactly-once
    delivery: no worker can pick up a second refresh task while a sibling
    still hasn't run its first.
    """
    global _EXT, _ARRAYS, _BLOCKS
    assert _EXT is not None, "worker used before init_worker ran"
    kind, data, specs, epoch = payload
    if kind == "patch":
        patch: ScalarPatch = data
        apply_scalar_patch(_EXT, patch)
    else:
        _EXT = data
    if _EXT.epoch != epoch:
        raise RuntimeError(
            f"worker epoch diverged: have {_EXT.epoch}, master at {epoch}"
        )
    if specs is not None:
        _close_shared_memory()
        _ARRAYS, _BLOCKS = attach_arrays(specs)
    if _BARRIER is not None:
        _BARRIER.wait(timeout=_REFRESH_BARRIER_TIMEOUT)


def _scratch(name: str, shape: Tuple[int, ...], dtype=float) -> np.ndarray:
    """Private per-worker scratch array, reallocated when shapes change."""
    array = _SCRATCH.get(name)
    if array is None or array.shape != shape:
        array = _SCRATCH[name] = np.zeros(shape, dtype=dtype)
    return array


def _forecast_shard(lo: int, hi: int, shard: int) -> Dict[str, float]:
    assert _EXT is not None, "worker used before init_worker ran"
    ext = _EXT
    phi = _ARRAYS["phi"]
    traffic = _ARRAYS["traffic"]
    usage = _ARRAYS["usage"]
    start = time.perf_counter()
    if _ARRAY_CORE:
        state = ModelState.of(ext)
        traffic[lo:hi] = external_inputs_rows(ext, lo, hi)
        state.solve_traffic_block(traffic.reshape(-1), phi.reshape(-1), lo, hi)
        # per-shard (E,) usage partial in shm row `shard`; the master sums
        # partials in shard order, which reproduces the serial CSR row-sum
        # association exactly
        usage[shard] = state.usage_partial_block(
            phi.reshape(-1), traffic.reshape(-1), lo, hi
        )
        return {"flow_solve": time.perf_counter() - start}
    for j in range(lo, hi):
        row = solve_traffic_commodity(ext, j, phi[j])
        traffic[j] = row
        # same elementwise association as the serial (t * phi) * cost
        usage[j] = row[ext.edge_tail] * phi[j] * ext.cost[j]
    return {"flow_solve": time.perf_counter() - start}


def _step_shard_array(
    lo: int, hi: int, eta: float, use_blocking: bool, traffic_tol: float
) -> Dict[str, float]:
    """Array-core step body: row-block CSR kernels over the shared state.

    ``dadr``/``delta``/``blocked`` live in private per-worker scratch (only
    this shard's rows are ever written or read), while ``phi``/``phi_next``/
    ``traffic`` stay in shared memory exactly as in the object path.
    """
    ext = _EXT
    state = ModelState.of(ext)
    phi = _ARRAYS["phi"]
    phi_next = _ARRAYS["phi_next"]
    phi_flat = phi.reshape(-1)
    t_flat = _ARRAYS["traffic"].reshape(-1)
    dadf = _ARRAYS["dadf"]
    shape_jv = (ext.num_commodities, ext.num_nodes)
    shape_je = (ext.num_commodities, ext.num_edges)
    dadr = _scratch("dadr", shape_jv)
    delta = _scratch("delta", shape_je)
    timings = {"marginals": 0.0, "blocking": 0.0, "gamma": 0.0}
    start = time.perf_counter()
    dadr[lo:hi] = 0.0
    state.marginal_costs_block(dadr.reshape(-1), phi_flat, dadf, lo, hi)
    delta[lo:hi] = 0.0
    state.edge_marginals_block(delta.reshape(-1), dadf, dadr.reshape(-1), lo, hi)
    timings["marginals"] = time.perf_counter() - start
    blocked_flat: Optional[np.ndarray] = None
    if use_blocking:
        start = time.perf_counter()
        blocked = _scratch("blocked", shape_je, dtype=bool)
        blocked[lo:hi] = False
        if state.blocked_sets_block(
            blocked.reshape(-1),
            phi_flat,
            t_flat,
            dadr.reshape(-1),
            delta.reshape(-1),
            eta,
            lo,
            hi,
        ):
            blocked_flat = blocked.reshape(-1)
        timings["blocking"] = time.perf_counter() - start
    start = time.perf_counter()
    phi_next[lo:hi] = phi[lo:hi]
    plan = state.block(lo, hi).gamma_plan
    if plan is not None:
        apply_gamma_batch(
            phi_next.reshape(-1),
            plan,
            t_flat,
            delta.reshape(-1),
            blocked_flat,
            eta,
            traffic_tol,
        )
    timings["gamma"] = time.perf_counter() - start
    return timings


def _step_shard(
    lo: int, hi: int, eta: float, use_blocking: bool, traffic_tol: float
) -> Dict[str, float]:
    assert _EXT is not None, "worker used before init_worker ran"
    if _ARRAY_CORE:
        return _step_shard_array(lo, hi, eta, use_blocking, traffic_tol)
    ext = _EXT
    phi = _ARRAYS["phi"]
    phi_next = _ARRAYS["phi_next"]
    traffic = _ARRAYS["traffic"]
    dadf = _ARRAYS["dadf"]
    routing = RoutingState(phi)  # zero-copy read-only view
    timings = {"marginals": 0.0, "blocking": 0.0, "gamma": 0.0}
    for j in range(lo, hi):
        start = time.perf_counter()
        dadr = marginal_cost_to_destination(ext, j, routing, dadf)
        delta = edge_marginals(ext, j, dadf, dadr)
        timings["marginals"] += time.perf_counter() - start

        blocked: Optional[np.ndarray] = None
        if use_blocking:
            start = time.perf_counter()
            blocked = compute_blocked_sets(
                ext, j, routing, traffic, dadr, delta, eta
            )
            if not blocked.any():
                # an all-False mask is indistinguishable from no blocking;
                # take the kernel's cheaper unblocked path (same bits)
                blocked = None
            timings["blocking"] += time.perf_counter() - start

        start = time.perf_counter()
        row = phi[j].copy()
        apply_gamma_batch(
            row, ext.gamma_plans[j], traffic[j], delta, blocked, eta, traffic_tol
        )
        phi_next[j] = row
        timings["gamma"] += time.perf_counter() - start
    return timings


def _batch_shard_array(
    lo: int,
    hi: int,
    shard: int,
    iterations: int,
    eta: float,
    use_blocking: bool,
    traffic_tol: float,
) -> Dict[str, float]:
    """Array-core batch body: private row-block iterations, frozen ``dadf``.

    Mirrors the object-core batch exactly: ``Gamma`` applies in place on the
    shard's shm ``phi`` rows (the kernel reads and writes the same buffer,
    just like the serial engine's updated-copy), the shard's traffic rows
    are re-solved after every application, and the usage partial is
    published once over the batch-final rows.
    """
    ext = _EXT
    state = ModelState.of(ext)
    phi = _ARRAYS["phi"]
    phi_flat = phi.reshape(-1)
    traffic = _ARRAYS["traffic"]
    t_flat = traffic.reshape(-1)
    dadf = _ARRAYS["dadf"]
    shape_jv = (ext.num_commodities, ext.num_nodes)
    shape_je = (ext.num_commodities, ext.num_edges)
    dadr = _scratch("dadr", shape_jv)
    delta = _scratch("delta", shape_je)
    plan = state.block(lo, hi).gamma_plan
    start = time.perf_counter()
    for _ in range(iterations):
        dadr[lo:hi] = 0.0
        state.marginal_costs_block(dadr.reshape(-1), phi_flat, dadf, lo, hi)
        delta[lo:hi] = 0.0
        state.edge_marginals_block(delta.reshape(-1), dadf, dadr.reshape(-1), lo, hi)
        blocked_flat: Optional[np.ndarray] = None
        if use_blocking:
            blocked = _scratch("blocked", shape_je, dtype=bool)
            blocked[lo:hi] = False
            if state.blocked_sets_block(
                blocked.reshape(-1),
                phi_flat,
                t_flat,
                dadr.reshape(-1),
                delta.reshape(-1),
                eta,
                lo,
                hi,
            ):
                blocked_flat = blocked.reshape(-1)
        if plan is not None:
            apply_gamma_batch(
                phi_flat, plan, t_flat, delta.reshape(-1), blocked_flat, eta,
                traffic_tol,
            )
        traffic[lo:hi] = external_inputs_rows(ext, lo, hi)
        state.solve_traffic_block(t_flat, phi_flat, lo, hi)
    _ARRAYS["usage"][shard] = state.usage_partial_block(phi_flat, t_flat, lo, hi)
    _ARRAYS["phi_next"][lo:hi] = phi[lo:hi]
    return {"batch": time.perf_counter() - start}


def _batch_shard(
    lo: int,
    hi: int,
    iterations: int,
    eta: float,
    use_blocking: bool,
    traffic_tol: float,
) -> Dict[str, float]:
    """Run ``iterations`` private iterations over this shard's commodities.

    The bounded-staleness batch body: ``dadf`` stays frozen at its
    batch-start value for every inner iteration (that is the whole point --
    one round-trip buys ``iterations`` steps), while each commodity's own
    traffic row is re-solved after every ``Gamma`` application, so local
    state is always fresh.  Every read and write stays inside this shard's
    rows -- siblings running concurrently never observe (or miss) a byte of
    ours -- and the master only reads after all shards have returned.
    """
    assert _EXT is not None, "worker used before init_worker ran"
    ext = _EXT
    phi = _ARRAYS["phi"]
    phi_next = _ARRAYS["phi_next"]
    traffic = _ARRAYS["traffic"]
    usage = _ARRAYS["usage"]
    dadf = _ARRAYS["dadf"]
    routing = RoutingState(phi)  # zero-copy view; we update our own rows
    start = time.perf_counter()
    for _ in range(iterations):
        for j in range(lo, hi):
            dadr = marginal_cost_to_destination(ext, j, routing, dadf)
            delta = edge_marginals(ext, j, dadf, dadr)
            blocked: Optional[np.ndarray] = None
            if use_blocking:
                blocked = compute_blocked_sets(
                    ext, j, routing, traffic, dadr, delta, eta
                )
                if not blocked.any():
                    blocked = None
            row = phi[j].copy()
            apply_gamma_batch(
                row, ext.gamma_plans[j], traffic[j], delta, blocked, eta, traffic_tol
            )
            phi[j] = row
            fresh = solve_traffic_commodity(ext, j, row)
            traffic[j] = fresh
            usage[j] = fresh[ext.edge_tail] * row * ext.cost[j]
    phi_next[lo:hi] = phi[lo:hi]
    return {"batch": time.perf_counter() - start}


def run_shard(phase: str, lo: int, hi: int, *args: Any) -> Tuple[int, Dict[str, float]]:
    """Task entry point: run one phase over commodities ``[lo, hi)``.

    Returns ``(lo, timings)`` so the master can attribute the per-phase
    wall-clock to the shard's logical worker in the instrumentation.
    """
    if _FAULT is not None and _FAULT == phase:
        raise RuntimeError(
            f"injected worker fault during {phase!r} (test hook)"
        )
    if phase == "forecast":
        (shard,) = args
        return lo, _forecast_shard(lo, hi, shard)
    if phase == "step":
        eta, use_blocking, traffic_tol = args
        return lo, _step_shard(lo, hi, eta, use_blocking, traffic_tol)
    if phase == "batch":
        shard, iterations, eta, use_blocking, traffic_tol = args
        if _ARRAY_CORE:
            return lo, _batch_shard_array(
                lo, hi, shard, iterations, eta, use_blocking, traffic_tol
            )
        return lo, _batch_shard(lo, hi, iterations, eta, use_blocking, traffic_tol)
    if phase == "refresh":
        start = time.perf_counter()
        _refresh_worker(args[0])
        return lo, {"refresh": time.perf_counter() - start}
    raise ValueError(f"unknown worker phase {phase!r}")
