"""Differential oracle: two solvers, one workload, a toleranced diff.

The highest-leverage guard for perf work on this codebase is not a unit
test but a *differential* one: run two algorithms (or the same algorithm
on two execution backends) on the same instance and compare admitted
rates, flows, and final utility.  Two comparison regimes:

* **cross-algorithm** (gradient vs the centralized LP / Frank-Wolfe
  optimum, or vs back-pressure): utilities must agree within a relative
  tolerance.  Admitted rates and flows are reported but not enforced by
  default -- optima can be degenerate, so different solvers legitimately
  reach the same utility through different rates.
* **cross-backend** (serial vs ``workers=N``): the parallel backend's
  contract is *bit-identity* (docs/parallelism.md), so
  :meth:`DifferentialOracle.compare_backends` requires exact equality of
  the routing matrix, the admitted rates, and every recorded utility.

The calibrated gradient configuration below is what the CI fuzz sweep
(``benchmarks/fuzz_oracle.py``) runs over the seed matrix of
:func:`repro.validate.strategies.oracle_seed_matrix`: adaptive stepping
keeps the small random instances monotone, and 6000 iterations lands the
final utility within a few percent of ``solve_concave`` (the remaining
gap is the eps-barrier headroom, not solver error).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gradient import GradientConfig
from repro.core.state import MODEL_CORE_ENV, MODEL_CORE_NAMES
from repro.validate.checks import solution_flows

__all__ = [
    "calibrated_gradient_config",
    "STALENESS_DRIFT_RTOL",
    "AlgorithmSpec",
    "OracleReport",
    "RebuildStepReport",
    "RebuildOracleReport",
    "DifferentialOracle",
]

# The documented drift bound of the process backend's bounded-staleness
# batched dispatch (``staleness > 0``): the relaxed run's final utility must
# stay within this relative tolerance of the synchronous serial run on the
# same instance.  Small staleness only delays the global ``dadf`` by a few
# iterations -- well inside the tolerance the paper's Section-5 asynchronous
# protocol grants -- so drift stays a fraction of the eps-barrier headroom
# (see docs/parallelism.md and benchmarks/bench_stale_marginals.py for the
# measurements behind the number).  Use
# ``DifferentialOracle(utility_rtol=STALENESS_DRIFT_RTOL).compare(...)``;
# ``compare_backends`` stays reserved for the bit-identity contract.
STALENESS_DRIFT_RTOL = 0.02


@contextmanager
def _model_core_pinned(core: Optional[str]):
    """Temporarily pin ``REPRO_MODEL_CORE`` for one side of a comparison."""
    if core is None:
        yield
        return
    if core not in MODEL_CORE_NAMES:
        raise ValueError(
            f"unknown model core {core!r}; expected one of {MODEL_CORE_NAMES}"
        )
    previous = os.environ.get(MODEL_CORE_ENV)
    os.environ[MODEL_CORE_ENV] = core
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(MODEL_CORE_ENV, None)
        else:
            os.environ[MODEL_CORE_ENV] = previous


def calibrated_gradient_config(max_iterations: int = 6000) -> GradientConfig:
    """The oracle's gradient configuration, tuned on the CI seed matrix."""
    return GradientConfig(
        eta=0.02, adaptive_eta=True, max_iterations=max_iterations,
        record_every=50,
    )


@dataclass(frozen=True)
class AlgorithmSpec:
    """One side of a differential comparison: method + config + backend.

    ``workers``/``backend``/``staleness`` are forwarded verbatim to
    :func:`repro.solve`, so a spec can pin any execution backend: the
    process pool (``workers=N``), the thread pool (``backend="thread"``),
    auto-selection (``workers="auto"``), or the relaxed batched mode
    (``staleness=K``).
    """

    method: str = "gradient"
    config: Any = None
    workers: Any = None
    backend: Any = None
    label: Optional[str] = None
    staleness: Optional[int] = None
    # execution model for method="distributed": None/"sync" phase barriers,
    # "async" the barrier-free event-driven engine
    execution: Optional[str] = None
    # pin the model core for this side ("array" / "object"); None inherits
    # the ambient REPRO_MODEL_CORE setting
    model_core: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        parts = []
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        if self.staleness:
            parts.append(f"staleness={self.staleness}")
        if self.execution is not None:
            parts.append(f"execution={self.execution}")
        if self.model_core is not None:
            parts.append(f"core={self.model_core}")
        return self.method + (f"[{', '.join(parts)}]" if parts else "")


@dataclass
class OracleReport:
    """The diff of two runs on the same workload."""

    label_a: str
    label_b: str
    utility_a: float
    utility_b: float
    utility_rel_diff: float
    admitted_max_diff: float
    flow_max_diff: Optional[float]  # None when either side exposes no flows
    trajectories_equal: Optional[bool]  # None when histories aren't comparable
    bit_identical: Optional[bool]  # None when representations aren't comparable
    utility_rtol: float
    admitted_atol: Optional[float]
    require_bit_identical: bool
    validation_passed: Optional[bool] = None  # set when validate= was on
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        ok = self.utility_rel_diff <= self.utility_rtol
        if self.admitted_atol is not None:
            ok = ok and self.admitted_max_diff <= self.admitted_atol
        if self.require_bit_identical:
            ok = ok and bool(self.bit_identical)
        if self.validation_passed is not None:
            ok = ok and self.validation_passed
        return ok

    def summary(self) -> str:
        verdict = "AGREE" if self.passed else "DISAGREE"
        lines = [
            f"Oracle {verdict}: {self.label_a} vs {self.label_b}",
            f"  utility: {self.utility_a:.6g} vs {self.utility_b:.6g} "
            f"(rel diff {self.utility_rel_diff:.3g}, rtol {self.utility_rtol:.3g})",
            f"  admitted rates: max |diff| {self.admitted_max_diff:.3g}",
        ]
        if self.flow_max_diff is not None:
            lines.append(f"  flows: max |diff| {self.flow_max_diff:.3g}")
        if self.bit_identical is not None:
            lines.append(
                "  bit-identical: " + ("yes" if self.bit_identical else "NO")
                + (" (required)" if self.require_bit_identical else "")
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        def _f(x: Optional[float]) -> Optional[float]:
            return None if x is None or not np.isfinite(x) else float(x)

        return {
            "schema": "repro.oracle/1",
            "passed": self.passed,
            "a": self.label_a,
            "b": self.label_b,
            "utility_a": _f(self.utility_a),
            "utility_b": _f(self.utility_b),
            "utility_rel_diff": _f(self.utility_rel_diff),
            "admitted_max_diff": _f(self.admitted_max_diff),
            "flow_max_diff": _f(self.flow_max_diff),
            "trajectories_equal": self.trajectories_equal,
            "bit_identical": self.bit_identical,
            "utility_rtol": _f(self.utility_rtol),
            "admitted_atol": _f(self.admitted_atol),
            "require_bit_identical": self.require_bit_identical,
            "validation_passed": self.validation_passed,
        }


@dataclass
class RebuildStepReport:
    """One event's worth of incremental-vs-from-scratch comparison."""

    event: str
    epoch: int
    structural: bool
    dropped_commodities: Tuple[str, ...]
    model_diffs: List[str]  # bit-level diffs incl. every vectorization plan
    routing_identical: bool
    routing_valid: bool

    @property
    def passed(self) -> bool:
        return not self.model_diffs and self.routing_identical and self.routing_valid


@dataclass
class RebuildOracleReport:
    """Replay verdict of a whole event sequence (``compare_rebuild``)."""

    steps: List[RebuildStepReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(step.passed for step in self.steps)

    def summary(self) -> str:
        verdict = "AGREE" if self.passed else "DISAGREE"
        lines = [
            f"Rebuild oracle {verdict}: {len(self.steps)} event(s) replayed"
        ]
        for step in self.steps:
            status = "ok" if step.passed else "FAIL"
            lines.append(
                f"  epoch {step.epoch} [{step.event}] {status}"
                + (f" -- {'; '.join(step.model_diffs)}" if step.model_diffs else "")
                + ("" if step.routing_identical else " -- routing differs")
                + ("" if step.routing_valid else " -- routing invalid")
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.rebuild_oracle/1",
            "passed": self.passed,
            "steps": [
                {
                    "event": s.event,
                    "epoch": s.epoch,
                    "structural": s.structural,
                    "dropped_commodities": list(s.dropped_commodities),
                    "model_diffs": list(s.model_diffs),
                    "routing_identical": s.routing_identical,
                    "routing_valid": s.routing_valid,
                    "passed": s.passed,
                }
                for s in self.steps
            ],
        }


class DifferentialOracle:
    """Runs two algorithm specs on one workload and diffs the outcomes.

    Parameters
    ----------
    utility_rtol:
        Enforced relative tolerance on the final utilities.  The default
        (0.1) covers the eps-barrier headroom of the penalised gradient
        methods against the unpenalised exact optimum.
    admitted_atol:
        Optional absolute tolerance on per-commodity admitted rates.
        ``None`` (default) reports the diff without enforcing it --
        degenerate optima make rate agreement a choice, not a law.
    """

    def __init__(
        self,
        utility_rtol: float = 0.1,
        admitted_atol: Optional[float] = None,
    ):
        self.utility_rtol = utility_rtol
        self.admitted_atol = admitted_atol

    def compare(
        self,
        stream_network,
        spec_a: AlgorithmSpec,
        spec_b: AlgorithmSpec,
        validate: Any = False,
        require_bit_identical: bool = False,
    ) -> OracleReport:
        """Solve the workload under both specs and diff the results.

        ``validate=`` is forwarded to :func:`repro.solve`, so each side can
        additionally be audited against the invariant catalog (the report's
        ``validation_passed`` then gates ``passed`` too).
        """
        from repro import solve  # runtime import: repro.validate loads first

        results = []
        for spec in (spec_a, spec_b):
            with _model_core_pinned(spec.model_core):
                results.append(
                    solve(
                        stream_network,
                        method=spec.method,
                        config=spec.config,
                        workers=spec.workers,
                        backend=spec.backend,
                        staleness=spec.staleness,
                        execution=spec.execution,
                        full_result=True,
                        validate=validate,
                    )
                )
        result_a, result_b = results
        sol_a, sol_b = result_a.solution, result_b.solution
        ext = sol_a.ext

        utility_a = float(sol_a.utility)
        utility_b = float(sol_b.utility)
        rel = abs(utility_a - utility_b) / max(1.0, abs(utility_a), abs(utility_b))
        admitted_diff = float(
            np.abs(np.asarray(sol_a.admitted) - np.asarray(sol_b.admitted)).max()
        )

        flows_a = solution_flows(ext, sol_a)
        flows_b = solution_flows(sol_b.ext, sol_b)
        flow_diff: Optional[float] = None
        if flows_a is not None and flows_b is not None:
            flow_diff = float(np.abs(flows_a - flows_b).max())

        utils_a = np.asarray(result_a.utilities)
        utils_b = np.asarray(result_b.utilities)
        trajectories_equal: Optional[bool] = None
        if utils_a.shape == utils_b.shape and utils_a.size > 1 and utils_b.size > 1:
            trajectories_equal = bool(np.array_equal(utils_a, utils_b))

        bit_identical: Optional[bool] = None
        if sol_a.routing is not None and sol_b.routing is not None:
            bit_identical = bool(
                np.array_equal(sol_a.routing.phi, sol_b.routing.phi)
                and np.array_equal(
                    np.asarray(sol_a.admitted), np.asarray(sol_b.admitted)
                )
                and (trajectories_equal is not False)
            )
        elif require_bit_identical:
            bit_identical = False  # nothing comparable at the bit level

        validation_passed: Optional[bool] = None
        if validate:
            reports = [getattr(r, "validation", None) for r in results]
            validation_passed = all(rep is not None and rep.passed for rep in reports)

        return OracleReport(
            label_a=spec_a.name,
            label_b=spec_b.name,
            utility_a=utility_a,
            utility_b=utility_b,
            utility_rel_diff=rel,
            admitted_max_diff=admitted_diff,
            flow_max_diff=flow_diff,
            trajectories_equal=trajectories_equal,
            bit_identical=bit_identical,
            utility_rtol=self.utility_rtol,
            admitted_atol=self.admitted_atol,
            require_bit_identical=require_bit_identical,
            validation_passed=validation_passed,
        )

    def compare_backends(
        self,
        stream_network,
        workers: Any = 2,
        method: str = "gradient",
        config: Any = None,
        validate: Any = False,
        backend: Any = None,
    ) -> OracleReport:
        """Serial vs a parallel backend on the same workload: must be bit-equal.

        This is the oracle form of the determinism contract in
        docs/parallelism.md -- the report fails unless the full routing
        matrix, the admitted rates, and every recorded utility agree
        exactly across backends.  ``backend`` picks the parallel side
        (default: the historical process pool; pass ``"thread"`` for the
        zero-copy thread backend).  The bit-identity requirement covers
        only synchronous schedules: for ``staleness > 0`` runs use
        :meth:`compare` with ``utility_rtol=STALENESS_DRIFT_RTOL`` instead.
        """
        spec_a = AlgorithmSpec(
            method=method, config=config, label=f"{method}[serial]"
        )
        spec_b = AlgorithmSpec(
            method=method, config=config, workers=workers, backend=backend
        )
        return self.compare(
            stream_network,
            spec_a,
            spec_b,
            validate=validate,
            require_bit_identical=True,
        )

    def compare_cores(
        self,
        stream_network,
        method: str = "gradient",
        config: Any = None,
        validate: Any = False,
        workers: Any = None,
        backend: Any = None,
    ) -> OracleReport:
        """Array core vs legacy object core on one workload: must be bit-equal.

        The sparse commodity-major core (:mod:`repro.core.state`) carries
        the same bit-identity contract as the parallel backends: every
        iterate, admitted rate, and recorded utility must match the object
        core's exactly.  This is the oracle form of that contract -- the
        scale ladder runs it on the 40- and 120-node reference workloads
        and the hypothesis sweep runs it across random sparse instances.
        """
        spec_array = AlgorithmSpec(
            method=method, config=config, workers=workers, backend=backend,
            model_core="array",
        )
        spec_object = AlgorithmSpec(
            method=method, config=config, workers=workers, backend=backend,
            model_core="object",
        )
        return self.compare(
            stream_network,
            spec_array,
            spec_object,
            validate=validate,
            require_bit_identical=True,
        )

    def compare_async(
        self,
        stream_network,
        epochs: int = 60,
        config: Any = None,
        staleness: Optional[int] = None,
        faults: Any = None,
        links: Any = None,
        seed: int = 0,
        fault_until_tick: Optional[int] = None,
        utility_rtol: Optional[float] = None,
    ) -> OracleReport:
        """Barrier-free async run vs the synchronous reference, drift-gated.

        The reference is the vectorized synchronous engine
        (:class:`~repro.core.gradient.GradientAlgorithm`, bit-identical to
        the phase-barrier distributed runner) driven for exactly ``epochs``
        iterations; the async side is a direct
        :class:`~repro.simulation.AsyncGradientRun` so the comparison can
        inject faults (``faults``/``links``/``seed``/``fault_until_tick``
        are forwarded to its :class:`~repro.simulation.FaultyChannel`).
        The enforced bound defaults to :data:`STALENESS_DRIFT_RTOL` -- the
        same contract the process backend's bounded-staleness mode
        carries, which is exactly the relaxation the async freshness rule
        re-implements at per-message granularity.
        """
        from dataclasses import replace as dc_replace

        from repro.core.gradient import GradientAlgorithm
        from repro.core.transform import build_extended_network
        from repro.simulation.async_engine import (
            DEFAULT_STALENESS,
            AsyncGradientRun,
        )

        cfg = config or calibrated_gradient_config(max_iterations=epochs)
        # both sides must execute the identical update map the same number
        # of times: pin the iteration budget, disable early convergence
        # stopping, and (adaptive stepping being a *global* controller a
        # barrier-free node cannot implement) freeze the step scale
        cfg = dc_replace(
            cfg, max_iterations=epochs, tolerance=0.0, adaptive_eta=False
        )
        k = staleness if staleness is not None else DEFAULT_STALENESS
        rtol = utility_rtol if utility_rtol is not None else STALENESS_DRIFT_RTOL

        ext = build_extended_network(stream_network)
        reference = GradientAlgorithm(ext, cfg).run()
        async_run = AsyncGradientRun(
            ext,
            cfg,
            staleness=k,
            faults=faults,
            links=links,
            seed=seed,
            fault_until_tick=fault_until_tick,
        )
        result = async_run.run(epochs, record_every=max(1, cfg.record_every))

        sol_a, sol_b = reference.solution, result.solution
        utility_a = float(sol_a.utility)
        utility_b = float(sol_b.utility)
        rel = abs(utility_a - utility_b) / max(1.0, abs(utility_a), abs(utility_b))
        admitted_diff = float(
            np.abs(np.asarray(sol_a.admitted) - np.asarray(sol_b.admitted)).max()
        )
        flows_a = solution_flows(ext, sol_a)
        flows_b = solution_flows(ext, sol_b)
        flow_diff: Optional[float] = None
        if flows_a is not None and flows_b is not None:
            flow_diff = float(np.abs(flows_a - flows_b).max())

        faulted = faults is not None or bool(links)
        label_b = f"distributed[execution=async, staleness={k}" + (
            f", faults seed={seed}]" if faulted else "]"
        )
        return OracleReport(
            label_a="gradient[sync-reference]",
            label_b=label_b,
            utility_a=utility_a,
            utility_b=utility_b,
            utility_rel_diff=rel,
            admitted_max_diff=admitted_diff,
            flow_max_diff=flow_diff,
            trajectories_equal=None,  # mixed-epoch snapshots aren't comparable
            bit_identical=None,
            utility_rtol=rtol,
            admitted_atol=self.admitted_atol,
            require_bit_identical=False,
            extras={"async_metrics": result.metrics.as_dict()},
        )

    def compare_rebuild(
        self,
        stream_network,
        events: Sequence[Any],
        gradient_steps: int = 0,
        config: Any = None,
        shed_on_event: bool = True,
    ) -> RebuildOracleReport:
        """Replay ``events`` through the delta path and from-scratch rebuilds.

        Two timelines advance in lockstep from the same initial instance:
        one through :func:`repro.core.delta.compile_event` /
        ``apply_delta`` (epoch-versioned, incremental), one through
        :func:`repro.online.rebuild.apply_event` + a full
        :func:`build_extended_network`.  After every event the two models
        must be **bit-identical** down to each vectorization plan
        (:func:`repro.core.delta.diff_extended_networks` with
        ``compare_plans=True``), the carried routing states must match
        exactly, and the routing must validate.  ``gradient_steps``
        iterations run after each event on both timelines, so any latent
        divergence in the spliced plans would surface as differing
        iterates.

        This is the extension-point contract promised in docs/validation.md
        for the online layer: the incremental path may be arbitrarily
        clever, but it must be indistinguishable from recompiling the
        world.
        """
        from repro.core.delta import (
            apply_delta,
            build_index_maps,
            carry_routing,
            compile_event,
            diff_extended_networks,
        )
        from repro.core.gradient import GradientAlgorithm
        from repro.core.routing import initial_routing, validate_routing
        from repro.core.transform import build_extended_network
        from repro.exceptions import RoutingError
        from repro.online.rebuild import apply_event, emergency_shed

        cfg = config or calibrated_gradient_config()

        ext_inc = build_extended_network(stream_network)
        # force every lazy plan so the splice path has something to carry
        _ = ext_inc.flow_plans, ext_inc.gamma_plans, ext_inc.merged_edge_list
        _ = ext_inc.merged_forward_plan, ext_inc.merged_reverse_plan
        _ = ext_inc.merged_gamma_plan
        net_ref = stream_network
        ext_ref = build_extended_network(stream_network)
        routing_inc = initial_routing(ext_inc)
        routing_ref = initial_routing(ext_ref)

        def run_steps(ext, routing):
            if gradient_steps <= 0:
                return routing
            algo = GradientAlgorithm(ext, cfg)
            for _ in range(gradient_steps):
                routing = algo.step(routing)
            return routing

        report = RebuildOracleReport()
        for event in events:
            diffs: List[str] = []

            # incremental timeline
            old_inc = ext_inc
            old_epoch = old_inc.epoch
            delta = compile_event(ext_inc, event)
            applied = apply_delta(ext_inc, delta)
            ext_inc = applied.ext
            if ext_inc.epoch != old_epoch + 1:
                diffs.append(
                    f"epoch did not advance by one: {old_epoch} -> {ext_inc.epoch}"
                )
            routing_inc = carry_routing(old_inc, routing_inc, ext_inc, applied.maps)

            # from-scratch timeline
            rebuilt = apply_event(net_ref, event)
            net_ref = rebuilt.network
            old_ref = ext_ref
            ext_ref = build_extended_network(net_ref, require_connected=False)
            routing_ref = carry_routing(
                old_ref, routing_ref, ext_ref, build_index_maps(old_ref, ext_ref)
            )

            if tuple(delta.dropped_commodities) != tuple(
                rebuilt.dropped_commodities
            ):
                diffs.append(
                    f"dropped commodities disagree: {delta.dropped_commodities} "
                    f"vs {tuple(rebuilt.dropped_commodities)}"
                )
            diffs.extend(
                diff_extended_networks(ext_inc, ext_ref, compare_plans=True)
            )

            if shed_on_event:
                routing_inc = emergency_shed(ext_inc, routing_inc)
                routing_ref = emergency_shed(ext_ref, routing_ref)
            routing_inc = run_steps(ext_inc, routing_inc)
            routing_ref = run_steps(ext_ref, routing_ref)

            routing_identical = bool(
                np.array_equal(routing_inc.phi, routing_ref.phi)
            )
            try:
                validate_routing(ext_inc, routing_inc)
                routing_valid = True
            except RoutingError:
                routing_valid = False

            report.steps.append(
                RebuildStepReport(
                    event=type(event).__name__,
                    epoch=ext_inc.epoch,
                    structural=applied.structural,
                    dropped_commodities=tuple(delta.dropped_commodities),
                    model_diffs=diffs,
                    routing_identical=routing_identical,
                    routing_valid=routing_valid,
                )
            )
        return report


def compare_cores(stream_network, **kwargs) -> OracleReport:
    """Module-level shorthand for :meth:`DifferentialOracle.compare_cores`."""
    return DifferentialOracle().compare_cores(stream_network, **kwargs)
