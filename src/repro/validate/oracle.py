"""Differential oracle: two solvers, one workload, a toleranced diff.

The highest-leverage guard for perf work on this codebase is not a unit
test but a *differential* one: run two algorithms (or the same algorithm
on two execution backends) on the same instance and compare admitted
rates, flows, and final utility.  Two comparison regimes:

* **cross-algorithm** (gradient vs the centralized LP / Frank-Wolfe
  optimum, or vs back-pressure): utilities must agree within a relative
  tolerance.  Admitted rates and flows are reported but not enforced by
  default -- optima can be degenerate, so different solvers legitimately
  reach the same utility through different rates.
* **cross-backend** (serial vs ``workers=N``): the parallel backend's
  contract is *bit-identity* (docs/parallelism.md), so
  :meth:`DifferentialOracle.compare_backends` requires exact equality of
  the routing matrix, the admitted rates, and every recorded utility.

The calibrated gradient configuration below is what the CI fuzz sweep
(``benchmarks/fuzz_oracle.py``) runs over the seed matrix of
:func:`repro.validate.strategies.oracle_seed_matrix`: adaptive stepping
keeps the small random instances monotone, and 6000 iterations lands the
final utility within a few percent of ``solve_concave`` (the remaining
gap is the eps-barrier headroom, not solver error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.gradient import GradientConfig
from repro.validate.checks import solution_flows

__all__ = [
    "calibrated_gradient_config",
    "AlgorithmSpec",
    "OracleReport",
    "DifferentialOracle",
]


def calibrated_gradient_config(max_iterations: int = 6000) -> GradientConfig:
    """The oracle's gradient configuration, tuned on the CI seed matrix."""
    return GradientConfig(
        eta=0.02, adaptive_eta=True, max_iterations=max_iterations,
        record_every=50,
    )


@dataclass(frozen=True)
class AlgorithmSpec:
    """One side of a differential comparison: method + config + backend."""

    method: str = "gradient"
    config: Any = None
    workers: Optional[int] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        suffix = f"[workers={self.workers}]" if self.workers else ""
        return self.method + suffix


@dataclass
class OracleReport:
    """The diff of two runs on the same workload."""

    label_a: str
    label_b: str
    utility_a: float
    utility_b: float
    utility_rel_diff: float
    admitted_max_diff: float
    flow_max_diff: Optional[float]  # None when either side exposes no flows
    trajectories_equal: Optional[bool]  # None when histories aren't comparable
    bit_identical: Optional[bool]  # None when representations aren't comparable
    utility_rtol: float
    admitted_atol: Optional[float]
    require_bit_identical: bool
    validation_passed: Optional[bool] = None  # set when validate= was on
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        ok = self.utility_rel_diff <= self.utility_rtol
        if self.admitted_atol is not None:
            ok = ok and self.admitted_max_diff <= self.admitted_atol
        if self.require_bit_identical:
            ok = ok and bool(self.bit_identical)
        if self.validation_passed is not None:
            ok = ok and self.validation_passed
        return ok

    def summary(self) -> str:
        verdict = "AGREE" if self.passed else "DISAGREE"
        lines = [
            f"Oracle {verdict}: {self.label_a} vs {self.label_b}",
            f"  utility: {self.utility_a:.6g} vs {self.utility_b:.6g} "
            f"(rel diff {self.utility_rel_diff:.3g}, rtol {self.utility_rtol:.3g})",
            f"  admitted rates: max |diff| {self.admitted_max_diff:.3g}",
        ]
        if self.flow_max_diff is not None:
            lines.append(f"  flows: max |diff| {self.flow_max_diff:.3g}")
        if self.bit_identical is not None:
            lines.append(
                "  bit-identical: " + ("yes" if self.bit_identical else "NO")
                + (" (required)" if self.require_bit_identical else "")
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        def _f(x: Optional[float]) -> Optional[float]:
            return None if x is None or not np.isfinite(x) else float(x)

        return {
            "schema": "repro.oracle/1",
            "passed": self.passed,
            "a": self.label_a,
            "b": self.label_b,
            "utility_a": _f(self.utility_a),
            "utility_b": _f(self.utility_b),
            "utility_rel_diff": _f(self.utility_rel_diff),
            "admitted_max_diff": _f(self.admitted_max_diff),
            "flow_max_diff": _f(self.flow_max_diff),
            "trajectories_equal": self.trajectories_equal,
            "bit_identical": self.bit_identical,
            "utility_rtol": _f(self.utility_rtol),
            "admitted_atol": _f(self.admitted_atol),
            "require_bit_identical": self.require_bit_identical,
            "validation_passed": self.validation_passed,
        }


class DifferentialOracle:
    """Runs two algorithm specs on one workload and diffs the outcomes.

    Parameters
    ----------
    utility_rtol:
        Enforced relative tolerance on the final utilities.  The default
        (0.1) covers the eps-barrier headroom of the penalised gradient
        methods against the unpenalised exact optimum.
    admitted_atol:
        Optional absolute tolerance on per-commodity admitted rates.
        ``None`` (default) reports the diff without enforcing it --
        degenerate optima make rate agreement a choice, not a law.
    """

    def __init__(
        self,
        utility_rtol: float = 0.1,
        admitted_atol: Optional[float] = None,
    ):
        self.utility_rtol = utility_rtol
        self.admitted_atol = admitted_atol

    def compare(
        self,
        stream_network,
        spec_a: AlgorithmSpec,
        spec_b: AlgorithmSpec,
        validate: Any = False,
        require_bit_identical: bool = False,
    ) -> OracleReport:
        """Solve the workload under both specs and diff the results.

        ``validate=`` is forwarded to :func:`repro.solve`, so each side can
        additionally be audited against the invariant catalog (the report's
        ``validation_passed`` then gates ``passed`` too).
        """
        from repro import solve  # runtime import: repro.validate loads first

        results = []
        for spec in (spec_a, spec_b):
            results.append(
                solve(
                    stream_network,
                    method=spec.method,
                    config=spec.config,
                    workers=spec.workers,
                    full_result=True,
                    validate=validate,
                )
            )
        result_a, result_b = results
        sol_a, sol_b = result_a.solution, result_b.solution
        ext = sol_a.ext

        utility_a = float(sol_a.utility)
        utility_b = float(sol_b.utility)
        rel = abs(utility_a - utility_b) / max(1.0, abs(utility_a), abs(utility_b))
        admitted_diff = float(
            np.abs(np.asarray(sol_a.admitted) - np.asarray(sol_b.admitted)).max()
        )

        flows_a = solution_flows(ext, sol_a)
        flows_b = solution_flows(sol_b.ext, sol_b)
        flow_diff: Optional[float] = None
        if flows_a is not None and flows_b is not None:
            flow_diff = float(np.abs(flows_a - flows_b).max())

        utils_a = np.asarray(result_a.utilities)
        utils_b = np.asarray(result_b.utilities)
        trajectories_equal: Optional[bool] = None
        if utils_a.shape == utils_b.shape and utils_a.size > 1 and utils_b.size > 1:
            trajectories_equal = bool(np.array_equal(utils_a, utils_b))

        bit_identical: Optional[bool] = None
        if sol_a.routing is not None and sol_b.routing is not None:
            bit_identical = bool(
                np.array_equal(sol_a.routing.phi, sol_b.routing.phi)
                and np.array_equal(
                    np.asarray(sol_a.admitted), np.asarray(sol_b.admitted)
                )
                and (trajectories_equal is not False)
            )
        elif require_bit_identical:
            bit_identical = False  # nothing comparable at the bit level

        validation_passed: Optional[bool] = None
        if validate:
            reports = [getattr(r, "validation", None) for r in results]
            validation_passed = all(rep is not None and rep.passed for rep in reports)

        return OracleReport(
            label_a=spec_a.name,
            label_b=spec_b.name,
            utility_a=utility_a,
            utility_b=utility_b,
            utility_rel_diff=rel,
            admitted_max_diff=admitted_diff,
            flow_max_diff=flow_diff,
            trajectories_equal=trajectories_equal,
            bit_identical=bit_identical,
            utility_rtol=self.utility_rtol,
            admitted_atol=self.admitted_atol,
            require_bit_identical=require_bit_identical,
            validation_passed=validation_passed,
        )

    def compare_backends(
        self,
        stream_network,
        workers: int = 2,
        method: str = "gradient",
        config: Any = None,
        validate: Any = False,
    ) -> OracleReport:
        """Serial vs process-parallel on the same workload: must be bit-equal.

        This is the oracle form of the determinism contract in
        docs/parallelism.md -- the report fails unless the full routing
        matrix, the admitted rates, and every recorded utility agree
        exactly across backends.
        """
        spec_a = AlgorithmSpec(
            method=method, config=config, label=f"{method}[serial]"
        )
        spec_b = AlgorithmSpec(method=method, config=config, workers=workers)
        return self.compare(
            stream_network,
            spec_a,
            spec_b,
            validate=validate,
            require_bit_identical=True,
        )
