"""Known-fault injection: the checker's self-test.

A validation subsystem that silently passes everything is worse than none,
so this module manufactures solutions with one *specific* defect each and
asserts the checker flags exactly the intended check.  The fault classes
cover the whole catalog:

=====================  ===============  =========================================
fault                  intended check   how it is injected
=====================  ===============  =========================================
``perturbed_flow``     conservation     scale the cached traffic at one interior
                                        node, breaking eq. (7) there
``overfilled_node``    capacity         route a congested diamond uniformly, so
                                        half the offered load hits 3-unit nodes
``broken_dummy_link``  dummy            bump the difference-link arc flow, so
                                        input + difference != lambda
``over_admission``     admission        claim admitted rates above the offer
``invalid_routing``    routing          drive one routing fraction negative
                                        (row sums kept at one)
``utility_regression`` monotonicity     rewrite one history record's utility
                                        to dip mid-run
``suboptimal_opt``     duality_gap      label the shed-everything start as an
                                        exact method, so the certificate must
                                        reject its huge gap
=====================  ===============  =========================================

Each fault is *isolated*: the doctored artifact stays consistent under
every other check, which pins the catalog's partition of responsibilities
(e.g. conservation excludes dummy sources precisely so dummy-link damage
is the dummy check's alone).  ``tests/test_validate.py`` asserts both
directions -- caught by the intended check, silent everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.gradient import GradientAlgorithm, GradientConfig, GradientResult
from repro.core.marginals import CostModel
from repro.core.optimal import solve_lp
from repro.core.result import OptimalResult
from repro.core.routing import initial_routing, uniform_routing
from repro.core.solution import Solution, build_solution
from repro.core.transform import ExtendedNetwork, build_extended_network
from repro.validate.checks import InvariantChecker, Tolerances
from repro.scenarios import diamond_network

__all__ = ["FAULT_NAMES", "SelfTestRecord", "inject_fault", "run_self_test"]


def _copy_solution(solution: Solution) -> Solution:
    return replace(solution, extras=dict(solution.extras))


def _wrap(solution: Solution) -> OptimalResult:
    """Dress a lone solution as a RunResult (single-point history)."""
    return OptimalResult(solution=solution)


@dataclass
class _Baseline:
    """Clean artifacts the injectors doctor."""

    ext: ExtendedNetwork
    congested_ext: ExtendedNetwork
    relaxed_ext: ExtendedNetwork
    gradient: GradientResult
    lp: OptimalResult


def _build_baseline() -> _Baseline:
    ext = build_extended_network(diamond_network())
    congested_ext = build_extended_network(
        diamond_network(
            top_capacity=3.0,
            bottom_capacity=3.0,
            source_capacity=100.0,
            max_rate=30.0,
        )
    )
    relaxed_ext = build_extended_network(
        diamond_network(
            top_capacity=1000.0,
            bottom_capacity=1000.0,
            source_capacity=1000.0,
            bandwidth=1000.0,
            max_rate=30.0,
        )
    )
    gradient = GradientAlgorithm(
        ext, GradientConfig(eta=0.05, max_iterations=400, record_every=20)
    ).run()
    lp = _wrap(solve_lp(ext))
    return _Baseline(
        ext=ext,
        congested_ext=congested_ext,
        relaxed_ext=relaxed_ext,
        gradient=gradient,
        lp=lp,
    )


# -- the injectors (each returns (ext, doctored RunResult)) ------------------------


def _perturbed_flow(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.ext
    solution = _copy_solution(base.gradient.solution)
    traffic = np.array(solution.extras["traffic"], dtype=float)
    usage = np.asarray(solution.extras["node_usage"], dtype=float)
    view = ext.commodities[0]
    # an interior node with traffic *and* capacity headroom, so the scaled
    # flow breaks conservation without also tripping the capacity check
    node = next(
        n
        for n in view.node_indices
        if n not in (view.dummy, view.sink)
        and traffic[0, n] > 1e-6
        and (not np.isfinite(ext.capacity[n]) or usage[n] * 1.6 < ext.capacity[n])
    )
    traffic[0, node] *= 1.5
    solution.extras["traffic"] = traffic
    return ext, _wrap(solution)


def _overfilled_node(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.congested_ext
    # uniform routing admits half of the 30-unit offer into 3-unit nodes:
    # a genuinely capacity-violating but otherwise self-consistent solution
    solution = build_solution(
        ext, uniform_routing(ext), CostModel(), method="uniform"
    )
    return ext, _wrap(solution)


def _broken_dummy_link(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.ext
    solution = _copy_solution(base.lp.solution)
    flows = np.array(solution.extras["arc_flows"], dtype=float)
    view = ext.commodities[0]
    # additive bump so the fault fires even at full admission (diff flow 0);
    # the difference link ends at the sink, so conservation stays silent
    flows[0, view.difference_edge] += 0.25 * view.max_rate
    solution.extras["arc_flows"] = flows
    return ext, _wrap(solution)


def _over_admission(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.ext
    solution = _copy_solution(base.gradient.solution)
    solution.admitted = ext.lam * 1.05
    return ext, _wrap(solution)


def _invalid_routing(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    # a roomy instance: moving mass between the paths cannot overfill
    # anything, so the negative fraction is the only defect
    ext = base.relaxed_ext
    routing = uniform_routing(ext)
    view = ext.commodities[0]
    node = next(
        n
        for n in view.node_indices
        if n not in (view.sink, view.dummy)
        and len(ext.commodity_out_edges[0][n]) >= 2
    )
    first, second = ext.commodity_out_edges[0][node][:2]
    # move mass so one fraction goes negative while the row still sums to 1
    shift = float(routing.phi[0, first]) + 0.02
    routing.phi[0, first] -= shift
    routing.phi[0, second] += shift
    # build_solution re-solves the flow balance under the doctored phi, so
    # the stored flows stay self-consistent and only the negativity is wrong
    solution = build_solution(ext, routing, CostModel(), method="doctored")
    return ext, _wrap(solution)


def _utility_regression(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.ext
    history = list(base.gradient.history)
    mid = len(history) // 2
    final = abs(history[-1].utility)
    history[mid] = replace(
        history[mid], utility=history[mid].utility - max(1.0, 0.1 * final)
    )
    result = GradientResult(
        solution=base.gradient.solution,
        history=history,
        converged=base.gradient.converged,
        iterations=base.gradient.iterations,
    )
    return ext, result


def _suboptimal_opt(base: _Baseline) -> Tuple[ExtendedNetwork, Any]:
    ext = base.ext
    # shed-everything is perfectly consistent -- but claiming it as an exact
    # optimum must trip the duality-gap certificate
    solution = build_solution(
        ext, initial_routing(ext), CostModel(), method="lp"
    )
    return ext, _wrap(solution)


_INJECTORS: Dict[str, Tuple[str, Callable[[_Baseline], Tuple[ExtendedNetwork, Any]]]]
_INJECTORS = {
    "perturbed_flow": ("conservation", _perturbed_flow),
    "overfilled_node": ("capacity", _overfilled_node),
    "broken_dummy_link": ("dummy", _broken_dummy_link),
    "over_admission": ("admission", _over_admission),
    "invalid_routing": ("routing", _invalid_routing),
    "utility_regression": ("monotonicity", _utility_regression),
    "suboptimal_opt": ("duality_gap", _suboptimal_opt),
}

FAULT_NAMES = tuple(_INJECTORS)


@dataclass(frozen=True)
class SelfTestRecord:
    """One fault class run through the checker."""

    fault: str
    expected_check: str
    flagged: Tuple[str, ...]

    @property
    def caught(self) -> bool:
        """The intended check fired."""
        return self.expected_check in self.flagged

    @property
    def isolated(self) -> bool:
        """Only the intended check fired (the designed partition holds)."""
        return self.flagged == (self.expected_check,)


def inject_fault(
    name: str, baseline: Optional[_Baseline] = None
) -> Tuple[ExtendedNetwork, Any, str]:
    """Build the doctored RunResult for one fault class.

    Returns ``(ext, result, expected_check)``.  Reuse ``baseline`` (from a
    prior call's internals) when injecting several faults to avoid
    re-running the clean gradient solve each time.
    """
    try:
        expected, injector = _INJECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; expected one of {FAULT_NAMES}"
        ) from None
    if baseline is None:
        baseline = _build_baseline()
    ext, result = injector(baseline)
    return ext, result, expected


def run_self_test(
    tolerances: Optional[Tolerances] = None, instrumentation=None
) -> List[SelfTestRecord]:
    """Inject every known fault class and record what the checker flagged.

    The subsystem is healthy iff every record is ``caught`` (CLI:
    ``python -m repro validate --self-test``).
    """
    baseline = _build_baseline()
    records: List[SelfTestRecord] = []
    for name in FAULT_NAMES:
        ext, result, expected = inject_fault(name, baseline)
        checker = InvariantChecker(
            ext, tolerances=tolerances, instrumentation=instrumentation
        )
        report = checker.check_result(result)
        records.append(
            SelfTestRecord(
                fault=name,
                expected_check=expected,
                flagged=report.failed_names,
            )
        )
    return records
