"""``repro.validate`` -- invariant certificates and the differential oracle.

The subsystem that answers "is this solution actually correct?" with
numbers instead of vibes:

* :class:`InvariantChecker` audits any :class:`~repro.core.solution.Solution`
  or ``RunResult`` against the paper's invariant catalog (conservation,
  capacity, admission, dummy-link accounting, monotonicity, and a
  duality-gap optimality certificate) and returns a structured
  :class:`ValidationReport`;
* :class:`DifferentialOracle` runs two algorithms -- or serial vs parallel
  backends -- on the same workload and diffs the outcomes under tolerances;
* :mod:`repro.validate.faults` injects known faults and asserts the checker
  catches each one (the ``repro validate --self-test`` CLI);
* :mod:`repro.validate.strategies` is the shared generator layer for the
  property tests and the CI fuzz sweep.

Wired through the stack as ``solve(..., validate=True | "strict")``, the
``repro validate`` CLI subcommand, and ``--validate`` on ``solve`` /
``profile``.  See docs/validation.md.
"""

from repro.validate.checks import (
    CHECK_NAMES,
    CheckResult,
    InvariantChecker,
    Tolerances,
    ValidationReport,
    attach_validation,
    solution_flows,
)
from repro.validate.faults import (
    FAULT_NAMES,
    SelfTestRecord,
    inject_fault,
    run_self_test,
)
from repro.validate.oracle import (
    STALENESS_DRIFT_RTOL,
    AlgorithmSpec,
    DifferentialOracle,
    OracleReport,
    RebuildOracleReport,
    RebuildStepReport,
    calibrated_gradient_config,
    compare_cores,
)

__all__ = [
    "CHECK_NAMES",
    "CheckResult",
    "InvariantChecker",
    "Tolerances",
    "ValidationReport",
    "attach_validation",
    "solution_flows",
    "FAULT_NAMES",
    "SelfTestRecord",
    "inject_fault",
    "run_self_test",
    "STALENESS_DRIFT_RTOL",
    "AlgorithmSpec",
    "DifferentialOracle",
    "OracleReport",
    "RebuildOracleReport",
    "RebuildStepReport",
    "calibrated_gradient_config",
    "compare_cores",
]
