"""Shared instance and routing generators for randomized testing.

One generator layer used by three consumers: the property tests in
``tests/test_properties.py`` (where these helpers originally lived
inline), the differential-oracle fuzz sweep (``benchmarks/fuzz_oracle.py``,
seed-matrixed in CI), and the self-test machinery of
:mod:`repro.validate.faults`.  Everything here is seed-deterministic --
same spec + same seed gives bit-identical instances (a property test pins
this) -- which is what makes the CI seed matrix reproducible.

The hypothesis strategies are created lazily so the library itself never
imports ``hypothesis`` (it is a test-only dependency).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.core.routing import RoutingState, uniform_routing, validate_routing
from repro.core.transform import ExtendedNetwork, build_extended_network
from repro.scenarios import (
    RandomNetworkSpec,
    diamond_network,
    figure1_network,
    random_stream_network,
    sparse_large_spec,
)

__all__ = [
    "NETWORK_FACTORIES",
    "SPARSE_SIZE_TIERS",
    "named_extended_network",
    "random_routing",
    "small_random_spec",
    "sparse_large_spec",
    "random_extended_network",
    "oracle_seed_matrix",
    "seeds",
    "network_names",
    "event_sequences",
    "sparse_instances",
    "delivery_schedules",
    "scenario_specs",
]

# the named paper instances randomized tests draw from
NETWORK_FACTORIES = {
    "diamond": diamond_network,
    "figure1": figure1_network,
}

_EXT_CACHE: Dict[str, ExtendedNetwork] = {}


def named_extended_network(name: str) -> ExtendedNetwork:
    """The extended network of a named paper instance (cached per process)."""
    if name not in _EXT_CACHE:
        try:
            factory = NETWORK_FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"unknown network {name!r}; expected one of "
                f"{sorted(NETWORK_FACTORIES)}"
            ) from None
        _EXT_CACHE[name] = build_extended_network(factory())
    return _EXT_CACHE[name]


def random_routing(
    ext: ExtendedNetwork, seed: int, interior: bool = True
) -> RoutingState:
    """A valid random routing decision on ``ext``, deterministic in ``seed``.

    ``interior=True`` biases every fraction strictly positive (adds 0.05
    to each weight before normalising), which keeps the routing away from
    the boundary of the simplex -- useful for tests that perturb it.
    """
    rng = np.random.default_rng(seed)
    routing = uniform_routing(ext)
    for view in ext.commodities:
        j = view.index
        for node in view.node_indices:
            if node == view.sink:
                continue
            out = ext.commodity_out_edges[j][node]
            if not out:
                continue
            weights = rng.random(len(out)) + (0.05 if interior else 0.0)
            if weights.sum() == 0:
                weights[0] = 1.0
            routing.phi[j, out] = weights / weights.sum()
    validate_routing(ext, routing)
    return routing


def small_random_spec(**overrides) -> RandomNetworkSpec:
    """The oracle's instance family: small enough for a CI seed matrix,
    deep enough (3-4 layers, 2 commodities) to exercise shared congestion."""
    params = dict(
        num_nodes=16,
        num_commodities=2,
        depth_range=(3, 4),
        layer_width_range=(2, 3),
    )
    params.update(overrides)
    return RandomNetworkSpec(**params)


def random_extended_network(
    seed: int, spec: Optional[RandomNetworkSpec] = None
) -> ExtendedNetwork:
    """Extended network of a random instance from :func:`small_random_spec`."""
    return build_extended_network(
        random_stream_network(spec if spec is not None else small_random_spec(),
                              seed=seed)
    )


# (num_nodes, num_commodities) rungs for the sparse large-J family.  At
# fixed density the allowed-cell count grows ~linearly in J while the dense
# cross product grows ~quadratically -- exactly the regime the
# commodity-major array core exists for.  Weighted toward the small tiers:
# hypothesis draws many examples per run, and the 400-node tier alone costs
# more than the rest of a profile's budget.
SPARSE_SIZE_TIERS = [(24, 4), (60, 8), (120, 16), (250, 32), (400, 64)]


def oracle_seed_matrix(env: Optional[str] = None) -> List[int]:
    """The CI seed matrix: ``FUZZ_SEEDS`` (comma/space separated) or 0-4.

    The fuzz sweep parametrizes over this so a CI matrix job can slice the
    seed set with one environment variable.
    """
    raw = env if env is not None else os.environ.get("FUZZ_SEEDS", "0,1,2,3,4")
    tokens = raw.replace(",", " ").split()
    if not tokens:
        raise ValueError("FUZZ_SEEDS resolved to an empty seed list")
    return [int(tok) for tok in tokens]


# -- hypothesis strategies (lazy: hypothesis is a test-only dependency) ------------


def seeds(max_value: int = 10**6):
    """``st.integers(0, max_value)`` -- the canonical seed strategy."""
    from hypothesis import strategies as st

    return st.integers(0, max_value)


def network_names():
    """Strategy over the named paper instances of :data:`NETWORK_FACTORIES`."""
    from hypothesis import strategies as st

    return st.sampled_from(sorted(NETWORK_FACTORIES))


def event_sequences(min_events: int = 1, max_events: int = 8):
    """Strategy over ``(stream_network, events)`` pairs for churn testing.

    Draws a random instance plus a replayable mixed event timeline from
    :func:`repro.scenarios.churn_trace`.  Because the churn generator
    shadow-validates every event, any drawn sequence can be applied --
    incrementally or from scratch -- without raising, so property tests can
    focus on the interesting assertion (bit-identity, epoch monotonicity,
    routing feasibility) instead of feasibility bookkeeping.  Shrinking
    reduces the event count and the seeds.
    """
    from hypothesis import strategies as st

    from repro.scenarios import ChurnSpec, churn_network, churn_trace

    @st.composite
    def _draw(draw):
        network_seed = draw(st.integers(0, 200))
        trace_seed = draw(st.integers(0, 10**6))
        num_events = draw(st.integers(min_events, max_events))
        network = churn_network(num_nodes=18, num_commodities=3, seed=network_seed)
        events = churn_trace(
            network, ChurnSpec(num_events=num_events), seed=trace_seed
        )
        return network, events

    return _draw()


def delivery_schedules(max_drop: float = 0.15):
    """Strategy over fault schedules for the barrier-free async engine.

    Draws a :class:`~repro.simulation.async_engine.FaultSpec` (delay
    window, drop probability, duplication, delay spikes), the channel seed
    that makes the schedule replayable, and the staleness bound -- the
    whole parameter space of "any delivery schedule with eventual
    delivery".  ``drop`` stays strictly below 1 (here ``max_drop``), which
    *is* the eventual-delivery precondition: the property test asserts
    that under every drawn schedule the async run still converges within
    the :data:`~repro.validate.oracle.STALENESS_DRIFT_RTOL` drift bound of
    the synchronous reference.  Shrinking walks toward the perfect channel
    (no drop, no duplication, unit delay), so a failing schedule minimizes
    to the gentlest fault mix that still breaks the bound.
    """
    from hypothesis import strategies as st

    from repro.simulation.async_engine import FaultSpec

    @st.composite
    def _draw(draw):
        delay_min = draw(st.integers(1, 3))
        delay_max = draw(st.integers(delay_min, delay_min + 4))
        spec = FaultSpec(
            drop=draw(
                st.floats(0.0, max_drop, allow_nan=False, allow_infinity=False)
            ),
            duplicate=draw(
                st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False)
            ),
            delay_min=delay_min,
            delay_max=delay_max,
            spike_prob=draw(
                st.floats(0.0, 0.1, allow_nan=False, allow_infinity=False)
            ),
            spike_delay=draw(st.integers(0, 12)),
        )
        seed = draw(st.integers(0, 10**6))
        staleness = draw(st.integers(1, 4))
        return spec, seed, staleness

    return _draw()


def scenario_specs(compiled: bool = False):
    """Strategy over declarative :class:`repro.scenarios.ScenarioSpec` draws.

    Composes a small random topology with one of the demand shapes
    (churn / diurnal / flash-crowd) and optionally a correlated-failure
    burst, plus a drawn seed -- the whole surface of
    :meth:`~repro.scenarios.ScenarioSpec.compile`.  With ``compiled=True``
    the strategy returns ``(spec, CompiledScenario)`` pairs so property
    tests skip the (deterministic but non-trivial) compile cost on
    shrunk re-draws.  Shrinking walks toward the quiet scenario: tiny
    topology, no failures, short timelines.
    """
    from hypothesis import strategies as st

    from repro.scenarios import (
        DemandSpec,
        FailureSpec,
        ScenarioSpec,
        TopologySpec,
    )

    @st.composite
    def _draw(draw):
        topology = TopologySpec(
            "churn-random",
            {
                "num_nodes": draw(st.integers(12, 24)),
                "num_commodities": draw(st.integers(2, 4)),
            },
        )
        demand_kind = draw(st.sampled_from(["churn", "diurnal", "flash-crowd"]))
        if demand_kind == "churn":
            demand = DemandSpec(
                "churn", {"num_events": draw(st.integers(1, 8))}
            )
        elif demand_kind == "diurnal":
            demand = DemandSpec(
                "diurnal",
                {"num_samples": draw(st.integers(1, 6)), "iteration_gap": 8},
            )
        else:
            samples = draw(st.integers(2, 6))
            demand = DemandSpec(
                "flash-crowd",
                {
                    "num_samples": samples,
                    "spike_sample": draw(st.integers(0, samples - 1)),
                    "iteration_gap": 8,
                },
            )
        failures = FailureSpec()
        if draw(st.booleans()):
            failures = FailureSpec(
                "correlated",
                {
                    "num_bursts": draw(st.integers(1, 2)),
                    "cluster_size": draw(st.integers(1, 3)),
                },
            )
        spec = ScenarioSpec(
            name="drawn",
            topology=topology,
            demand=demand,
            failures=failures,
            seed=draw(st.integers(0, 10**4)),
        )
        return (spec, spec.compile()) if compiled else spec

    return _draw()


def sparse_instances(max_tier: Optional[int] = None):
    """Strategy over sparse large-J stream networks (plus the draw's seed).

    Yields ``(network, seed, tier)`` tuples from :data:`SPARSE_SIZE_TIERS`,
    heavily weighted toward the small tiers so the default profiles stay
    fast; the 250/400-node tiers only appear under ``HYPOTHESIS_PROFILE=dev``
    (the tests cap ``max_tier`` otherwise).  Deterministic in the drawn
    seed, so every failure shrinks to a replayable ``(tier, seed)`` pair.
    """
    from hypothesis import strategies as st

    tiers = SPARSE_SIZE_TIERS[: max_tier if max_tier is not None else None]

    @st.composite
    def _draw(draw):
        # index 0 is ~8x as likely as the last tier
        weights = [2 ** (len(tiers) - 1 - i) for i in range(len(tiers))]
        flat = [i for i, w in enumerate(weights) for _ in range(w)]
        tier = tiers[draw(st.sampled_from(flat))]
        seed = draw(st.integers(0, 10**4))
        spec = sparse_large_spec(*tier)
        return random_stream_network(spec, seed=seed), seed, tier

    return _draw()
