"""The invariant catalog: one authoritative audit of any solution.

The paper's correctness story rests on a handful of structural invariants;
before this module they were scattered across ``feasibility_report`` and
ad-hoc test asserts.  :class:`InvariantChecker` collects them behind one
call and returns a :class:`ValidationReport` with a numeric residual and a
pass/fail verdict per check:

``routing``
    The routing decision itself (Section 4): ``phi`` non-negative,
    restricted to the commodity DAGs, rows summing to one at non-sink
    nodes.  Skipped for arc-flow solutions that carry no ``phi``.
``conservation``
    Gain-aware flow conservation (Property 1 / eq. (7)) at every interior
    node: out-flow equals beta-weighted in-flow.  Dummy sources are
    excluded here -- their balance *is* the ``dummy`` check -- and sinks
    absorb by construction.
``capacity``
    Node budgets on the extended graph (eq. (6)), covering both processing
    nodes and the bandwidth nodes that stand in for physical links.
``admission``
    Admission bounds ``0 <= a_j <= lambda_j`` on the solution's claimed
    admitted rates.
``dummy``
    Dummy-link accounting at each super-source: flow on the input link
    plus flow on the difference link equals the offered load ``lambda_j``
    (the construction that turns admission control into routing).
``monotonicity``
    The utility trajectory never decreases along the iterate history
    (Theorem 1's descent property, up to a small relative tolerance that
    absorbs float noise under adaptive stepping).
``duality_gap``
    A certificate of optimality from marginal utilities: linearise the
    objective at the solution's admitted rates (weights ``U_j'(a_j)``) and
    maximise it over the arc-flow polytope.  The gap
    ``sum_j U_j'(a_j) (a*_j - a_j)`` upper-bounds the true suboptimality
    (concavity), vanishes at the optimum, and is exactly the Frank-Wolfe
    gap of :mod:`repro.solver.frankwolfe`.  Enforced for the exact methods
    (``lp``, ``frank-wolfe``); informational for the penalised iterative
    methods, which keep barrier headroom and legitimately sit a few
    percent below the unpenalised optimum.

Residuals are relative (scaled by ``max(1, .)`` of the natural magnitude)
so one :class:`Tolerances` object works across instance sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.routing import commodity_edge_flows, solve_traffic
from repro.core.solution import Solution
from repro.core.transform import ExtendedNetwork
from repro.exceptions import ValidationError
from repro.obs.instrumentation import NULL_INSTRUMENTATION

__all__ = [
    "CHECK_NAMES",
    "Tolerances",
    "CheckResult",
    "ValidationReport",
    "InvariantChecker",
    "solution_flows",
    "attach_validation",
]

CHECK_NAMES = (
    "routing",
    "conservation",
    "capacity",
    "admission",
    "dummy",
    "monotonicity",
    "duality_gap",
)

# methods whose duality gap must vanish (they claim the true optimum);
# everything else gets the informational tolerance
EXACT_METHODS = frozenset({"lp", "frank-wolfe"})


@dataclass(frozen=True)
class Tolerances:
    """Per-check relative tolerances (see the module docstring for units)."""

    routing: float = 1e-7
    conservation: float = 1e-8
    capacity: float = 1e-9
    admission: float = 1e-9
    dummy: float = 1e-8
    monotonicity: float = 1e-4
    duality_gap: float = 1e-6
    # penalised methods keep barrier headroom, so their gap is a few percent
    # by design; report it, never fail on it
    duality_gap_iterative: float = float("inf")

    def for_check(self, name: str, method: str) -> float:
        if name == "duality_gap" and method not in EXACT_METHODS:
            return self.duality_gap_iterative
        return getattr(self, name)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check."""

    name: str
    passed: bool
    residual: float  # relative; NaN when skipped
    tolerance: float
    detail: str = ""
    skipped: bool = False

    def to_dict(self) -> Dict[str, Any]:
        def _finite(x: float) -> Optional[float]:
            x = float(x)
            return x if np.isfinite(x) else None

        return {
            "name": self.name,
            "passed": self.passed,
            "skipped": self.skipped,
            "residual": _finite(self.residual),
            "tolerance": _finite(self.tolerance),
            "detail": self.detail,
        }


@dataclass
class ValidationReport:
    """Structured audit of one solution/run against the invariant catalog."""

    method: str
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.passed]

    @property
    def failed_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.failures)

    def check(self, name: str) -> CheckResult:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no check named {name!r} in this report")

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        lines = [f"Validation {verdict} ({self.method})"]
        width = max(len(c.name) for c in self.checks) if self.checks else 0
        for c in self.checks:
            if c.skipped:
                status = "skip"
                value = c.detail or "not applicable"
            else:
                status = "ok" if c.passed else "FAIL"
                value = f"residual {c.residual:.3g} (tol {c.tolerance:.3g})"
                if c.detail:
                    value += f"  [{c.detail}]"
            lines.append(f"  {c.name.ljust(width)}  {status:4s}  {value}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.validation/1",
            "method": self.method,
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }

    def raise_for_failures(self) -> None:
        """Raise :class:`ValidationError` if any check failed."""
        if self.passed:
            return
        parts = [
            f"{c.name} (residual {c.residual:.3g} > tol {c.tolerance:.3g})"
            for c in self.failures
        ]
        raise ValidationError(
            f"solution ({self.method}) violates {len(parts)} invariant(s): "
            + "; ".join(parts)
        )


def solution_flows(ext: ExtendedNetwork, solution: Solution) -> Optional[np.ndarray]:
    """The solution's *claimed* per-commodity edge flows ``(J, E)``.

    Routing-based solutions derive flows from ``phi`` and the cached
    traffic (the cache is preferred so the checker audits what the solver
    actually reported, not a fresh recomputation); arc-flow solutions carry
    them in ``extras["arc_flows"]``.  Returns ``None`` when the solution
    stores neither (the back-pressure baseline reports only rates).
    """
    if solution.routing is not None:
        traffic = solution.extras.get("traffic")
        if traffic is None:
            traffic = solve_traffic(ext, solution.routing)
        return commodity_edge_flows(
            ext, solution.routing, np.asarray(traffic, dtype=float)
        )
    arc = solution.extras.get("arc_flows")
    if arc is not None:
        return np.asarray(arc, dtype=float)
    return None


def _skip(name: str, detail: str) -> CheckResult:
    return CheckResult(
        name=name,
        passed=True,
        residual=float("nan"),
        tolerance=float("nan"),
        detail=detail,
        skipped=True,
    )


class InvariantChecker:
    """Audits a :class:`Solution` or ``RunResult`` against the catalog.

    Parameters
    ----------
    ext:
        The extended network the solution lives on.
    tolerances:
        Optional :class:`Tolerances` override.
    checks:
        Optional subset of :data:`CHECK_NAMES` to run (default: all).
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`; bumps the
        ``validate.checks_run`` / ``validate.checks_failed`` counters and
        records a ``validation`` event per audit.
    """

    def __init__(
        self,
        ext: ExtendedNetwork,
        tolerances: Optional[Tolerances] = None,
        checks: Optional[Iterable[str]] = None,
        instrumentation=None,
    ):
        self.ext = ext
        self.tolerances = tolerances if tolerances is not None else Tolerances()
        names = tuple(checks) if checks is not None else CHECK_NAMES
        unknown = sorted(set(names) - set(CHECK_NAMES))
        if unknown:
            raise ValueError(
                f"unknown check name(s) {unknown}; expected a subset of "
                f"{CHECK_NAMES}"
            )
        self.check_names = names
        self.inst = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._problem = None  # lazy arc-flow polytope for the duality check

    # -- entry points --------------------------------------------------------------

    def check_result(self, result: Any) -> ValidationReport:
        """Audit a ``RunResult``: its solution plus the iterate history."""
        utilities: Optional[np.ndarray] = None
        history = getattr(result, "history", None)
        if history is not None and len(history) >= 2:
            utilities = np.asarray(result.utilities, dtype=float)
        return self.check_solution(result.solution, utilities=utilities)

    def check_solution(
        self, solution: Solution, utilities: Optional[Sequence[float]] = None
    ) -> ValidationReport:
        """Audit one solution (``utilities`` optionally supplies a history)."""
        flows = solution_flows(self.ext, solution)
        report = ValidationReport(method=solution.method)
        for name in self.check_names:
            if name == "routing":
                result = self._check_routing(solution)
            elif name == "conservation":
                result = self._check_conservation(flows)
            elif name == "capacity":
                result = self._check_capacity(flows)
            elif name == "admission":
                result = self._check_admission(solution)
            elif name == "dummy":
                result = self._check_dummy(flows)
            elif name == "monotonicity":
                result = self._check_monotonicity(solution, utilities)
            else:  # duality_gap
                result = self._check_duality_gap(solution)
            report.checks.append(result)
        self._observe(report)
        return report

    def _observe(self, report: ValidationReport) -> None:
        inst = self.inst
        if not inst.enabled:
            return
        run = sum(1 for c in report.checks if not c.skipped)
        failed = len(report.failures)
        inst.count("validate.checks_run", run)
        inst.count("validate.checks_failed", failed)
        inst.event(
            "validation",
            method=report.method,
            passed=report.passed,
            failed=list(report.failed_names),
        )

    # -- individual checks ---------------------------------------------------------

    def _check_routing(self, solution: Solution) -> CheckResult:
        routing = solution.routing
        tol = self.tolerances.routing
        if routing is None:
            return _skip("routing", "solution carries no routing state")
        ext = self.ext
        phi = routing.phi
        if phi.shape != (ext.num_commodities, ext.num_edges):
            return CheckResult(
                name="routing",
                passed=False,
                residual=float("inf"),
                tolerance=tol,
                detail=f"phi has shape {phi.shape}, expected "
                f"{(ext.num_commodities, ext.num_edges)}",
            )
        negative = max(0.0, float(-phi.min())) if phi.size else 0.0
        off_graph = float(np.abs(phi * ~ext.allowed).max()) if phi.size else 0.0
        row_residual = 0.0
        worst = ""
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                out = ext.commodity_out_edges[j][node]
                if not out:
                    continue
                gap = abs(float(phi[j, out].sum()) - 1.0)
                if gap > row_residual:
                    row_residual = gap
                    worst = (
                        f"row sum at {ext.nodes[node].name!r} "
                        f"({view.name!r}) off by {gap:.3g}"
                    )
        residual = max(negative, off_graph, row_residual)
        detail = ""
        if residual > tol:
            if negative >= max(off_graph, row_residual):
                detail = f"negative fraction {-negative:.3g}"
            elif off_graph >= row_residual:
                detail = f"off-graph fraction {off_graph:.3g}"
            else:
                detail = worst
        return CheckResult(
            name="routing",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_conservation(self, flows: Optional[np.ndarray]) -> CheckResult:
        if flows is None:
            return _skip("conservation", "solution carries no flow representation")
        ext = self.ext
        tol = self.tolerances.conservation
        num_c, num_v = ext.num_commodities, ext.num_nodes
        out_sum = np.zeros((num_c, num_v))
        in_sum = np.zeros((num_c, num_v))
        for j in range(num_c):
            np.add.at(out_sum[j], ext.edge_tail, flows[j])
            np.add.at(in_sum[j], ext.edge_head, flows[j] * ext.gain[j])
        imbalance = out_sum - in_sum
        # sinks absorb; the dummy sources' balance is the `dummy` check
        rows = np.arange(num_c)
        imbalance[rows, [v.sink for v in ext.commodities]] = 0.0
        imbalance[rows, ext.commodity_dummies] = 0.0
        scaled = np.abs(imbalance) / np.maximum(1.0, ext.lam)[:, None]
        residual = float(scaled.max()) if scaled.size else 0.0
        detail = ""
        if residual > tol:
            j, node = np.unravel_index(int(scaled.argmax()), scaled.shape)
            detail = (
                f"imbalance {imbalance[j, node]:.3g} at "
                f"{ext.nodes[node].name!r} ({ext.commodities[j].name!r})"
            )
        return CheckResult(
            name="conservation",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_capacity(self, flows: Optional[np.ndarray]) -> CheckResult:
        if flows is None:
            return _skip("capacity", "solution carries no flow representation")
        ext = self.ext
        tol = self.tolerances.capacity
        edge_usage = np.add.reduce(flows * ext.cost, axis=0)
        node_usage = np.zeros(ext.num_nodes)
        np.add.at(node_usage, ext.edge_tail, edge_usage)
        finite = np.isfinite(ext.capacity)
        over = np.full(ext.num_nodes, -np.inf)
        over[finite] = (node_usage[finite] - ext.capacity[finite]) / np.maximum(
            1.0, ext.capacity[finite]
        )
        residual = max(0.0, float(over.max())) if finite.any() else 0.0
        detail = ""
        if residual > tol:
            node = int(over.argmax())
            detail = (
                f"{ext.nodes[node].name!r} uses {node_usage[node]:.4g} "
                f"of {ext.capacity[node]:.4g}"
            )
        return CheckResult(
            name="capacity",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_admission(self, solution: Solution) -> CheckResult:
        ext = self.ext
        tol = self.tolerances.admission
        admitted = np.asarray(solution.admitted, dtype=float)
        scale = np.maximum(1.0, ext.lam)
        violation = np.maximum(admitted - ext.lam, -admitted) / scale
        residual = max(0.0, float(violation.max())) if violation.size else 0.0
        detail = ""
        if residual > tol:
            j = int(violation.argmax())
            detail = (
                f"{ext.commodities[j].name!r} admits {admitted[j]:.4g} "
                f"of offered {ext.lam[j]:.4g}"
            )
        return CheckResult(
            name="admission",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_dummy(self, flows: Optional[np.ndarray]) -> CheckResult:
        if flows is None:
            return _skip("dummy", "solution carries no flow representation")
        ext = self.ext
        tol = self.tolerances.dummy
        rows = np.arange(ext.num_commodities)
        input_flow = flows[rows, ext.commodity_input_edges]
        difference_flow = flows[rows, ext.commodity_difference_edges]
        gap = np.abs(input_flow + difference_flow - ext.lam) / np.maximum(
            1.0, ext.lam
        )
        residual = float(gap.max()) if gap.size else 0.0
        detail = ""
        if residual > tol:
            j = int(gap.argmax())
            detail = (
                f"{ext.commodities[j].name!r}: input {input_flow[j]:.4g} + "
                f"difference {difference_flow[j]:.4g} != lambda {ext.lam[j]:.4g}"
            )
        return CheckResult(
            name="dummy",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_monotonicity(
        self, solution: Solution, utilities: Optional[Sequence[float]]
    ) -> CheckResult:
        if utilities is None or len(utilities) < 2:
            return _skip("monotonicity", "no iterate history")
        tol = self.tolerances.monotonicity
        u = np.asarray(utilities, dtype=float)
        drops = np.maximum(0.0, u[:-1] - u[1:])
        worst = int(drops.argmax())
        residual = float(drops[worst]) / max(1.0, abs(float(u[-1])))
        detail = ""
        if residual > tol:
            detail = (
                f"utility drops by {drops[worst]:.4g} between records "
                f"{worst} and {worst + 1}"
            )
        return CheckResult(
            name="monotonicity",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )

    def _check_duality_gap(self, solution: Solution) -> CheckResult:
        ext = self.ext
        tol = self.tolerances.for_check("duality_gap", solution.method)
        admitted = np.clip(np.asarray(solution.admitted, dtype=float), 0.0, ext.lam)
        weights = np.array(
            [
                float(view.utility.derivative(float(admitted[view.index])))
                for view in ext.commodities
            ]
        )
        if not np.all(np.isfinite(weights)):
            return _skip("duality_gap", "non-finite marginal utility at a_j")
        from scipy.optimize import linprog

        if self._problem is None:
            from repro.core.optimal import build_arc_flow_problem

            self._problem = build_arc_flow_problem(ext)
        problem = self._problem
        objective = np.zeros(problem.num_vars)
        objective[problem.admitted_columns] = -weights  # linprog minimises
        lp = linprog(
            c=objective,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            bounds=(0, None),
            method="highs",
        )
        if not lp.success:
            return _skip("duality_gap", f"certificate LP failed: {lp.message}")
        best = np.minimum(np.asarray(lp.x)[problem.admitted_columns], ext.lam)
        gap = float(weights @ (best - admitted))
        utility = float(
            sum(
                view.utility.value(float(admitted[view.index]))
                for view in ext.commodities
            )
        )
        residual = max(0.0, gap) / max(1.0, abs(utility))
        enforced = solution.method in EXACT_METHODS
        detail = "" if enforced else "informational for penalised methods"
        if residual > tol:
            detail = f"gap {gap:.4g} above utility {utility:.4g}"
        return CheckResult(
            name="duality_gap",
            passed=residual <= tol,
            residual=residual,
            tolerance=tol,
            detail=detail,
        )


def attach_validation(
    result: Any,
    ext: ExtendedNetwork,
    mode: Any = True,
    tolerances: Optional[Tolerances] = None,
    instrumentation=None,
) -> Optional[ValidationReport]:
    """Audit ``result`` and attach the report (the ``validate=`` plumbing).

    ``mode`` is the user-facing flag: ``False``/``None`` do nothing,
    ``True`` attaches the report to ``result.validation`` (and the
    solution's ``extras``), ``"strict"`` additionally raises
    :class:`~repro.exceptions.ValidationError` when any check fails.
    """
    if mode is False or mode is None:
        return None
    if mode not in (True, "strict"):
        raise ValueError(
            f"validate= must be False, True, or 'strict'; got {mode!r}"
        )
    checker = InvariantChecker(
        ext, tolerances=tolerances, instrumentation=instrumentation
    )
    report = checker.check_result(result)
    result.validation = report
    solution = getattr(result, "solution", None)
    if solution is not None:
        solution.extras["validation"] = report
    if mode == "strict":
        report.raise_for_failures()
    return report


# keep Tolerances fields and CHECK_NAMES in lockstep (import-time guard)
assert {f.name for f in fields(Tolerances)} == set(CHECK_NAMES) | {
    "duality_gap_iterative"
}
