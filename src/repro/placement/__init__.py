"""Operator placement: embed task chains onto the physical network.

Fills the gap the paper leaves open ("we assume the task to server
assignment is given", citing Srivastava et al. [14]) with an LP-scored
greedy/local-search placer.
"""

from repro.placement.greedy import PlacementResult, feasible_hosts, place_task_chain

__all__ = ["PlacementResult", "feasible_hosts", "place_task_chain"]
