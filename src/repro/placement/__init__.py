"""Operator placement: embed task chains onto the physical network.

Fills the gap the paper leaves open ("we assume the task to server
assignment is given", citing Srivastava et al. [14]) with an LP-scored
greedy/local-search placer (:func:`place_task_chain`) and a joint
placement + routing + admission loop (:class:`JointPlacementLoop`) that
alternates placement proposals with warm gradient re-optimization on the
delta core.
"""

from repro.placement.greedy import PlacementResult, feasible_hosts, place_task_chain
from repro.placement.joint import (
    JointPlacementLoop,
    JointPlacementReport,
    PlacementMove,
)

__all__ = [
    "PlacementResult",
    "feasible_hosts",
    "place_task_chain",
    "JointPlacementLoop",
    "JointPlacementReport",
    "PlacementMove",
]
