"""The joint placement loop: co-optimize placement, routing, and admission.

The paper treats task placement as given and optimizes routing + admission
on top; :func:`repro.placement.place_task_chain` places one chain greedily.
This module closes the loop between the two, in the spirit of Benoit et
al.'s in-network operator placement and Eidenbenz & Locher's task
allocation: placement proposals and gradient re-optimization *alternate*,
so each placement decision is scored against the routing/admission
optimum it actually induces.

Protocol (:meth:`JointPlacementLoop.run`):

1. **Routing-only baseline.**  Every stream request is placed by the
   greedy capacity seed alone (``max_moves=0`` -- no LP-guided search),
   then the gradient algorithm optimizes routing + admission to
   convergence.  This is the "placement given, optimize the rest" regime
   the paper assumes.
2. **Joint rounds.**  Repeatedly revisit each stream: remove it from the
   system, re-place it with the LP-scored local search of
   :func:`~repro.placement.place_task_chain` against the *current*
   background load, and accept the move iff it raises the LP-optimal
   total utility.  Accepted moves are applied to the live extended
   network through the epoch-versioned delta core
   (:func:`~repro.core.delta.compile_event` departure + arrival), the
   routing is carried across the splice
   (:func:`~repro.core.delta.carry_routing`), and the gradient algorithm
   re-optimizes from the warm state.
3. **Report.**  TAB-PLACEMENT: routing-only vs joint utility, both as the
   LP bound (monotone by construction: the loop starts from the baseline
   placement and only accepts LP improvements, so ``joint_lp >=
   routing_only_lp`` always) and as the gradient-achieved utility.

Everything is deterministic: greedy seeding, local search, and the
gradient iteration contain no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.commodity import StreamNetwork
from repro.core.delta import apply_delta, carry_routing, compile_event
from repro.core.gradient import GradientAlgorithm, GradientConfig
from repro.core.network import PhysicalNetwork
from repro.core.optimal import solve_lp
from repro.core.transform import build_extended_network
from repro.exceptions import ModelError
from repro.online.events import CommodityArrival, CommodityDeparture
from repro.placement.greedy import place_task_chain
from repro.scenarios import ScenarioSpec, scenario
from repro.scenarios.topologies import (
    FatTreeSpec,
    IspSpec,
    StreamRequest,
    fat_tree_requests,
    isp_requests,
)

__all__ = ["JointPlacementLoop", "JointPlacementReport", "PlacementMove"]


@dataclass(frozen=True)
class PlacementMove:
    """One accepted re-placement: which stream moved, and what it bought."""

    round_index: int
    stream: str
    lp_before: float
    lp_after: float
    achieved_utility: float  # gradient utility after the warm re-optimization
    warm_iterations: int  # iterations the warm re-optimization needed

    @property
    def lp_gain(self) -> float:
        return self.lp_after - self.lp_before


@dataclass
class JointPlacementReport:
    """TAB-PLACEMENT: joint placement+routing vs routing-only utility."""

    routing_only_lp: float
    routing_only_utility: float
    routing_only_iterations: int
    joint_lp: float
    joint_utility: float
    moves: List[PlacementMove] = field(default_factory=list)
    placements: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)
    rounds_run: int = 0

    @property
    def lp_ratio(self) -> float:
        """Joint / routing-only LP utility (>= 1.0 by construction)."""
        if self.routing_only_lp <= 0:
            return 1.0 if self.joint_lp <= self.routing_only_lp else float("inf")
        return self.joint_lp / self.routing_only_lp

    @property
    def achieved_ratio(self) -> float:
        """Joint / routing-only gradient-achieved utility."""
        if self.routing_only_utility <= 0:
            return 1.0
        return self.joint_utility / self.routing_only_utility

    def to_dict(self) -> Dict[str, Any]:
        return {
            "routing_only_lp": self.routing_only_lp,
            "routing_only_utility": self.routing_only_utility,
            "joint_lp": self.joint_lp,
            "joint_utility": self.joint_utility,
            "lp_ratio": self.lp_ratio,
            "achieved_ratio": self.achieved_ratio,
            "moves": len(self.moves),
            "rounds_run": self.rounds_run,
        }


class JointPlacementLoop:
    """Alternate greedy placement proposals with warm gradient re-solves.

    Parameters
    ----------
    physical:
        The fabric to place onto (shared by all requests).
    requests:
        The stream admission requests, placed in order.
    config:
        Gradient configuration for the achieved-utility solves (defaults
        to a converged-but-bounded profile).
    rounds:
        Maximum number of full revisit rounds; the loop stops early when
        a round accepts no move.
    max_replicas / max_moves:
        Forwarded to :func:`~repro.placement.place_task_chain` for the
        joint rounds; the routing-only baseline always uses
        ``max_moves=0``.
    """

    def __init__(
        self,
        physical: PhysicalNetwork,
        requests: Sequence[StreamRequest],
        config: Optional[GradientConfig] = None,
        rounds: int = 2,
        max_replicas: int = 2,
        max_moves: int = 6,
    ) -> None:
        if not requests:
            raise ModelError("JointPlacementLoop needs at least one request")
        if rounds < 1:
            raise ModelError("rounds must be >= 1")
        self.physical = physical
        self.requests = list(requests)
        self.config = config or GradientConfig(
            eta=0.04, max_iterations=4000, tolerance=1e-8, patience=20
        )
        self.rounds = rounds
        self.max_replicas = max_replicas
        self.max_moves = max_moves

    @classmethod
    def from_scenario(
        cls,
        spec: Union[str, ScenarioSpec],
        seed: Optional[int] = None,
        config: Optional[GradientConfig] = None,
        **overrides: int,
    ) -> "JointPlacementLoop":
        """Build the loop from a ``fat-tree`` / ``isp`` scenario spec.

        Loop knobs come from the spec's ``placement`` component (kind
        ``joint``; params ``rounds`` / ``max_replicas`` / ``max_moves``),
        overridable via keyword arguments.
        """
        if isinstance(spec, str):
            spec = scenario(spec, seed=seed)
        elif seed is not None:
            spec = spec.with_seed(seed)
        kind = spec.topology.kind
        options = spec.topology.options
        if kind == "fat-tree":
            physical, requests, _ = fat_tree_requests(
                FatTreeSpec(**options), seed=spec.seed
            )
        elif kind == "isp":
            physical, requests, _ = isp_requests(
                IspSpec(**options), seed=spec.seed
            )
        else:
            raise ModelError(
                f"joint placement needs a request-level topology "
                f"(fat-tree or isp), got {kind!r}"
            )
        knobs: Dict[str, int] = {}
        if spec.placement.kind == "joint":
            knobs.update(spec.placement.options)
        knobs.update(overrides)
        return cls(physical, requests, config=config, **knobs)

    # -- internals -----------------------------------------------------------

    def _seed_network(self) -> tuple:
        """Greedy-seed every request in order (no local search)."""
        network = StreamNetwork(physical=self.physical)
        placements: Dict[str, Dict[str, List[str]]] = {}
        for req in self.requests:
            result = place_task_chain(
                network,
                list(req.tasks),
                req.source,
                req.sink,
                req.max_rate,
                name=req.name,
                max_replicas=self.max_replicas,
                max_moves=0,
            )
            network.add_commodity(result.commodity)
            placements[req.name] = result.placement
        network.validate()
        return network, placements

    def run(self) -> JointPlacementReport:
        """Execute the protocol; see the module docstring."""
        network, placements = self._seed_network()
        ext = build_extended_network(network)
        routing_only_lp = solve_lp(ext).utility
        algo = GradientAlgorithm(ext, self.config)
        result = algo.run()
        report = JointPlacementReport(
            routing_only_lp=routing_only_lp,
            routing_only_utility=result.solution.utility,
            routing_only_iterations=result.iterations,
            joint_lp=routing_only_lp,
            joint_utility=result.solution.utility,
            placements=placements,
        )

        routing = result.solution.routing
        current_lp = routing_only_lp
        for round_index in range(self.rounds):
            report.rounds_run = round_index + 1
            accepted_any = False
            for req in self.requests:
                background = StreamNetwork(physical=self.physical)
                for commodity in ext.stream_network.commodities:
                    if commodity.name != req.name:
                        background.add_commodity(commodity)
                try:
                    proposal = place_task_chain(
                        background,
                        list(req.tasks),
                        req.source,
                        req.sink,
                        req.max_rate,
                        name=req.name,
                        max_replicas=self.max_replicas,
                        max_moves=self.max_moves,
                    )
                except ModelError:
                    continue  # current load leaves this chain no room; keep it
                if proposal.score <= current_lp + 1e-9:
                    continue
                # accept: splice the move through the warm delta core
                for event in (
                    CommodityDeparture(at_iteration=1, commodity=req.name),
                    CommodityArrival(
                        at_iteration=1, commodity=proposal.commodity
                    ),
                ):
                    delta = compile_event(ext, event)
                    applied = apply_delta(ext, delta)
                    routing = carry_routing(ext, routing, applied.ext, applied.maps)
                    algo.refresh(applied)
                    ext = applied.ext
                result = algo.run(routing=routing)
                routing = result.solution.routing
                report.moves.append(
                    PlacementMove(
                        round_index=round_index,
                        stream=req.name,
                        lp_before=current_lp,
                        lp_after=proposal.score,
                        achieved_utility=result.solution.utility,
                        warm_iterations=result.iterations,
                    )
                )
                placements[req.name] = proposal.placement
                current_lp = proposal.score
                accepted_any = True
            if not accepted_any:
                break

        report.joint_lp = current_lp
        report.joint_utility = (
            report.moves[-1].achieved_utility
            if report.moves
            else report.routing_only_utility
        )
        report.placements = placements
        return report
