"""Task-chain placement onto the physical network.

The paper assumes the task-to-server assignment is *given* ("Effective
placement of various tasks onto the physical network itself is an
interesting problem", citing Srivastava, Munagala & Widom [14]).  A usable
library needs to close that gap: this module chooses which servers host each
task of a new stream, optionally *on top of existing load*, so that the
resulting commodity admits as much utility as possible.

Algorithm (greedy construction + LP-scored local search):

1. **Feasible host sets.**  For a chain ``T_1 .. T_m`` from ``source`` to
   ``sink``, task ``T_i`` may live on any server that is reachable from the
   source in exactly ``i-1`` forward hops *and* can still reach the sink in
   ``m-i`` hops (forward/backward BFS layer intersection).  ``T_1`` is
   pinned to the source, per the paper's model.
2. **Greedy seed.**  Each task takes its ``max_replicas`` highest-capacity
   feasible hosts (a cheap proxy for processing headroom), never reusing a
   server within the chain ("a server is assigned at most one task for each
   commodity").
3. **Local search.**  Swap/add moves on one task's host set at a time,
   scored by the *true* objective: the LP-optimal total utility of the whole
   system (existing commodities + the candidate), accepting the best
   improving move until a local optimum or the move budget is hit.

The returned :class:`PlacementResult` carries the placement, the built
:class:`~repro.core.commodity.Commodity`, and the score trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.commodity import Commodity, StreamNetwork, Task
from repro.core.network import PhysicalNetwork
from repro.core.optimal import solve_lp
from repro.core.transform import build_extended_network
from repro.core.utility import LinearUtility, UtilityFunction
from repro.exceptions import ModelError

__all__ = ["PlacementResult", "feasible_hosts", "greedy_seed", "place_task_chain"]


@dataclass
class PlacementResult:
    """Outcome of placing one task chain."""

    placement: Dict[str, List[str]]
    commodity: Commodity
    score: float  # LP-optimal total utility with the new commodity placed
    baseline: float  # LP-optimal total utility without it
    score_trace: List[float] = field(default_factory=list)

    @property
    def marginal_utility(self) -> float:
        return self.score - self.baseline


def feasible_hosts(
    physical: PhysicalNetwork,
    chain_length: int,
    source: str,
    sink: str,
) -> List[Set[str]]:
    """Layered feasible host sets for a chain of ``chain_length`` tasks.

    ``result[i]`` is the set of servers that may host task ``i`` (0-based):
    reachable from ``source`` in ``i`` hops and able to reach ``sink`` in
    ``chain_length - i`` further hops.  Raises :class:`ModelError` when some
    layer is empty (the chain cannot be embedded).
    """
    if chain_length < 1:
        raise ModelError("chain_length must be >= 1")
    if source not in physical.nodes or physical.node(source).is_sink:
        raise ModelError(f"source {source!r} must be a processing node")
    if sink not in physical.nodes or not physical.node(sink).is_sink:
        raise ModelError(f"sink {sink!r} must be a sink node")

    servers = {n.name for n in physical.processing_nodes()}
    forward: List[Set[str]] = [{source}]
    for __ in range(chain_length - 1):
        previous = forward[-1]
        forward.append(
            {
                link.head
                for name in previous
                for link in physical.out_links(name)
                if link.head in servers
            }
        )

    backward: List[Set[str]] = [
        {link.tail for link in physical.in_links(sink) if link.tail in servers}
    ]
    for __ in range(chain_length - 1):
        nxt = backward[-1]
        backward.append(
            {
                link.tail
                for name in nxt
                for link in physical.in_links(name)
                if link.tail in servers
            }
        )
    backward.reverse()

    layers = [forward[i] & backward[i] for i in range(chain_length)]
    for index, layer in enumerate(layers):
        if not layer:
            raise ModelError(
                f"no feasible host for task index {index} between "
                f"{source!r} and {sink!r}"
            )
    if layers[0] != {source}:
        raise ModelError(f"source {source!r} cannot start the chain")
    return layers


def greedy_seed(
    physical: PhysicalNetwork,
    tasks: Sequence[Task],
    layers: Sequence[Set[str]],
    max_replicas: int,
) -> Dict[str, List[str]]:
    """The capacity-greedy connectivity-aware seed placement.

    Each task takes its ``max_replicas`` highest-capacity feasible hosts,
    never reusing a server within the chain, preferring hosts with a
    physical link from the previous task's chosen hosts -- so even a
    single-replica chain comes out as a connected path when one exists.
    Hosts without such a link are only used when no connected candidate
    remains (pruning in the task-chain builder may still rescue them).
    """
    placement: Dict[str, List[str]] = {}
    used: Set[str] = set()
    previous: List[str] = []
    for task, layer in zip(tasks, layers):
        available = [h for h in layer if h not in used]
        if not available:
            raise ModelError(
                f"task {task.name!r} has no feasible host left "
                f"(chain reuses every candidate)"
            )
        connected = [
            h
            for h in available
            if not previous
            or any(physical.has_link(p, h) for p in previous)
        ]
        ranked = sorted(
            connected or available,
            key=lambda h: -physical.node(h).capacity,
        )
        chosen = ranked[:max_replicas]
        placement[task.name] = chosen
        used.update(chosen)
        previous = chosen
    return placement


def _build_candidate(
    background: StreamNetwork,
    tasks: Sequence[Task],
    placement: Dict[str, List[str]],
    source: str,
    sink: str,
    max_rate: float,
    utility: Optional[UtilityFunction],
    name: str,
) -> Optional[StreamNetwork]:
    """Background network + the candidate commodity, or None if unbuildable."""
    try:
        commodity = Commodity.from_task_chain(
            name=name,
            network=background.physical,
            tasks=list(tasks),
            placement=placement,
            source=source,
            sink=sink,
            max_rate=max_rate,
            utility=utility,
        )
    except Exception:
        return None
    candidate = StreamNetwork(physical=background.physical)
    for existing in background.commodities:
        candidate.add_commodity(existing)
    try:
        candidate.add_commodity(commodity)
        candidate.validate()
    except Exception:
        return None
    return candidate


def _score(candidate: StreamNetwork) -> float:
    return solve_lp(build_extended_network(candidate)).utility


def place_task_chain(
    background: StreamNetwork,
    tasks: Sequence[Task],
    source: str,
    sink: str,
    max_rate: float,
    utility: Optional[UtilityFunction] = None,
    name: str = "placed",
    max_replicas: int = 2,
    max_moves: int = 20,
) -> PlacementResult:
    """Place a new task chain on top of an existing system.

    Only supports linear utilities for scoring (the LP oracle); pass
    ``utility=None`` for throughput.  Raises :class:`ModelError` if no
    feasible placement exists.
    """
    if not tasks:
        raise ModelError("empty task chain")
    if max_replicas < 1:
        raise ModelError("max_replicas must be >= 1")
    utility = utility or LinearUtility()
    if not isinstance(utility, LinearUtility):
        raise ModelError(
            "placement scoring uses the LP oracle; only linear utilities "
            "are supported for the placed stream"
        )
    if any(c.name == name for c in background.commodities):
        raise ModelError(f"commodity name {name!r} already taken")

    physical = background.physical
    layers = feasible_hosts(physical, len(tasks), source, sink)
    baseline = (
        _score(background) if background.commodities else 0.0
    )

    placement = greedy_seed(physical, tasks, layers, max_replicas)

    candidate = _build_candidate(
        background, tasks, placement, source, sink, max_rate, utility, name
    )
    if candidate is None:
        raise ModelError("greedy seed placement is not realisable")
    best_score = _score(candidate)
    trace = [best_score]

    # local search: add/swap one host of one task at a time
    for __ in range(max_moves):
        best_move: Optional[Tuple[str, List[str]]] = None
        best_move_score = best_score
        for task, layer in zip(tasks[1:], layers[1:]):  # task 0 pinned to source
            current = placement[task.name]
            occupied = {
                h for t, hosts in placement.items() if t != task.name for h in hosts
            }
            options: List[List[str]] = []
            for host in sorted(layer):
                if host in current or host in occupied:
                    continue
                if len(current) < max_replicas:
                    options.append(current + [host])
                options.extend(
                    [h for h in current if h != old] + [host]
                    for old in current
                )
            for hosts in options:
                trial = dict(placement)
                trial[task.name] = hosts
                network = _build_candidate(
                    background, tasks, trial, source, sink, max_rate, utility, name
                )
                if network is None:
                    continue
                score = _score(network)
                if score > best_move_score + 1e-9:
                    best_move_score = score
                    best_move = (task.name, hosts)
        if best_move is None:
            break
        placement[best_move[0]] = best_move[1]
        best_score = best_move_score
        trace.append(best_score)

    final_network = _build_candidate(
        background, tasks, placement, source, sink, max_rate, utility, name
    )
    assert final_network is not None
    commodity = final_network.commodity(name)
    return PlacementResult(
        placement=placement,
        commodity=commodity,
        score=best_score,
        baseline=baseline,
        score_trace=trace,
    )
