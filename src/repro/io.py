"""JSON serialisation for models and solutions.

Lets users keep stream-network models in version control, ship them to the
CLI (``python -m repro``), and archive solver outputs.  The format is plain
JSON with an explicit ``format_version`` so future revisions can migrate.

Only model-level objects are serialised; algorithm state (routing fractions)
is included in solution exports but is not intended as a re-ingestion format
(re-solve from the model instead).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.commodity import Commodity, StreamNetwork
from repro.core.network import PhysicalNetwork
from repro.core.solution import Solution
from repro.core.utility import (
    AlphaFairUtility,
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    SqrtUtility,
    UtilityFunction,
)
from repro.exceptions import ModelError

FORMAT_VERSION = 1

# schema id of the RunResult export (trajectory + solution); shares the
# versioning convention of repro.obs.export.METRICS_SCHEMA
RESULT_SCHEMA = "repro.result/1"

__all__ = [
    "utility_to_spec",
    "utility_from_spec",
    "commodity_to_dict",
    "commodity_from_dict",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "solution_to_dict",
    "save_solution",
    "result_to_dict",
    "save_result",
]


def utility_to_spec(utility: UtilityFunction) -> Dict[str, Any]:
    """Serialise a library utility to a JSON-safe spec."""
    if isinstance(utility, LinearUtility):
        return {"type": "linear", "weight": utility.weight}
    if isinstance(utility, LogUtility):
        return {"type": "log", "weight": utility.weight, "offset": utility.offset}
    if isinstance(utility, AlphaFairUtility):
        return {
            "type": "alpha_fair",
            "alpha": utility.alpha,
            "weight": utility.weight,
            "offset": utility.offset,
        }
    if isinstance(utility, SqrtUtility):
        return {"type": "sqrt", "weight": utility.weight, "offset": utility.offset}
    if isinstance(utility, CappedLinearUtility):
        return {
            "type": "capped_linear",
            "cap": utility.cap,
            "weight": utility.weight,
            "softness": utility.softness,
        }
    raise ModelError(
        f"cannot serialise utility of type {type(utility).__name__}; "
        f"use a library utility or extend repro.io"
    )


def utility_from_spec(spec: Dict[str, Any]) -> UtilityFunction:
    """Inverse of :func:`utility_to_spec`."""
    kind = spec.get("type")
    params = {k: v for k, v in spec.items() if k != "type"}
    factories = {
        "linear": LinearUtility,
        "log": LogUtility,
        "alpha_fair": AlphaFairUtility,
        "sqrt": SqrtUtility,
        "capped_linear": CappedLinearUtility,
    }
    if kind not in factories:
        raise ModelError(f"unknown utility type {kind!r}")
    return factories[kind](**params)


def commodity_to_dict(commodity: Commodity) -> Dict[str, Any]:
    """Serialise one :class:`Commodity` to a JSON-safe dict.

    The same spec format used inside :func:`network_to_dict`; also the wire
    format of ``repro.serve/1`` admission requests (see docs/serving.md).
    """
    return {
        "name": commodity.name,
        "source": commodity.source,
        "sink": commodity.sink,
        "max_rate": commodity.max_rate,
        "utility": utility_to_spec(commodity.utility),
        "edges": [list(e) for e in commodity.edges],
        "potentials": dict(commodity.potentials),
        "costs": [
            {"tail": t, "head": h, "cost": cost}
            for (t, h), cost in commodity.costs.items()
        ],
    }


def commodity_from_dict(spec: Dict[str, Any]) -> Commodity:
    """Inverse of :func:`commodity_to_dict` (validates via ``Commodity``)."""
    return Commodity(
        name=spec["name"],
        source=spec["source"],
        sink=spec["sink"],
        max_rate=spec["max_rate"],
        edges=[tuple(e) for e in spec["edges"]],
        potentials=spec["potentials"],
        costs={
            (entry["tail"], entry["head"]): entry["cost"]
            for entry in spec["costs"]
        },
        utility=utility_from_spec(spec["utility"]),
    )


def network_to_dict(network: StreamNetwork) -> Dict[str, Any]:
    """Serialise a :class:`StreamNetwork` to a JSON-safe dict."""
    physical = network.physical
    return {
        "format_version": FORMAT_VERSION,
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind.value,
                **(
                    {"capacity": node.capacity}
                    if node.capacity != float("inf")
                    else {}
                ),
            }
            for node in physical.nodes.values()
        ],
        "links": [
            {"tail": link.tail, "head": link.head, "bandwidth": link.bandwidth}
            for link in physical.links.values()
        ],
        "commodities": [commodity_to_dict(c) for c in network.commodities],
    }


def network_from_dict(data: Dict[str, Any]) -> StreamNetwork:
    """Inverse of :func:`network_to_dict`; validates the result."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format_version {version!r} (expected {FORMAT_VERSION})"
        )
    physical = PhysicalNetwork()
    for node in data.get("nodes", []):
        if node["kind"] == "sink":
            physical.add_sink(node["name"])
        elif node["kind"] == "processing":
            if "capacity" not in node:
                raise ModelError(
                    f"processing node {node['name']!r} needs a capacity"
                )
            physical.add_server(node["name"], node["capacity"])
        else:
            raise ModelError(f"unknown node kind {node['kind']!r}")
    for link in data.get("links", []):
        physical.add_link(link["tail"], link["head"], link["bandwidth"])

    network = StreamNetwork(physical=physical)
    for spec in data.get("commodities", []):
        network.add_commodity(commodity_from_dict(spec))
    network.validate()
    return network


def save_network(network: StreamNetwork, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> StreamNetwork:
    return network_from_dict(json.loads(Path(path).read_text()))


def solution_to_dict(solution: Solution) -> Dict[str, Any]:
    """Serialise a solution (rates, utility, link flows) to a JSON-safe dict."""
    link_flows = {
        f"{tail}->{head}": rate for (tail, head), rate in solution.link_flows().items()
    }
    report = solution.feasibility()
    return {
        "format_version": FORMAT_VERSION,
        "method": solution.method,
        "iterations": solution.iterations,
        "utility": solution.utility,
        "admitted": solution.admitted_by_name,
        "shed": solution.shed_by_name,
        "link_flows": link_flows,
        "max_node_utilization": (
            report.max_utilization if report is not None else None
        ),
        "feasible": report.feasible if report is not None else None,
    }


def save_solution(solution: Solution, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=2))


def _scalar(value: Any) -> Optional[float]:
    """Float for JSON, with NaN mapped to null (NaN is not valid JSON)."""
    value = float(value)
    return None if math.isnan(value) else value


# result attributes outside the RunResult protocol that are worth exporting
# when the concrete type has them (GradientResult, DistributedRunResult, ...)
_OPTIONAL_RESULT_FIELDS = (
    "converged",
    "average_messages_per_iteration",
    "average_rounds_per_iteration",
)


def result_to_dict(result: Any, **context: Any) -> Dict[str, Any]:
    """Serialise any :class:`~repro.core.result.RunResult` to a JSON-safe dict.

    The ``repro.result/1`` document: the recorded trajectory (iterations,
    utilities, costs), the final solution (via :func:`solution_to_dict`),
    and method-specific extras when present.  ``context`` entries land under
    ``"context"``, mirroring the JSON metrics exporter in
    :mod:`repro.obs.export`.
    """
    solution = result.solution
    doc: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "schema": RESULT_SCHEMA,
        "final_utility": _scalar(result.final_utility),
        "trajectory": {
            "iterations": [int(i) for i in result.recorded_iterations],
            "utilities": [_scalar(u) for u in result.utilities],
            "costs": [_scalar(c) for c in result.costs],
        },
        "solution": solution_to_dict(solution) if solution is not None else None,
    }
    if context:
        doc["context"] = dict(context)
    for name in _OPTIONAL_RESULT_FIELDS:
        value = getattr(result, name, None)
        if value is not None:
            doc[name] = _scalar(value) if isinstance(value, float) else value
    report = getattr(result, "validation", None)
    if report is not None:
        doc["validation"] = report.to_dict()
    return doc


def save_result(result: Any, path: Union[str, Path], **context: Any) -> None:
    Path(path).write_text(json.dumps(result_to_dict(result, **context), indent=2))
