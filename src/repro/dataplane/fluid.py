"""Fluid data-plane simulator: run a solved routing against real traffic.

The optimisation layer produces *rates and fractions*; this module checks
they actually work as a running system.  The paper defines the success
criterion: an algorithm "is stable if it is able to deliver in the long run
the injected flow at rate a_j at source s_j" -- i.e. with arrivals at the
admitted rates, every queue in the network stays bounded and the delivered
rates converge to the admitted ones.

Mechanics (slotted fluid, deterministic given the input traces):

* each capacity node keeps one fluid queue per commodity (node-local
  units);
* arrivals for commodity ``j`` join the queue at its source (external
  shaping -- e.g. :class:`repro.core.admission.AdmissionController` -- is
  the caller's job; this layer just moves fluid);
* per slot, node ``i`` wants to process its whole backlog and forward it
  along its routing fractions: serving one unit of ``j`` consumes
  ``r_i(j) = sum_e phi_e c_e`` of the node budget and emits
  ``phi_e beta_e`` units to each head; when the backlog's total demand
  exceeds ``C_i`` per slot, service is scaled proportionally (fluid
  processor sharing);
* sinks absorb; delivered fluid is converted back to source units through
  the Property-1 potentials so rates are comparable with ``a_j``.

Queues growing linearly <=> offered load beyond what the routing can carry
-- exactly what happens when traffic is not admission-controlled
(``bench_stability.py`` measures both regimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.routing import RoutingState, validate_routing
from repro.core.transform import ExtendedNetwork, ExtEdgeKind
from repro.exceptions import SimulationError

__all__ = ["DataPlaneResult", "FluidDataPlane"]


@dataclass
class DataPlaneResult:
    """Outcome of a data-plane run."""

    num_slots: int
    slot_length: float
    delivered: Dict[str, float]  # total delivered per commodity, source units
    delivered_rates: Dict[str, float]  # delivered / horizon
    offered: Dict[str, float]  # total offered per commodity (source units)
    queue_trace: np.ndarray  # (num_samples,) total queued fluid over time
    queue_sample_slots: np.ndarray
    final_queue_by_commodity: Dict[str, float]

    @property
    def total_backlog(self) -> float:
        return float(self.queue_trace[-1]) if self.queue_trace.size else 0.0

    def queue_growth_rate(self) -> float:
        """Least-squares slope of the total-queue trace over its second half
        (units of fluid per slot); ~0 for a stable system."""
        if self.queue_trace.size < 4:
            return 0.0
        half = self.queue_trace.size // 2
        xs = self.queue_sample_slots[half:].astype(float)
        ys = self.queue_trace[half:]
        xs = xs - xs.mean()
        denominator = float((xs**2).sum())
        if denominator == 0.0:
            return 0.0
        return float((xs * (ys - ys.mean())).sum() / denominator)

    def is_stable(self, growth_ratio_tolerance: float = 0.1) -> bool:
        """Stable iff the backlog does not grow materially over the second
        half of the run: projected growth ``slope * window`` must stay below
        ``growth_ratio_tolerance`` of the prevailing queue level (with an
        absolute floor of 1 fluid unit, so empty systems count as stable)."""
        if self.queue_trace.size < 4:
            return True
        half = self.queue_trace.size // 2
        window = float(
            self.queue_sample_slots[-1] - self.queue_sample_slots[half]
        )
        projected_growth = self.queue_growth_rate() * window
        level = max(1.0, float(np.mean(self.queue_trace[half:])))
        return projected_growth <= growth_ratio_tolerance * level


class FluidDataPlane:
    """Slotted fluid execution of a routing decision on the extended graph."""

    def __init__(
        self,
        ext: ExtendedNetwork,
        routing: RoutingState,
        slot_length: float = 1.0,
    ) -> None:
        if slot_length <= 0:
            raise SimulationError("slot_length must be > 0")
        validate_routing(ext, routing)
        self.ext = ext
        self.routing = routing
        self.slot_length = float(slot_length)
        self._build_static()

    def _build_static(self) -> None:
        ext = self.ext
        phi = self.routing.phi
        # per (commodity, node): the resource demand per unit served and the
        # forwarding lists (head, amount emitted per unit served)
        self.unit_demand = np.zeros((ext.num_commodities, ext.num_nodes))
        self.forwards: List[List[List[tuple]]] = [
            [[] for __ in range(ext.num_nodes)]
            for __ in range(ext.num_commodities)
        ]
        sink_set = {view.sink for view in ext.commodities}
        for view in ext.commodities:
            j = view.index
            for node in view.node_indices:
                if node == view.sink:
                    continue
                for e in ext.commodity_out_edges[j][node]:
                    kind = ext.edges[e].kind
                    if kind in (ExtEdgeKind.DUMMY_INPUT, ExtEdgeKind.DUMMY_DIFFERENCE):
                        continue  # dummies are the control plane, not data
                    fraction = phi[j, e]
                    if fraction <= 0.0:
                        continue
                    self.unit_demand[j, node] += fraction * ext.cost[j, e]
                    head = int(ext.edge_head[e])
                    emit = fraction * ext.gain[j, e]
                    if head in sink_set:
                        # convert to source units on delivery: one head unit
                        # is 1/g[j, head] source units (Property 1)
                        emit = emit / ext.node_potentials[j, head]
                        self.forwards[j][node].append((head, emit, True))
                    else:
                        self.forwards[j][node].append((head, emit, False))
        self.g = ext.node_potentials
        self.sources = {
            view.name: (view.index, view.source) for view in ext.commodities
        }

    def run(
        self,
        traces: Mapping[str, Sequence[float]],
        record_every: int = 10,
    ) -> DataPlaneResult:
        """Push the given arrival traces through the network.

        ``traces[name][t]`` is the fluid volume (source units) arriving for
        commodity ``name`` in slot ``t``; all traces must share a length.
        """
        ext = self.ext
        names = [view.name for view in ext.commodities]
        unknown = set(traces) - set(names)
        if unknown:
            raise SimulationError(f"traces for unknown commodities: {sorted(unknown)}")
        arrays = {
            name: np.asarray(traces.get(name, ()), dtype=float) for name in names
        }
        lengths = {arr.size for arr in arrays.values() if arr.size}
        if not lengths:
            raise SimulationError("no arrival traces given")
        if len(lengths) != 1:
            raise SimulationError("all traces must have the same length")
        (num_slots,) = lengths
        for name, arr in arrays.items():
            if arr.size == 0:
                arrays[name] = np.zeros(num_slots)
            elif np.any(arr < 0):
                raise SimulationError(f"negative arrivals in trace {name!r}")

        queues = np.zeros((ext.num_commodities, ext.num_nodes))
        delivered = np.zeros(ext.num_commodities)
        budget = np.where(
            np.isfinite(ext.capacity), ext.capacity * self.slot_length, np.inf
        )

        samples: List[float] = []
        sample_slots: List[int] = []
        for slot in range(num_slots):
            # arrivals
            for name, (j, source) in self.sources.items():
                queues[j, source] += arrays[name][slot]

            # service: proportional scaling per node when oversubscribed
            demand = np.einsum("jn,jn->n", queues, self.unit_demand)
            with np.errstate(divide="ignore", invalid="ignore"):
                scale = np.where(
                    demand > budget, budget / np.maximum(demand, 1e-300), 1.0
                )
            served = queues * scale[np.newaxis, :]

            next_queues = queues - served
            for j in range(ext.num_commodities):
                for node in np.nonzero(served[j] > 0)[0]:
                    amount = served[j, node]
                    for head, emit, head_is_sink in self.forwards[j][node]:
                        if head_is_sink:
                            delivered[j] += amount * emit  # source units
                        else:
                            next_queues[j, head] += amount * emit
            queues = np.maximum(next_queues, 0.0)

            if slot % record_every == 0 or slot == num_slots - 1:
                samples.append(float(queues.sum()))
                sample_slots.append(slot)

        delivered_by_name = {}
        rates = {}
        offered_totals = {}
        horizon = num_slots * self.slot_length
        for view in ext.commodities:
            j = view.index
            delivered_by_name[view.name] = float(delivered[j])
            rates[view.name] = float(delivered[j]) / horizon
            offered_totals[view.name] = float(arrays[view.name].sum())

        final_queue = {
            view.name: float(queues[view.index].sum()) for view in ext.commodities
        }
        return DataPlaneResult(
            num_slots=num_slots,
            slot_length=self.slot_length,
            delivered=delivered_by_name,
            delivered_rates=rates,
            offered=offered_totals,
            queue_trace=np.array(samples),
            queue_sample_slots=np.array(sample_slots),
            final_queue_by_commodity=final_queue,
        )
