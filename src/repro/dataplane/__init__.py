"""Fluid data plane: execute a solved routing against actual traffic.

Validates the paper's stability criterion -- with arrivals at the admitted
rates, queues stay bounded and delivery matches ``a_j``.
"""

from repro.dataplane.fluid import DataPlaneResult, FluidDataPlane

__all__ = ["DataPlaneResult", "FluidDataPlane"]
