"""Analysis toolkit: convergence diagnostics, paper-style tables, ASCII plots."""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.convergence import (
    ConvergenceSummary,
    is_effectively_monotone,
    iterations_to_fraction,
    summarize_convergence,
)
from repro.analysis.report import (
    AlgorithmTrajectory,
    TableBuilder,
    figure4_table,
    placement_table,
    solution_table,
    timing_table,
)

__all__ = [
    "ascii_plot",
    "ConvergenceSummary",
    "is_effectively_monotone",
    "iterations_to_fraction",
    "summarize_convergence",
    "AlgorithmTrajectory",
    "TableBuilder",
    "figure4_table",
    "placement_table",
    "solution_table",
    "timing_table",
]
