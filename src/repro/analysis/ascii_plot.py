"""Dependency-free ASCII line plots for examples and benchmark output.

Good enough to eyeball a convergence curve in a terminal or a CI log --
the examples use it to render the Figure-4 comparison without matplotlib.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "*+o#@%&"


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more ``(label, xs, ys)`` series as an ASCII chart.

    ``log_x=True`` reproduces Figure 4's log-scale iteration axis.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")

    positive = [float(x) for __, xs, __ in series for x in xs if x > 0]
    floor = min(positive) if positive else 1.0

    def tx(x: float) -> float:
        if not log_x:
            return x
        # non-positive x (e.g. iteration 0) is clamped to the smallest
        # positive sample so the axis stays meaningful
        return math.log10(max(x, floor))

    all_x = [tx(float(x)) for __, xs, __ in series for x in xs]
    all_y = [float(y) for __, __, ys in series for y in ys]
    if not all_x:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (__, xs, ys) in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((tx(float(x)) - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((float(y) - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row_cells in enumerate(grid):
        prefix = (
            f"{top_label:>{pad}} |"
            if r == 0
            else f"{bottom_label:>{pad}} |" if r == height - 1 else " " * pad + " |"
        )
        lines.append(prefix + "".join(row_cells))
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    right = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    axis = f"{left}"
    axis += " " * max(1, width - len(left) - len(right)) + right
    lines.append(" " * pad + "  " + axis)
    suffix = f"  [{x_label}{', log scale' if log_x else ''}]  vs  [{y_label}]"
    legend = "  legend: " + "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, (label, __, __) in enumerate(series)
    )
    lines.append(legend + suffix)
    return "\n".join(lines)
