"""Paper-style text reports: experiment tables shared by benches and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.analysis.convergence import ConvergenceSummary, summarize_convergence
from repro.core.solution import Solution

__all__ = [
    "TableBuilder",
    "figure4_table",
    "placement_table",
    "solution_table",
    "timing_table",
]


class TableBuilder:
    """Minimal fixed-width text table (no external deps)."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self, title: Optional[str] = None) -> str:
        widths = [
            max(len(col), *(len(row[i]) for row in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = []
        if title:
            lines.append(title)
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@dataclass
class AlgorithmTrajectory:
    """Inputs to the Figure-4 table for one algorithm."""

    label: str
    iterations: Sequence[int]
    utilities: Sequence[float]

    @classmethod
    def from_result(cls, label: str, result: Any) -> "AlgorithmTrajectory":
        """Build from any :class:`~repro.core.result.RunResult`."""
        return cls(label, result.recorded_iterations, result.utilities)


def figure4_table(
    optimal_utility: float,
    trajectories: Sequence[AlgorithmTrajectory],
) -> str:
    """The Figure-4 comparison as a table: final utility and iters-to-x%."""
    lines = [ConvergenceSummary.header()]
    lines.append("-" * len(lines[0]))
    for trajectory in trajectories:
        summary = summarize_convergence(
            trajectory.iterations, trajectory.utilities, optimal_utility
        )
        lines.append(summary.row(trajectory.label))
    lines.append(f"{'optimal (LP)':<24} {optimal_utility:>10.3f} {'100.0%':>8}")
    return "\n".join(lines)


def timing_table(instrumentation: Any, title: str = "Phase timings") -> str:
    """Per-phase wall-clock table from one instrumented run.

    Consumes the ``phase.<name>.seconds`` histograms of a
    :class:`~repro.obs.Instrumentation` (``python -m repro profile`` prints
    this).  Raises :class:`ValueError` on a disabled (null) instrumentation.
    """
    if instrumentation.registry is None:
        raise ValueError("instrumentation is disabled; no timings were recorded")
    histograms = instrumentation.registry.as_dict()["histograms"]
    table = TableBuilder(
        ["phase", "calls", "total s", "mean ms", "p50 ms", "p90 ms", "max ms"]
    )
    found = False
    for name, summary in histograms.items():
        if not (name.startswith("phase.") and name.endswith(".seconds")):
            continue
        found = True
        table.add_row(
            name[len("phase.") : -len(".seconds")],
            summary["count"],
            summary["sum"],
            1e3 * summary["mean"],
            1e3 * summary["p50"],
            1e3 * summary["p90"],
            1e3 * summary["max"],
        )
    if not found:
        return f"{title}\n(no phase timings recorded)"
    return table.render(title=title)


def solution_table(solutions: Sequence[Solution], labels: Sequence[str]) -> str:
    """Side-by-side admitted rates and utilities of several solutions."""
    if len(solutions) != len(labels):
        raise ValueError("need one label per solution")
    if not solutions:
        raise ValueError("no solutions to tabulate")
    names = [view.name for view in solutions[0].ext.commodities]
    table = TableBuilder(["commodity", "offered"] + list(labels))
    for view in solutions[0].ext.commodities:
        cells: List[object] = [view.name, view.max_rate]
        for solution in solutions:
            cells.append(float(solution.admitted[view.index]))
        table.add_row(*cells)
    total_cells: List[object] = ["TOTAL UTILITY", ""]
    for solution in solutions:
        total_cells.append(solution.utility)
    table.add_row(*total_cells)
    return table.render(title=f"Admitted rates across methods ({len(names)} commodities)")


def placement_table(report: Any, title: str = "TAB-PLACEMENT") -> str:
    """Joint placement vs routing-only, as the paper-style comparison table.

    ``report`` is a :class:`~repro.placement.JointPlacementReport`: one row
    for the routing-only baseline (placement fixed by the greedy seed), one
    for the joint loop, plus the accepted moves.
    """
    table = TableBuilder(
        ["regime", "LP bound", "achieved", "vs baseline", "moves"]
    )
    table.add_row(
        "routing-only",
        f"{report.routing_only_lp:.3f}",
        f"{report.routing_only_utility:.3f}",
        "1.000x",
        0,
    )
    table.add_row(
        "joint placement",
        f"{report.joint_lp:.3f}",
        f"{report.joint_utility:.3f}",
        f"{report.lp_ratio:.3f}x",
        len(report.moves),
    )
    lines = [table.render(title=title)]
    for move in report.moves:
        lines.append(
            f"  round {move.round_index}: moved {move.stream!r}  "
            f"LP {move.lp_before:.3f} -> {move.lp_after:.3f}  "
            f"(warm re-solve: {move.warm_iterations} iterations)"
        )
    return "\n".join(lines)
