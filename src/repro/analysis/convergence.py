"""Convergence diagnostics for optimisation trajectories.

These are the measurements Figure 4 and the surrounding prose report:
iterations to reach a fraction of the optimum, monotonicity of the
trajectory, and the final optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "iterations_to_fraction",
    "is_effectively_monotone",
    "ConvergenceSummary",
    "summarize_convergence",
]


def iterations_to_fraction(
    iterations: Sequence[int],
    utilities: Sequence[float],
    reference: float,
    fraction: float,
) -> Optional[int]:
    """First recorded iteration whose utility reaches ``fraction * reference``.

    Returns ``None`` if the trajectory never reaches the target.  This is the
    "iterations required to achieve a utility within x% of optimal" metric of
    Section 6.
    """
    if reference <= 0:
        raise ValueError(f"reference must be > 0, got {reference}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    iterations = np.asarray(iterations)
    utilities = np.asarray(utilities, dtype=float)
    if iterations.shape != utilities.shape:
        raise ValueError("iterations and utilities must have equal length")
    mask = utilities >= fraction * reference
    if not mask.any():
        return None
    return int(iterations[int(np.argmax(mask))])


def is_effectively_monotone(
    values: Sequence[float], direction: str = "increasing", slack: float = 1e-6
) -> bool:
    """Is the sequence monotone up to a relative ``slack``?

    The paper observes "the total throughput improves monotonically until it
    eventually reaches the optimum"; numerical trajectories wobble at
    round-off scale, hence the slack.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return True
    scale = max(1.0, float(np.max(np.abs(values))))
    steps = np.diff(values)
    if direction == "increasing":
        return bool(np.all(steps >= -slack * scale))
    if direction == "decreasing":
        return bool(np.all(steps <= slack * scale))
    raise ValueError(f"unknown direction {direction!r}")


@dataclass
class ConvergenceSummary:
    final_value: float
    reference: float
    final_fraction: float  # final_value / reference
    iterations_to_90: Optional[int]
    iterations_to_95: Optional[int]
    iterations_to_99: Optional[int]
    monotone: bool

    def row(self, label: str) -> str:
        def fmt(x: Optional[int]) -> str:
            return str(x) if x is not None else "-"

        return (
            f"{label:<24} {self.final_value:>10.3f} {self.final_fraction:>8.1%} "
            f"{fmt(self.iterations_to_90):>9} {fmt(self.iterations_to_95):>9} "
            f"{fmt(self.iterations_to_99):>9} {'yes' if self.monotone else 'no':>9}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'algorithm':<24} {'utility':>10} {'of opt':>8} "
            f"{'to 90%':>9} {'to 95%':>9} {'to 99%':>9} {'monotone':>9}"
        )


def summarize_convergence(
    iterations: Sequence[int],
    utilities: Sequence[float],
    reference: float,
    monotone_slack: float = 1e-3,
) -> ConvergenceSummary:
    """Bundle the Figure-4 metrics for one algorithm trajectory."""
    utilities = np.asarray(utilities, dtype=float)
    return ConvergenceSummary(
        final_value=float(utilities[-1]),
        reference=reference,
        final_fraction=float(utilities[-1]) / reference,
        iterations_to_90=iterations_to_fraction(iterations, utilities, reference, 0.90),
        iterations_to_95=iterations_to_fraction(iterations, utilities, reference, 0.95),
        iterations_to_99=iterations_to_fraction(iterations, utilities, reference, 0.99),
        monotone=is_effectively_monotone(
            utilities, direction="increasing", slack=monotone_slack
        ),
    )
